//! Make-before-break regression pins (ISSUE 10).
//!
//! Two contracts keep the per-chiplet readiness model honest:
//!
//! * a transition that re-programs **every** chiplet out of a busy
//!   package degenerates to the old single-`ready_at` barrier —
//!   bit-identically, for every built-in scenario family, at any worker
//!   count;
//! * a per-chiplet readiness schedule never drops more frames than the
//!   package-wide barrier raised at its last ready instant.

use std::sync::OnceLock;

use proptest::prelude::*;

use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_mcm::{ChipletId, McmPackage};
use npu_pipesim::{simulate_phases, PhaseReport, Readiness, SimPhase};
use npu_scenario::{match_scenario, Scenario};
use npu_sched::{occupied_chiplets, rematch_cost_against, Schedule};
use npu_tensor::Dtype;

/// Diffing any built-in family's schedule against an empty outgoing
/// mapping with its whole footprint marked occupied is a full-barrier
/// transition; simulating it through `Readiness::make_before_break`
/// must reproduce the explicit scalar barrier to the bit, serial and
/// parallel.
#[test]
fn full_reprogram_reproduces_the_barrier_bit_for_bit() {
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let reconfig = ReconfigModel::default();
    let empty = Schedule { stages: Vec::new() };
    let at = 1.0;
    let families = Scenario::builtin();
    assert_eq!(families.len(), 7, "the pin covers every built-in family");
    let run_families = || -> Vec<PhaseReport> {
        families
            .iter()
            .map(|scenario| {
                let outcome = match_scenario(scenario, &pkg, &model);
                let occupied = occupied_chiplets(&outcome.schedule);
                let cost = rematch_cost_against(
                    &empty,
                    &outcome.schedule,
                    &occupied,
                    &reconfig,
                    Dtype::Fp16,
                );
                assert!(cost.is_full_barrier(), "{}", scenario.name);
                assert_eq!(cost.stalled(), cost.reprogrammed.len());
                assert_eq!(
                    cost.stall_window().as_secs().to_bits(),
                    cost.latency.as_secs().to_bits(),
                    "{}: the staged schedule must land exactly on the scalar",
                    scenario.name
                );
                let times: Vec<f64> = scenario
                    .arrivals()
                    .times(24)
                    .iter()
                    .map(|t| at + t)
                    .collect();
                let run = |readiness: Readiness| {
                    simulate_phases(
                        &[SimPhase::new(&outcome.schedule, times.clone(), readiness)],
                        &pkg,
                        &model,
                        Dtype::Fp16,
                    )
                    .remove(0)
                };
                let mbb = run(Readiness::make_before_break(&cost, at));
                let barrier = run(Readiness::Barrier(at + cost.latency.as_secs()));
                assert_eq!(mbb, barrier, "{}", scenario.name);
                assert_eq!(
                    mbb.admitted_from.to_bits(),
                    barrier.admitted_from.to_bits(),
                    "{}",
                    scenario.name
                );
                mbb
            })
            .collect()
    };
    let serial = npu_par::with_jobs(1, run_families);
    let parallel = npu_par::with_jobs(8, run_families);
    assert_eq!(serial, parallel, "worker count must not move a bit");
}

/// One matched schedule, compiled once and shared across proptest cases.
fn fixture() -> &'static (McmPackage, FittedMaestro, Schedule, Vec<ChipletId>) {
    static FIXTURE: OnceLock<(McmPackage, FittedMaestro, Schedule, Vec<ChipletId>)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let scenario = Scenario::builtin().remove(0);
        let schedule = match_scenario(&scenario, &pkg, &model).schedule;
        let chiplets: Vec<ChipletId> = occupied_chiplets(&schedule).into_iter().collect();
        (pkg, model, schedule, chiplets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any stalled subset and any staged ready times, the
    /// make-before-break handover never drops more frames than the
    /// package-wide barrier raised at the last ready instant.
    #[test]
    fn per_chiplet_readiness_never_drops_more_than_the_barrier(
        at in 0.0f64..2.0,
        window in 0.01f64..0.5,
        stalls in prop::collection::vec((0usize..64, 0.0f64..1.0), 1..12),
    ) {
        let (pkg, model, schedule, chiplets) = fixture();
        let ready: Vec<(ChipletId, f64)> = stalls
            .iter()
            .map(|&(i, frac)| (chiplets[i % chiplets.len()], at + frac * window))
            .collect();
        let readiness = Readiness::PerChiplet { at, ready };
        let barrier_at = readiness.last_ready();
        // 16 frames straddling the whole [at, last ready] contention
        // window, starting slightly before the switch.
        let times: Vec<f64> = (0..16)
            .map(|i| (at - 0.05).max(0.0) + i as f64 * (barrier_at - at + 0.1) / 16.0)
            .collect();
        let run = |readiness: Readiness| {
            simulate_phases(
                &[SimPhase::new(schedule, times.clone(), readiness)],
                pkg,
                model,
                Dtype::Fp16,
            )
            .remove(0)
        };
        let mbb = run(readiness);
        let barrier = run(Readiness::Barrier(barrier_at));
        prop_assert!(
            mbb.dropped <= barrier.dropped,
            "make-before-break dropped {} vs barrier {}",
            mbb.dropped,
            barrier.dropped
        );
        prop_assert!(mbb.admitted_from <= barrier.admitted_from + 1e-12);
        prop_assert!(mbb.admitted_from >= at);
        prop_assert_eq!(mbb.offered, mbb.served() + mbb.dropped + mbb.flushed);
    }
}
