//! The paper's headline quantitative claims, checked end to end.
//!
//! These are the acceptance tests of the reproduction: each maps to a
//! sentence in the paper's abstract or evaluation section.

use npu_experiments::{fig10, fig11, fig3, fig5to8, table1, table2, table3};

/// Abstract: "our approach realizes ... 2.8x increase in ... processing
/// engines utilization compared to monolithic accelerator designs" —
/// together with Table II's ordering.
#[test]
fn utilization_and_pipe_beat_all_baselines() {
    let t2 = table2::run();
    let mcm = t2.row("36x256", "matched").unwrap();
    for r in &t2.rows {
        if r.arrangement != "36x256" {
            assert!(mcm.report.pipe < r.report.pipe);
            assert!(mcm.report.utilization_used > r.report.utilization_used);
        }
    }
    // Our delivery-limited utilization metric yields a smaller gain than
    // the paper's 2.8x (see EXPERIMENTS.md); direction and significance
    // hold.
    assert!(t2.utilization_gain_vs_monolithic() > 1.4);
    // Monolithic utilization matches the paper's 19.11% closely.
    let mono = t2.row("1x9216", "stagewise").unwrap();
    assert!((0.12..0.30).contains(&mono.report.utilization_used));
}

/// §V-A: "it incurs a 10.9% increase in energy consumption compared to the
/// single chiplet solution" (NoP overhead) and "the 6x6 solution achieves
/// the lowest EDP".
#[test]
fn mcm_trades_nop_energy_for_best_edp() {
    let t2 = table2::run();
    let overhead = t2.energy_overhead_vs_monolithic();
    assert!(overhead > 0.0, "MCM must pay NoP energy: {overhead}");
    let mcm = t2.row("36x256", "matched").unwrap();
    for r in &t2.rows {
        if r.arrangement != "36x256" {
            assert!(mcm.report.edp().as_joule_secs() < r.report.edp().as_joule_secs());
        }
    }
}

/// §III-A: OS offers ~6.85x speedups; WS 1.2x energy gains (1.55x without
/// the fusion stages); fusion modules are the computational bottleneck.
#[test]
fn dataflow_affinity_claims() {
    let f3 = fig3::run();
    assert!((5.5..8.0).contains(&f3.os_speedup));
    assert!((1.05..1.4).contains(&f3.ws_energy_gain));
    assert!((1.35..1.6).contains(&f3.ws_energy_gain_no_fusion));
    assert!(f3.s_fuse_share + f3.t_fuse_share > 0.70);
}

/// §IV-A/B: the matched 6x6 schedule reproduces the paper's stage panels:
/// S_FUSE pipe 78.72 ms, T_FUSE pipe 82.16 ms with QKV x2 / FFN x6.
#[test]
fn stage_mapping_panels() {
    let f = fig5to8::run();
    for row in &f.rows {
        let rel = (row.pipe.as_millis() / row.paper.pipe_ms - 1.0).abs();
        assert!(rel < 0.10, "{}: {}", row.kind, row.pipe);
    }
}

/// Table I: heterogeneous integration lowers energy and EDP at unchanged
/// E2E; DET_TR saves ~35% on WS; WS-only is ~6.6x slower.
#[test]
fn heterogeneous_integration_claims() {
    let t1 = table1::run();
    let os = t1.variant("OS").unwrap();
    let ws = t1.variant("WS").unwrap();
    let h4 = t1.variant("Het(4)").unwrap();
    assert!((0.30..0.40).contains(&t1.det_ws_energy_reduction));
    assert!(h4.report.energy() < os.report.energy());
    assert!((4.0..10.0).contains(&(ws.report.e2e / os.report.e2e)));
}

/// §V-B/Fig. 10: two NPUs nearly halve the pipelining latency, with the
/// paper's shard moves (T_QKV 2→4, T_FFN →12, FE split, S_QKV →2).
#[test]
fn dual_npu_scaling_claims() {
    let f = fig10::run();
    assert!((1.6..2.4).contains(&(f.single_npu_pipe / f.final_pipe)));
    assert!(f.fe_split);
    assert!(f.t_ffn_parts >= 10);
    assert!(f.s_qkv_parts >= 2);
}

/// Table III / Fig. 11: occupancy latency grows ~4x per upsampling level
/// (last level ~75%); ~60% lane context meets the 82 ms constraint.
#[test]
fn trunk_ablation_claims() {
    let t3 = table3::run();
    for pair in t3.rows.windows(2) {
        let ratio = pair[1].e2e / pair[0].e2e;
        assert!((3.0..5.0).contains(&ratio));
    }
    assert!((0.6..0.85).contains(&t3.last_level_share));

    let f11 = fig11::run();
    assert!((50.0..=75.0).contains(&f11.max_feasible_pct));
}
