//! Property-based invariants spanning multiple crates.

use proptest::prelude::*;

use npu_dnn::{Layer, OpKind, PerceptionConfig};
use npu_maestro::{Accelerator, CostModel, FittedMaestro};
use npu_mcm::{ChipletId, McmPackage};
use npu_sched::{evaluate, shard_layer, MatcherConfig, ThroughputMatcher};
use npu_sched::{LayerPlan, ModelPlan, Schedule, ShardAssignment, StagePlan};
use npu_tensor::{Dtype, Seconds};

fn dense(tokens: u64, d_in: u64, d_out: u64) -> Layer {
    Layer::intrinsic(
        "l",
        OpKind::Dense {
            tokens,
            in_features: d_in,
            out_features: d_out,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharding a layer across chiplets never increases the per-shard
    /// compute latency, and the shard latencies sum to ~the unsharded
    /// latency (work conservation through the cost model).
    #[test]
    fn sharding_conserves_work(
        tokens in 128u64..40_000,
        parts in 1u64..12,
        d in prop::sample::select(vec![64u64, 128, 256, 304]),
    ) {
        let model = FittedMaestro::new();
        let acc = Accelerator::shidiannao_like(256);
        let layer = dense(tokens, d, d);
        let full = model.layer_cost(&layer, &acc).latency;
        let parts = parts.min(tokens);
        let shards = shard_layer(&layer, parts).unwrap();
        let times: Vec<Seconds> =
            shards.iter().map(|s| model.layer_cost(s, &acc).latency).collect();
        let max = times.iter().copied().fold(Seconds::ZERO, Seconds::max);
        let sum: Seconds = times.iter().copied().sum();
        prop_assert!(max.as_secs() <= full.as_secs() + 1e-12);
        prop_assert!((sum.as_secs() - full.as_secs()).abs() / full.as_secs() < 1e-9);
    }

    /// Spreading a fixed set of layers over more chiplets never increases
    /// the evaluated pipelining latency.
    #[test]
    fn more_chiplets_never_slow_the_pipe(spread in 1usize..9) {
        let model = FittedMaestro::new();
        let pkg = McmPackage::simba_6x6();
        let g = npu_dnn::models::attention::fusion_block(
            &npu_dnn::models::attention::FusionConfig::spatial_default(),
        );
        let build = |n: usize| -> Schedule {
            let layers = g
                .iter()
                .enumerate()
                .map(|(i, (_, l))| {
                    LayerPlan {
                        source: l.clone(),
                        shards: vec![ShardAssignment {
                            layer: l.clone(),
                            chiplet: ChipletId((i % n) as u32),
                        }],
                    }
                })
                .collect();
            Schedule {
                stages: vec![StagePlan {
                    kind: npu_dnn::StageKind::SpatialFusion,
                    models: vec![ModelPlan { name: "m".into(), graph: g.clone(), layers }],
                    region: (0..n as u32).map(ChipletId).collect(),
                }],
            }
        };
        let one = evaluate(&build(1), &pkg, &model, Dtype::Fp16).pipe;
        let many = evaluate(&build(spread.max(1)), &pkg, &model, Dtype::Fp16).pipe;
        prop_assert!(many.as_secs() <= one.as_secs() * 1.001);
    }
}

/// Evaluator invariants on the matched schedule: per-stage E2E at least
/// the stage pipe; total E2E is the sum of stage E2Es; busy times fit the
/// pipelining window.
#[test]
fn evaluator_invariants_hold() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let r = ThroughputMatcher::new(&model, MatcherConfig::default())
        .match_throughput(&pipeline, &pkg)
        .report;
    let sum: f64 = r.per_stage.iter().map(|s| s.e2e.as_secs()).sum();
    assert!((sum - r.e2e.as_secs()).abs() < 1e-12);
    for s in &r.per_stage {
        assert!(
            s.e2e.as_secs() >= s.pipe.as_secs() * 0.999,
            "{}: e2e {} < pipe {}",
            s.kind,
            s.e2e,
            s.pipe
        );
    }
    for (c, b) in &r.busy {
        assert!(b.as_secs() <= r.pipe.as_secs() + 1e-12, "{c} over window");
    }
    assert!((0.0..=1.0).contains(&r.utilization));
    assert!(r.utilization <= r.utilization_used + 1e-12);
}

/// The matcher is deterministic: same inputs, same schedule.
#[test]
fn matcher_is_deterministic() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let a =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);
    let b =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.report.pipe, b.report.pipe);
}

/// Workload MACs are invariant under scheduling: the evaluator's energy
/// accounting covers exactly the pipeline's layers.
#[test]
fn scheduling_preserves_workload_energy() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let matched =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);

    // Compute energy must equal the serial single-chiplet compute energy
    // (sharding replicates no MACs; only NoP energy is added on top).
    let acc = Accelerator::shidiannao_like(256);
    let mut serial = npu_tensor::Joules::ZERO;
    for stage in pipeline.stages() {
        for sm in stage.models() {
            let cost = npu_maestro::graph_cost(&model, sm.graph(), &acc);
            serial += cost.energy() * sm.instances() as f64;
        }
    }
    let rel =
        (matched.report.compute_energy.as_joules() - serial.as_joules()).abs() / serial.as_joules();
    assert!(rel < 1e-9, "compute energy drift {rel}");
}
