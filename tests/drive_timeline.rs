//! Drive timeline cross-validation (ISSUE 5).
//!
//! The contract that makes drive results trustworthy: a single-segment
//! drive has no transition, so it must be **bit-identical** to the
//! standalone scenario run of the same (scenario, package) pair — the
//! piecewise arrival stream, the phased engine and the re-matcher may
//! add nothing. And the drive × package study, like every other grid in
//! the workspace, must be bit-identical at any worker count.

use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_mcm::McmPackage;
use npu_pipesim::simulate;
use npu_scenario::{drive_sweep, match_scenario, simulate_drive, Drive, DriveSegment, Scenario};
use npu_tensor::Seconds;

/// A one-segment drive for every built-in scenario family: no
/// transition ⇒ no divergence from the standalone run, to the bit, at
/// `--jobs 1` and `--jobs 8`.
#[test]
fn single_segment_drive_matches_standalone_scenario_bit_for_bit() {
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    for jobs in [1, 8] {
        npu_par::with_jobs(jobs, || {
            for scenario in [
                Scenario::builtin()[0].clone(),
                Scenario::builtin()[3].clone(),
            ] {
                let drive = Drive::new(
                    format!("solo-{}", scenario.name),
                    vec![DriveSegment::new(scenario.clone(), Seconds::new(1.0))],
                );
                let frames = drive.segments[0].frames();
                let out = simulate_drive(&drive, &pkg, &model, &ReconfigModel::default());
                assert_eq!(out.segments.len(), 1);
                assert!(out.transitions.is_empty());
                assert_eq!(out.total_dropped, 0, "no transition, no drops");

                let outcome = match_scenario(&scenario, &pkg, &model);
                let standalone = simulate(
                    &outcome.schedule,
                    &pkg,
                    &model,
                    &scenario.sim_config(frames),
                );

                let seg = &out.segments[0];
                for (what, drive_v, solo_v) in [
                    (
                        "steady interval",
                        seg.des_interval,
                        standalone.steady_interval,
                    ),
                    ("mean latency", seg.mean_latency, standalone.mean_latency),
                    ("max latency", seg.max_latency, standalone.max_latency),
                    // Per-segment percentiles must equal the whole-run
                    // percentiles on a single-segment drive (ISSUE 6).
                    ("p50", seg.tails.p50, standalone.tails.p50),
                    ("p95", seg.tails.p95, standalone.tails.p95),
                    ("p99", seg.tails.p99, standalone.tails.p99),
                    ("p99.9", seg.tails.p999, standalone.tails.p999),
                ] {
                    assert_eq!(
                        drive_v.as_secs().to_bits(),
                        solo_v.as_secs().to_bits(),
                        "{}/jobs {jobs}: {what} diverged ({drive_v} vs {solo_v})",
                        scenario.name
                    );
                }
                assert_eq!(seg.pipe, outcome.report.pipe, "{}", scenario.name);
            }
        });
    }
}

/// The drive × package study — matching, re-matching and the phased DES
/// inside every point — is bit-identical serial vs parallel.
#[test]
fn drive_sweep_is_identical_serial_and_parallel() {
    let drives = Drive::builtin();
    let packages = [McmPackage::simba_6x6(), McmPackage::dual_npu_12x6()];
    let model = FittedMaestro::new();
    let reconfig = ReconfigModel::default();
    let serial = npu_par::with_jobs(1, || drive_sweep(&drives, &packages, &model, &reconfig));
    let parallel = npu_par::with_jobs(8, || drive_sweep(&drives, &packages, &model, &reconfig));
    // DriveOutcome derives PartialEq over every latency/byte/count field:
    // each must match to the bit.
    assert_eq!(serial, parallel);
    // Input order: drive-major, package-minor.
    assert_eq!(serial.len(), drives.len() * packages.len());
    assert_eq!(serial[0].drive, drives[0].name);
    assert_eq!(serial[0].package, packages[0].name());
    assert_eq!(serial[1].package, packages[1].name());
}

/// Frame accounting balances under make-before-break: every drop is
/// attributed to a transition, `offered == served + dropped + flushed`
/// per segment, and a longer spin-up can only drop more frames.
#[test]
fn dropped_frame_accounting_balances() {
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let out = simulate_drive(
        &Drive::cruise_urban_degraded(),
        &pkg,
        &model,
        &ReconfigModel::default(),
    );
    assert_eq!(
        out.total_offered,
        out.segments.iter().map(|s| s.offered).sum::<usize>()
    );
    assert_eq!(
        out.total_dropped,
        out.transitions.iter().map(|t| t.dropped).sum::<usize>(),
        "every dropped frame belongs to a transition window"
    );
    for s in &out.segments {
        assert_eq!(
            s.offered,
            s.served + s.dropped + s.flushed,
            "{}: the books must balance",
            s.scenario
        );
        assert!(s.staleness >= Seconds::ZERO && s.staleness <= s.duration);
    }
    for (t, s) in out.transitions.iter().zip(&out.segments[1..]) {
        assert_eq!(t.dropped, s.dropped, "{} -> {}", t.from, t.to);
        assert!(
            t.dropped as f64
                <= (t.rematch_latency.as_secs()
                    / out.segments[0].predicted_interval.as_secs().min(0.04))
                .ceil()
                    + 1.0,
            "drops must be bounded by the barrier spin-up window"
        );
        assert!(t.stalled > 0 && t.stalled <= t.reprogrammed);
    }
    // Both headline switches are partial diffs, and the stalled reloads
    // hide behind the surviving pipeline's wavefront offset: nothing is
    // dropped where the barrier model charged the whole window.
    assert_eq!(out.total_dropped, 0, "make-before-break hides the spin-up");
    assert_eq!(out.total_flushed, 0, "partial handovers drain in flight");
    // A pathologically slow reload can no longer hide behind the
    // wavefront: drops return, and monotonically in the spin-up cost.
    let slow = ReconfigModel::new(Seconds::new(3.0), Seconds::from_micros(500.0), 1e8);
    let slow_out = simulate_drive(&Drive::cruise_urban_degraded(), &pkg, &model, &slow);
    assert!(slow_out.total_dropped > 0, "a 3 s+ stall must cost frames");
    assert!(slow_out.total_dropped >= out.total_dropped);
}
