//! Cross-crate properties of the multi-tenant fleet layer (ISSUE 9):
//! worker-count bit-identity of the `repro fleet` artifact, admission
//! invariance under candidate permutation, and exact vehicle/frame
//! accounting through packing and preemption.

use npu_core::fleet::{
    os256_package, pack_fleet, preemption_event, CoScheduler, FleetSpec, Tenant, VehicleProfile,
};
use npu_maestro::{FittedMaestro, ReconfigModel};

fn catalog_vehicle(name: &str, index: usize) -> Tenant {
    VehicleProfile::catalog()
        .iter()
        .find(|p| p.name == name)
        .expect("catalog profile")
        .vehicle(index)
}

/// The fleet artifact — seeded sampling, Study fan-out, first-fit
/// packing, preemption DES — serializes byte-identically at 1 and 8
/// workers (the dynamic half of the determinism contract).
#[test]
fn fleet_artifact_is_bit_identical_at_any_worker_count() {
    let render = || serde_json::to_string(&npu_experiments::fleet::run()).expect("serializes");
    let serial = npu_par::with_jobs(1, render);
    let wide = npu_par::with_jobs(8, render);
    assert_eq!(serial, wide);
}

/// Admission control re-sorts candidates into canonical (priority,
/// name) order, so any permutation of the same candidate list yields
/// the same colocation, the same reports and the same typed rejections.
#[test]
fn admission_is_invariant_under_candidate_permutation() {
    let model = FittedMaestro::new();
    let vehicles: Vec<Tenant> = VehicleProfile::catalog()
        .iter()
        .enumerate()
        .map(|(i, p)| p.vehicle(i))
        .collect();
    let mut reversed = vehicles.clone();
    reversed.reverse();
    let mut swapped = vehicles.clone();
    swapped.swap(0, 3);
    swapped.swap(1, 5);

    let admit = |candidates: &[Tenant]| {
        CoScheduler::new(os256_package(6, 6), &model)
            .with_verify_frames(16)
            .admit(candidates)
    };
    let baseline = admit(&vehicles);
    assert_eq!(baseline, admit(&reversed));
    assert_eq!(baseline, admit(&swapped));
    assert_eq!(
        baseline.admitted() + baseline.rejected.len(),
        vehicles.len()
    );
}

/// Every offered vehicle is either admitted onto an instance or
/// rejected with a typed reason, and every admitted vehicle's DES
/// window balances `offered == served + dropped` — across a geometry
/// that rejects part of the fleet.
#[test]
fn packing_accounts_for_every_vehicle_and_frame() {
    let model = FittedMaestro::new();
    let fleet = FleetSpec::sample(20, 2025);
    let out = pack_fleet(&fleet.vehicles, &os256_package(5, 5), &model, 16);
    assert_eq!(out.admitted() + out.rejected.len(), 20);
    assert!(!out.rejected.is_empty(), "the 5x5 rejects shuttle vehicles");
    for inst in &out.instances {
        for t in &inst.tenants {
            assert_eq!(t.offered, t.served + t.dropped, "{}", t.name);
            assert_eq!(t.offered, 16, "{}", t.name);
        }
    }
}

/// Frame accounting balances exactly through a preemption event: per
/// tenant, the frames offered across both epochs equal frames served
/// plus frames dropped in the spin-up window plus in-flight frames
/// flushed at a full-barrier handover, and migrations are never free.
#[test]
fn preemption_conserves_frames_and_charges_migrations() {
    let model = FittedMaestro::new();
    let incumbents = vec![catalog_vehicle("mining", 1), catalog_vehicle("mining", 2)];
    let arriving = catalog_vehicle("av-cruise", 0);
    let mut sched = CoScheduler::new(os256_package(8, 6), &model);
    let event = preemption_event(
        &mut sched,
        &incumbents,
        &arriving,
        6.0,
        32,
        &ReconfigModel::default(),
    )
    .expect("partition exists");
    assert!(event.balanced());
    for t in &event.tenants {
        assert_eq!(
            t.offered(),
            t.served() + t.dropped() + t.flushed(),
            "{}",
            t.name
        );
        let expected = if t.name == event.arriving { 32 } else { 64 };
        assert_eq!(t.offered(), expected, "{}", t.name);
        if t.columns_before != t.columns_after {
            assert!(t.transition.as_secs() > 0.0, "{} migrated for free", t.name);
        }
    }
}
