//! End-to-end integration: build the workload, schedule it, evaluate it,
//! simulate it — across every crate of the workspace.

use npu_core::prelude::*;

#[test]
fn full_pipeline_on_simba_6x6() {
    let platform = Platform::simba_6x6();
    let pipeline = PerceptionConfig::default().build();
    let outcome = platform.schedule_perception(&pipeline);

    // Paper §V-A: the 6x6 solution reaches ~87 ms pipelining latency.
    assert!(
        (80.0..95.0).contains(&outcome.report.pipe.as_millis()),
        "pipe {}",
        outcome.report.pipe
    );
    // All four stages are within ~12% of the FE base.
    let base = outcome
        .report
        .stage(StageKind::FeatureExtraction)
        .unwrap()
        .pipe;
    for s in &outcome.report.per_stage {
        assert!(
            s.pipe.as_secs() <= base.as_secs() * 1.12,
            "{}: {} vs base {}",
            s.kind,
            s.pipe,
            base
        );
    }
    // The chiplet budget is respected.
    assert!(outcome.schedule.chiplets_used().len() <= platform.package().len());
}

#[test]
fn schedule_survives_serde_round_trip() {
    let platform = Platform::simba_6x6();
    let outcome = platform.schedule_default_perception();
    let json = serde_json::to_string(&outcome.schedule).expect("serialize");
    let back: Schedule = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, outcome.schedule);
    // The deserialized schedule evaluates identically.
    let r = platform.evaluate(&back);
    assert_eq!(r.pipe, outcome.report.pipe);
}

#[test]
fn camera_feed_at_ten_fps_is_stable() {
    let platform = Platform::simba_6x6();
    let outcome = platform.schedule_default_perception();
    let sim = platform.simulate_camera_feed(&outcome.schedule, 16, 10.0);
    // Arrival-limited: interval = 100 ms, latency bounded (no queue blowup).
    assert!((sim.steady_interval.as_millis() - 100.0).abs() < 1.0);
    assert!(sim.max_latency.as_millis() < 3.0 * outcome.report.e2e.as_millis());
}

#[test]
fn custom_workload_with_fewer_cameras() {
    // A 4-camera variant still schedules and pipelines.
    let mut cfg = PerceptionConfig {
        cameras: 4,
        ..PerceptionConfig::default()
    };
    cfg.s_fuse.proj_tokens = 4 * 1600;
    let pipeline = cfg.build();
    assert_eq!(pipeline.stage(StageKind::FeatureExtraction).replicas(), 4);

    let platform = Platform::simba_6x6();
    let outcome = platform.schedule_perception(&pipeline);
    assert!(outcome.report.pipe.as_millis() < 100.0);
}
