//! Parallel-vs-serial determinism: the executor contract, end to end.
//!
//! `npu_par::par_map` returns input-ordered results and every consumer
//! folds them exactly as the old serial loops did, so a sweep or DSE run
//! must be **bit-identical** at any worker count. Since ISSUE 4 all of
//! these run through the unified `npu_study::Study` surface, so the
//! tests double as the end-to-end determinism contract of that crate on
//! the real artifacts: the Table I trunk DSE, the extension sweeps and
//! the scenario-aware package DSE.

use npu_dnn::PerceptionConfig;
use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_scenario::{scenario_sweep, Scenario, SWEEP_FRAMES};
use npu_sched::dse::{explore_trunks, DseConfig, TrunkVariant};
use npu_sched::sweep::{chiplet_count_sweep, failure_sweep, nop_bandwidth_sweep};

#[test]
fn explore_trunks_is_identical_serial_and_parallel() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    for variant in [TrunkVariant::OsOnly, TrunkVariant::Het(2)] {
        let serial = npu_par::with_jobs(1, || {
            explore_trunks(&pipeline, &pkg, variant, &model, DseConfig::default())
        });
        let parallel = npu_par::with_jobs(8, || {
            explore_trunks(&pipeline, &pkg, variant, &model, DseConfig::default())
        });
        // DseResult derives PartialEq over the full schedule + report:
        // every latency/energy float must match to the bit.
        assert_eq!(serial, parallel, "{variant:?} diverged across jobs");
    }
}

#[test]
fn chiplet_count_sweep_is_identical_serial_and_parallel() {
    let pipeline = PerceptionConfig::default().build();
    let model = FittedMaestro::new();
    let meshes = [(3, 3), (4, 4), (6, 6)];
    let serial = npu_par::with_jobs(1, || chiplet_count_sweep(&pipeline, &meshes, &model));
    let parallel = npu_par::with_jobs(8, || chiplet_count_sweep(&pipeline, &meshes, &model));
    assert_eq!(serial, parallel);
}

#[test]
fn failure_sweep_is_identical_serial_and_parallel() {
    let pipeline = PerceptionConfig::default().build();
    let model = FittedMaestro::new();
    let failed = [0, 6, 12];
    let serial = npu_par::with_jobs(1, || failure_sweep(&pipeline, &failed, &model));
    let parallel = npu_par::with_jobs(8, || failure_sweep(&pipeline, &failed, &model));
    assert_eq!(serial, parallel);
}

/// The scenario workbench grid — schedules, analytic reports AND the
/// DES runs inside every point — must be bit-identical at `--jobs 1`
/// and `--jobs 8` (ISSUE 3 acceptance).
#[test]
fn scenario_sweep_is_identical_serial_and_parallel() {
    let scenarios = Scenario::builtin();
    let packages = [McmPackage::simba_6x6(), McmPackage::dual_npu_12x6()];
    let model = FittedMaestro::new();
    let serial = npu_par::with_jobs(1, || {
        scenario_sweep(&scenarios, &packages, &model, SWEEP_FRAMES)
    });
    let parallel = npu_par::with_jobs(8, || {
        scenario_sweep(&scenarios, &packages, &model, SWEEP_FRAMES)
    });
    // ScenarioPoint derives PartialEq over every latency/energy float:
    // each must match to the bit.
    assert_eq!(serial, parallel);
}

#[test]
fn nop_bandwidth_sweep_is_identical_serial_and_parallel() {
    let pipeline = PerceptionConfig::default().build();
    let model = FittedMaestro::new();
    let bandwidths = [100.0, 1.0];
    let serial = npu_par::with_jobs(1, || nop_bandwidth_sweep(&pipeline, &bandwidths, &model));
    let parallel = npu_par::with_jobs(8, || nop_bandwidth_sweep(&pipeline, &bandwidths, &model));
    assert_eq!(serial, parallel);
}

/// The scenario-aware package DSE — the first pure-`Study` consumer —
/// must report the same cheapest-feasible package, and byte-identical
/// verdicts, at any `--jobs` count (ISSUE 4 acceptance).
#[test]
fn scenario_dse_selection_is_identical_serial_and_parallel() {
    let serial = npu_par::with_jobs(1, npu_experiments::scenario_dse::run);
    let parallel = npu_par::with_jobs(8, npu_experiments::scenario_dse::run);
    assert_eq!(serial.result().cheapest, parallel.result().cheapest);
    // The full typed result — every DES interval, target and verdict
    // float — must match to the bit, not just the headline winner.
    assert_eq!(serial.result(), parallel.result());
}

/// The tail-latency DSE — streamed percentiles, percentile-constrained
/// per-family winners, the envelope shift and the per-segment drive
/// tails — must be bit-identical at `--jobs 1` and `--jobs 8` (ISSUE 6
/// acceptance).
#[test]
fn tails_dse_is_identical_serial_and_parallel() {
    let serial = npu_par::with_jobs(1, npu_experiments::tails::run);
    let parallel = npu_par::with_jobs(8, npu_experiments::tails::run);
    assert_eq!(serial.cheapest_mean, parallel.cheapest_mean);
    assert_eq!(serial.cheapest_tail, parallel.cheapest_tail);
    // TailsDse derives PartialEq over every percentile float: each must
    // match to the bit, not just the headline winners.
    assert_eq!(serial, parallel);
}
