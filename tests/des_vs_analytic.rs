//! Cross-validation: the discrete-event simulator must reproduce the
//! analytical pipeline model on every schedule family the paper uses.

use npu_core::prelude::*;
use npu_mcm::McmPackage;

fn agreement(schedule: &Schedule, pkg: &McmPackage) -> (f64, Seconds, Seconds) {
    let model = FittedMaestro::new();
    let analytic = evaluate(schedule, pkg, &model, Dtype::Fp16);
    let des = npu_pipesim::simulate(
        schedule,
        pkg,
        &model,
        &npu_pipesim::SimConfig::saturated(16),
    );
    let rel = (des.steady_interval.as_secs() / analytic.pipe.as_secs() - 1.0).abs();
    (rel, des.steady_interval, analytic.pipe)
}

#[test]
fn matched_mcm_schedule_agrees() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);
    let (rel, des, ana) = agreement(&outcome.schedule, &pkg);
    assert!(rel < 0.10, "DES {des} vs analytic {ana}");
}

#[test]
fn monolithic_baseline_agrees_exactly() {
    let pipeline = PerceptionConfig::default().build().bottleneck_stages();
    let pkg = McmPackage::monolithic_9216();
    let model = FittedMaestro::new();
    let schedule = baseline_schedule(&pipeline, &pkg, Pipelining::Stagewise, &model);
    let (rel, des, ana) = agreement(&schedule, &pkg);
    // A single chip serializes everything: the DES must match exactly.
    assert!(rel < 1e-9, "DES {des} vs analytic {ana}");
}

#[test]
fn quad_baseline_agrees() {
    let pipeline = PerceptionConfig::default().build().bottleneck_stages();
    let pkg = McmPackage::quad_2304();
    let model = FittedMaestro::new();
    let schedule = baseline_schedule(&pipeline, &pkg, Pipelining::Layerwise, &model);
    let (rel, des, ana) = agreement(&schedule, &pkg);
    assert!(rel < 0.10, "DES {des} vs analytic {ana}");
}

#[test]
fn dual_npu_schedule_agrees() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::dual_npu_12x6();
    let model = FittedMaestro::new();
    let cfg = MatcherConfig {
        allow_fe_split: true,
        ..MatcherConfig::default()
    };
    let outcome = ThroughputMatcher::new(&model, cfg).minimize(&pipeline, &pkg);
    let (rel, des, ana) = agreement(&outcome.schedule, &pkg);
    assert!(rel < 0.12, "DES {des} vs analytic {ana}");
}

/// Every built-in scenario family: the saturated DES steady interval
/// must reproduce the analytic pipelining latency of that family's
/// matched schedule within 10% (ISSUE 3 acceptance).
#[test]
fn every_scenario_family_agrees_saturated() {
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    for scenario in Scenario::builtin() {
        let pipeline = scenario.workload();
        let outcome = ThroughputMatcher::new(&model, MatcherConfig::default())
            .match_throughput(&pipeline, &pkg);
        let (rel, des, ana) = agreement(&outcome.schedule, &pkg);
        assert!(
            rel < 0.10,
            "{}: DES {des} vs analytic {ana} ({:+.1}%)",
            scenario.name,
            rel * 100.0
        );
    }
}

/// Arrival-aware agreement across the whole scenario × package grid, at
/// both a serial and a parallel worker count: the DES interval under
/// each scenario's own arrival process must land within 10% of the
/// analytic prediction `max(pipe, mean arrival interval)`.
#[test]
fn scenario_sweep_agrees_at_any_worker_count() {
    let scenarios = Scenario::builtin();
    let packages = [McmPackage::simba_6x6(), McmPackage::dual_npu_12x6()];
    let model = FittedMaestro::new();
    for jobs in [1, 8] {
        let points = npu_par::with_jobs(jobs, || {
            scenario_sweep(
                &scenarios,
                &packages,
                &model,
                npu_core::scenario::SWEEP_FRAMES,
            )
        });
        assert_eq!(points.len(), scenarios.len() * packages.len());
        for p in &points {
            assert!(
                p.drift < 0.10,
                "--jobs {jobs}: {} on {}: DES {} vs predicted {} ({:+.1}%)",
                p.scenario,
                p.package,
                p.des_interval,
                p.predicted_interval,
                p.drift * 100.0
            );
        }
    }
}

#[test]
fn des_latency_always_at_least_critical_path() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);
    let des = npu_pipesim::simulate(
        &outcome.schedule,
        &pkg,
        &model,
        &npu_pipesim::SimConfig::saturated(16),
    );
    // Per-frame latency can never beat the dependency critical path.
    assert!(des.mean_latency.as_secs() >= outcome.report.e2e.as_secs() * 0.8);
}
