//! Cross-validation: the discrete-event simulator must reproduce the
//! analytical pipeline model on every schedule family the paper uses.

use npu_core::prelude::*;
use npu_mcm::McmPackage;

fn agreement(schedule: &Schedule, pkg: &McmPackage) -> (f64, Seconds, Seconds) {
    let model = FittedMaestro::new();
    let analytic = evaluate(schedule, pkg, &model, Dtype::Fp16);
    let des = npu_pipesim::simulate(
        schedule,
        pkg,
        &model,
        &npu_pipesim::SimConfig::saturated(16),
    );
    let rel = (des.steady_interval.as_secs() / analytic.pipe.as_secs() - 1.0).abs();
    (rel, des.steady_interval, analytic.pipe)
}

#[test]
fn matched_mcm_schedule_agrees() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);
    let (rel, des, ana) = agreement(&outcome.schedule, &pkg);
    assert!(rel < 0.10, "DES {des} vs analytic {ana}");
}

#[test]
fn monolithic_baseline_agrees_exactly() {
    let pipeline = PerceptionConfig::default().build().bottleneck_stages();
    let pkg = McmPackage::monolithic_9216();
    let model = FittedMaestro::new();
    let schedule = baseline_schedule(&pipeline, &pkg, Pipelining::Stagewise, &model);
    let (rel, des, ana) = agreement(&schedule, &pkg);
    // A single chip serializes everything: the DES must match exactly.
    assert!(rel < 1e-9, "DES {des} vs analytic {ana}");
}

#[test]
fn quad_baseline_agrees() {
    let pipeline = PerceptionConfig::default().build().bottleneck_stages();
    let pkg = McmPackage::quad_2304();
    let model = FittedMaestro::new();
    let schedule = baseline_schedule(&pipeline, &pkg, Pipelining::Layerwise, &model);
    let (rel, des, ana) = agreement(&schedule, &pkg);
    assert!(rel < 0.10, "DES {des} vs analytic {ana}");
}

#[test]
fn dual_npu_schedule_agrees() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::dual_npu_12x6();
    let model = FittedMaestro::new();
    let cfg = MatcherConfig {
        allow_fe_split: true,
        ..MatcherConfig::default()
    };
    let outcome = ThroughputMatcher::new(&model, cfg).minimize(&pipeline, &pkg);
    let (rel, des, ana) = agreement(&outcome.schedule, &pkg);
    assert!(rel < 0.12, "DES {des} vs analytic {ana}");
}

#[test]
fn des_latency_always_at_least_critical_path() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);
    let des = npu_pipesim::simulate(
        &outcome.schedule,
        &pkg,
        &model,
        &npu_pipesim::SimConfig::saturated(16),
    );
    // Per-frame latency can never beat the dependency critical path.
    assert!(des.mean_latency.as_secs() >= outcome.report.e2e.as_secs() * 0.8);
}
