//! Refactor pin for the ISSUE 8 DES hot-path rebuild.
//!
//! The rebuilt engine (bounded in-flight frame pool, lazy arrival
//! cursor, dense chiplet state, streamed report) must be **bit-identical
//! in every observable statistic** to the old materialize-everything
//! engine. This suite keeps an in-test reference implementation of the
//! old O(frames × items) algorithm and replays all seven built-in
//! scenario families through both, comparing each `SimReport` field —
//! including the tail percentiles — by bit pattern, at `--jobs 1` and
//! `--jobs 8`. A million-frame saturated smoke then pins the new memory
//! bound: the run completes with a handful of pool slots, not a slot per
//! frame.

use std::collections::{BTreeMap, BinaryHeap};

use npu_maestro::FittedMaestro;
use npu_mcm::{ChipletId, McmPackage};
use npu_pipesim::{
    simulate, simulate_with_stats, LatencyQuantiles, Quantiles, SimConfig, SimReport,
};
use npu_scenario::{match_scenario, Scenario, SWEEP_FRAMES};
use npu_sched::{flatten_items, LayerPlan, ModelPlan, Schedule, SimItem, StagePlan};
use npu_tensor::Dtype;

/// Raw outcome of the reference pass: exactly what the old engine
/// materialized before ISSUE 8.
struct RefRun {
    arrivals: Vec<f64>,
    completions: Vec<f64>,
    busy: BTreeMap<ChipletId, f64>,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct RefJob {
    frame: usize,
    item: usize,
}

enum RefEvent {
    Arrival(usize),
    Done { chiplet: ChipletId, job: RefJob },
}

/// The pre-ISSUE-8 engine, verbatim in structure: all arrivals heaped
/// upfront (seq order = frame order, below every completion seq), a
/// per-frame O(items) dependency-counter table, `BTreeMap`-keyed chiplet
/// state, and full arrival/completion vectors.
fn reference_run(items: &[SimItem], times: &[f64]) -> RefRun {
    let frames = times.len();
    let n_items = items.len();

    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_items];
    for (i, item) in items.iter().enumerate() {
        for &d in &item.deps {
            dependents[d].push(i);
        }
    }
    let mut deps_left: Vec<Vec<usize>> = (0..frames)
        .map(|_| items.iter().map(|it| it.deps.len()).collect())
        .collect();
    let mut remaining: Vec<usize> = vec![n_items; frames];

    let mut ready: BTreeMap<ChipletId, BinaryHeap<std::cmp::Reverse<RefJob>>> = BTreeMap::new();
    let mut busy_until: BTreeMap<ChipletId, f64> = BTreeMap::new();
    let mut busy_time: BTreeMap<ChipletId, f64> = BTreeMap::new();
    for item in items {
        ready.entry(item.chiplet).or_default();
        busy_time.entry(item.chiplet).or_insert(0.0);
    }

    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    // Events are stored out-of-band so the heap key stays `Ord`:
    // (time bits via total order, seq, event index).
    let mut events: Vec<RefEvent> = Vec::new();
    let mut seq = 0u64;
    let key = |t: f64, seq: u64, idx: usize| {
        // f64 total-order bits: flip sign bit for positives, all bits
        // for negatives — same order as `total_cmp`.
        let b = t.to_bits();
        let ord = if b >> 63 == 0 { b | (1 << 63) } else { !b };
        std::cmp::Reverse((ord, seq, idx))
    };
    for (f, &t) in times.iter().enumerate() {
        seq += 1;
        events.push(RefEvent::Arrival(f));
        heap.push(key(t, seq, events.len() - 1));
    }
    let mut event_time: Vec<f64> = times.to_vec();

    let mut arrivals = vec![0.0; frames];
    let mut completions = vec![f64::NAN; frames];

    macro_rules! dispatch {
        ($chiplet:expr, $now:expr) => {{
            let c = $chiplet;
            let now = $now;
            if busy_until.get(&c).copied().unwrap_or(0.0) <= now {
                if let Some(std::cmp::Reverse(job)) = ready.get_mut(&c).and_then(|q| q.pop()) {
                    let dur = items[job.item].duration.as_secs();
                    busy_until.insert(c, now + dur);
                    *busy_time.get_mut(&c).unwrap() += dur;
                    seq += 1;
                    events.push(RefEvent::Done { chiplet: c, job });
                    event_time.push(now + dur);
                    heap.push(key(now + dur, seq, events.len() - 1));
                }
            }
        }};
    }
    macro_rules! enqueue {
        ($job:expr, $now:expr) => {{
            let job: RefJob = $job;
            let c = items[job.item].chiplet;
            ready.get_mut(&c).unwrap().push(std::cmp::Reverse(job));
            dispatch!(c, $now);
        }};
    }

    while let Some(std::cmp::Reverse((_, _, idx))) = heap.pop() {
        let time = event_time[idx];
        match events[idx] {
            RefEvent::Arrival(frame) => {
                arrivals[frame] = time;
                for (i, item) in items.iter().enumerate() {
                    if item.deps.is_empty() {
                        enqueue!(RefJob { frame, item: i }, time);
                    }
                }
            }
            RefEvent::Done { chiplet, job } => {
                remaining[job.frame] -= 1;
                if remaining[job.frame] == 0 {
                    completions[job.frame] = time;
                }
                for &succ in &dependents[job.item] {
                    deps_left[job.frame][succ] -= 1;
                    if deps_left[job.frame][succ] == 0 {
                        enqueue!(
                            RefJob {
                                frame: job.frame,
                                item: succ,
                            },
                            time
                        );
                    }
                }
                dispatch!(chiplet, time);
            }
        }
    }

    assert!(remaining.iter().all(|&r| r == 0), "all frames completed");
    RefRun {
        arrivals,
        completions,
        busy: busy_time,
    }
}

/// Replays the old report math over the reference run and compares every
/// observable `SimReport` field to the engine's, bit for bit.
fn assert_matches_reference(what: &str, rep: &SimReport, run: &RefRun, warmup: usize) {
    let n = run.completions.len();
    let trim = warmup.min(n.saturating_sub(1) / 2);
    let (lo, hi) = (trim, n - trim);
    let len = hi - lo;
    let lat = |i: usize| run.completions[i] - run.arrivals[i];

    let steady = if len >= 2 {
        (run.completions[hi - 1] - run.completions[lo]) / (len - 1) as f64
    } else {
        lat(lo)
    };
    let mean: f64 = (lo..hi).map(lat).sum::<f64>() / len as f64;
    let max: f64 = (lo..hi).map(lat).fold(0.0, f64::max);
    let mut sketch = Quantiles::new();
    for i in lo..hi {
        sketch.insert(lat(i));
    }
    let tails = LatencyQuantiles::from_stream(&sketch);

    let bits = |v: f64| v.to_bits();
    assert_eq!(rep.measured_frames, len, "{what}: measured_frames");
    assert_eq!(
        bits(rep.steady_interval.as_secs()),
        bits(steady),
        "{what}: steady_interval"
    );
    assert_eq!(
        bits(rep.mean_latency.as_secs()),
        bits(mean),
        "{what}: mean_latency"
    );
    assert_eq!(
        bits(rep.max_latency.as_secs()),
        bits(max),
        "{what}: max_latency"
    );
    for (label, got, want) in [
        ("p50", rep.tails.p50, tails.p50),
        ("p95", rep.tails.p95, tails.p95),
        ("p99", rep.tails.p99, tails.p99),
        ("p99.9", rep.tails.p999, tails.p999),
    ] {
        assert_eq!(
            bits(got.as_secs()),
            bits(want.as_secs()),
            "{what}: tail {label}"
        );
    }
    assert_eq!(
        bits(rep.throughput_fps),
        bits(if steady == 0.0 { 0.0 } else { 1.0 / steady }),
        "{what}: throughput"
    );
    let span = run.completions.iter().fold(0.0, |a, &c| f64::max(a, c)) - run.arrivals[0];
    for (&c, &b) in &run.busy {
        let want = if span > 0.0 { b / span } else { 0.0 };
        assert_eq!(
            bits(rep.busy_fraction(c).expect("chiplet hosted work")),
            bits(want),
            "{what}: busy fraction of {c:?}"
        );
    }
}

/// Every built-in scenario family, matched and simulated on the paper's
/// 6×6 package, produces a bit-identical report from the rebuilt engine
/// — at one worker and at eight.
#[test]
fn all_scenario_families_pin_the_old_engine_bit_for_bit() {
    let model = FittedMaestro::new();
    let pkg = McmPackage::simba_6x6();
    for scenario in Scenario::builtin() {
        let outcome = match_scenario(&scenario, &pkg, &model);
        let cfg = scenario.sim_config(SWEEP_FRAMES);
        let items = flatten_items(&outcome.schedule, &pkg, &model, cfg.dtype);
        let times = cfg.arrivals.times(cfg.frames);
        let reference = reference_run(&items, &times);
        for jobs in [1, 8] {
            let rep = npu_par::with_jobs(jobs, || simulate(&outcome.schedule, &pkg, &model, &cfg));
            assert_matches_reference(
                &format!("{} (jobs {jobs})", scenario.name),
                &rep,
                &reference,
                cfg.warmup,
            );
        }
    }
}

/// A million saturated frames through a two-chiplet pipeline: the run
/// completes, the statistics stay sane, and the in-flight pool's
/// high-water mark is a handful of slots — the O(items × in-flight)
/// memory bound, three orders of magnitude under one-slot-per-frame.
#[test]
fn million_frame_saturated_run_keeps_the_pool_bounded() {
    use npu_dnn::models::attention::{fusion_block, FusionConfig};
    use npu_dnn::StageKind;

    let g = fusion_block(&FusionConfig::spatial_default());
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    // Heavy trunk on chiplet 0 (the entry bottleneck), cheap output
    // compression on chiplet 1: frames drain as fast as they clear the
    // trunk, so in-flight occupancy is the pipeline depth, not the
    // frame backlog.
    let mut mp = ModelPlan::on_single_chiplet("s", g.clone(), ChipletId(0));
    let out = g.find("s_fuse.compress").expect("fusion block compresses");
    *mp.layer_plan_mut(out) = LayerPlan::single(g.layer(out).clone(), ChipletId(1));
    let schedule = Schedule {
        stages: vec![StagePlan {
            kind: StageKind::SpatialFusion,
            models: vec![mp],
            region: vec![ChipletId(0), ChipletId(1)],
        }],
    };

    let frames = 1_000_000;
    let (rep, stats) = simulate_with_stats(&schedule, &pkg, &model, &SimConfig::saturated(frames));
    assert_eq!(stats.frames, frames);
    assert!(
        stats.peak_in_flight < 16,
        "pool must stay bounded by pipelining depth, got {} slots",
        stats.peak_in_flight
    );
    assert_eq!(rep.measured_frames, frames - 2 * 4);
    assert!(rep.steady_interval.as_secs() > 0.0);
    assert!(rep.tails.p50 <= rep.tails.p999);
    assert!(rep.busy_fraction(ChipletId(0)).unwrap() > 0.9, "saturated");
}

/// The `Dtype` import is part of the pinned surface: the reference and
/// the engine must flatten with the same accounting datatype.
#[test]
fn sim_config_dtype_matches_flatten_default() {
    let cfg = SimConfig::saturated(4);
    assert_eq!(cfg.dtype, Dtype::Fp16);
}
