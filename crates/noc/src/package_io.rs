//! Package-edge DRAM ports.
//!
//! Sensor inputs and weights enter the package through DRAM/PHY ports on
//! the west edge (matching Simba's package organization where the
//! package-level I/O sits on one side). A chiplet's DRAM path is the XY
//! route to its row's west-edge node plus one hop into the port.

use serde::{Deserialize, Serialize};

use crate::topology::{Mesh2d, NodeId};

/// DRAM port placement on the package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramPorts {
    mesh: Mesh2d,
}

impl DramPorts {
    /// West-edge ports for the given mesh.
    pub fn west_edge(mesh: Mesh2d) -> Self {
        DramPorts { mesh }
    }

    /// Hop count from a node to its nearest DRAM port (west edge of its
    /// row, plus one hop into the port).
    pub fn hops_to_dram(&self, n: NodeId) -> u64 {
        self.mesh.coord(n).x as u64 + 1
    }

    /// The mesh this placement refers to.
    pub fn mesh(&self) -> Mesh2d {
        self.mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn west_column_is_one_hop() {
        let mesh = Mesh2d::new(6, 6);
        let ports = DramPorts::west_edge(mesh);
        assert_eq!(ports.hops_to_dram(mesh.node(0, 3)), 1);
        assert_eq!(ports.hops_to_dram(mesh.node(5, 0)), 6);
    }
}
