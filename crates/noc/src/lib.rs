//! Network-on-Package (NoP) cost model.
//!
//! The paper models inter-chiplet data movement with Simba's
//! microarchitecture parameters scaled to 28 nm (§IV-D):
//!
//! * interconnect bandwidth: 100 GB/s per chiplet,
//! * per-hop latency: 35 ns,
//! * transmission energy: 2.04 pJ/bit,
//!
//! with transmission latency = feature-map size / bandwidth + hops × hop
//! latency, and energy = bits × pJ/bit × hops. This crate implements that
//! model over a 2-D mesh with XY routing, plus per-link traffic
//! aggregation and package-edge DRAM ports.
//!
//! # Examples
//!
//! ```
//! use npu_noc::{LinkParams, Mesh2d, TransferCost};
//! use npu_tensor::Bytes;
//!
//! let mesh = Mesh2d::new(6, 6);
//! let (a, b) = (mesh.node(0, 0), mesh.node(3, 2));
//! let hops = mesh.manhattan(a, b);
//! assert_eq!(hops, 5);
//! let cost = TransferCost::unicast(Bytes::from_mib(1), hops, &LinkParams::simba_28nm());
//! assert!(cost.latency.as_micros() > 10.0); // 1 MiB / 100 GB/s ≈ 10.5 us
//! ```

pub mod link;
pub mod package_io;
pub mod topology;
pub mod traffic;
pub mod transfer;

pub use link::LinkParams;
pub use package_io::DramPorts;
pub use topology::{Coord, Mesh2d, NodeId};
pub use traffic::TrafficMatrix;
pub use transfer::TransferCost;
