//! Transfer cost computation.

use std::iter::Sum;
use std::ops::Add;

use serde::{Deserialize, Serialize};

use npu_tensor::{Bytes, Joules, Seconds};

use crate::link::LinkParams;

/// The cost of moving data over the NoP.
///
/// Follows the paper's model (§IV-D): latency is the feature-map
/// serialization time over the link bandwidth plus per-hop router latency;
/// energy is bits × per-bit energy × hops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferCost {
    /// Transfer latency.
    pub latency: Seconds,
    /// Transfer energy.
    pub energy: Joules,
    /// Bytes moved (payload, not multiplied by hops).
    pub bytes: Bytes,
    /// Worst-case hop count involved.
    pub hops: u64,
}

impl TransferCost {
    /// A zero transfer.
    pub const ZERO: TransferCost = TransferCost {
        latency: Seconds::ZERO,
        energy: Joules::ZERO,
        bytes: Bytes::ZERO,
        hops: 0,
    };

    /// Point-to-point transfer of `bytes` over `hops` hops.
    ///
    /// Follows the paper's store-and-forward formulation (§IV-D):
    /// latency is the serialization time *multiplied by the hop count*
    /// plus the per-hop router latency; energy is bits × pJ/bit × hops.
    pub fn unicast(bytes: Bytes, hops: u64, link: &LinkParams) -> Self {
        if hops == 0 {
            // Producer and consumer share a chiplet: on-chip, free at NoP
            // granularity.
            return TransferCost {
                bytes,
                ..TransferCost::ZERO
            };
        }
        let serialization = Seconds::new(bytes.as_f64() / link.bandwidth_bytes_per_sec);
        TransferCost {
            latency: (serialization + link.hop_latency) * hops as f64,
            energy: link.energy_per_bit * (bytes.bits() as f64 * hops as f64),
            bytes,
            hops,
        }
    }

    /// Scatter/multicast of `bytes` to several destinations: the critical
    /// latency is set by the farthest destination's store-and-forward
    /// path, and energy accumulates per destination path.
    pub fn multicast(bytes: Bytes, hops_to_each: &[u64], link: &LinkParams) -> Self {
        let far = hops_to_each.iter().copied().max().unwrap_or(0);
        if far == 0 {
            return TransferCost {
                bytes,
                ..TransferCost::ZERO
            };
        }
        let serialization = Seconds::new(bytes.as_f64() / link.bandwidth_bytes_per_sec);
        let total_hop_bytes: f64 = hops_to_each
            .iter()
            .map(|&h| bytes.bits() as f64 * h as f64)
            .sum();
        TransferCost {
            latency: (serialization + link.hop_latency) * far as f64,
            energy: link.energy_per_bit * total_hop_bytes,
            bytes,
            hops: far,
        }
    }

    /// Gather of shards into one destination: each remote shard's
    /// store-and-forward time serializes through the destination port
    /// back-to-back (the paper's §IV-D observation that gathers of sharded
    /// outputs raise NoP latency).
    pub fn gather(shards: &[(Bytes, u64)], link: &LinkParams) -> Self {
        let far = shards.iter().map(|&(_, h)| h).max().unwrap_or(0);
        let all: Bytes = shards.iter().map(|&(b, _)| b).sum();
        if far == 0 {
            return TransferCost {
                bytes: all,
                ..TransferCost::ZERO
            };
        }
        let latency: Seconds = shards
            .iter()
            .map(|&(b, h)| {
                (Seconds::new(b.as_f64() / link.bandwidth_bytes_per_sec) + link.hop_latency)
                    * h as f64
            })
            .sum();
        let energy_bits: f64 = shards
            .iter()
            .map(|&(b, h)| b.bits() as f64 * h as f64)
            .sum();
        TransferCost {
            latency,
            energy: link.energy_per_bit * energy_bits,
            bytes: all,
            hops: far,
        }
    }
}

impl Add for TransferCost {
    type Output = TransferCost;
    fn add(self, rhs: TransferCost) -> TransferCost {
        TransferCost {
            latency: self.latency + rhs.latency,
            energy: self.energy + rhs.energy,
            bytes: self.bytes + rhs.bytes,
            hops: self.hops.max(rhs.hops),
        }
    }
}

impl Sum for TransferCost {
    fn sum<I: Iterator<Item = TransferCost>>(iter: I) -> TransferCost {
        iter.fold(TransferCost::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unicast_matches_paper_formula() {
        let link = LinkParams::simba_28nm();
        let bytes = Bytes::new(1_000_000);
        let c = TransferCost::unicast(bytes, 3, &link);
        // Store-and-forward: 3 hops x (1 MB / 100 GB/s + 35 ns).
        let expected_lat = 3.0 * (1e6 / 100e9 + 35e-9);
        assert!((c.latency.as_secs() - expected_lat).abs() < 1e-15);
        // 8 Mbit x 2.04 pJ x 3 hops.
        let expected_e = 8e6 * 2.04e-12 * 3.0;
        assert!((c.energy.as_joules() - expected_e).abs() < 1e-15);
    }

    #[test]
    fn zero_hops_is_free() {
        let c = TransferCost::unicast(Bytes::from_mib(64), 0, &LinkParams::default());
        assert!(c.latency.is_zero());
        assert_eq!(c.energy, Joules::ZERO);
    }

    #[test]
    fn multicast_latency_set_by_farthest() {
        let link = LinkParams::default();
        let c = TransferCost::multicast(Bytes::new(1000), &[1, 5, 2], &link);
        assert_eq!(c.hops, 5);
        let uni = TransferCost::unicast(Bytes::new(1000), 5, &link);
        assert_eq!(c.latency, uni.latency);
        // Energy accumulates over all paths: 8 hops total.
        let expected = link.energy_per_bit * (8000.0 * 8.0);
        assert!((c.energy.as_joules() - expected.as_joules()).abs() < 1e-18);
    }

    #[test]
    fn gather_serializes_remote_shards_only() {
        let link = LinkParams::default();
        let shards = [
            (Bytes::new(500), 2),
            (Bytes::new(500), 0),
            (Bytes::new(500), 4),
        ];
        let c = TransferCost::gather(&shards, &link);
        assert_eq!(c.hops, 4);
        assert_eq!(c.bytes, Bytes::new(1500));
        // Remote shards accumulate store-and-forward time: (2+4) hop-loads.
        let per_hop = 500.0 / link.bandwidth_bytes_per_sec + 35e-9;
        let expected = 6.0 * per_hop;
        assert!((c.latency.as_secs() - expected).abs() < 1e-15);
    }

    proptest! {
        /// Energy and serialization latency are linear in bytes.
        #[test]
        fn unicast_linear_in_bytes(b in 1u64..10_000_000, hops in 1u64..12) {
            let link = LinkParams::default();
            let one = TransferCost::unicast(Bytes::new(b), hops, &link);
            let two = TransferCost::unicast(Bytes::new(2 * b), hops, &link);
            prop_assert!((two.energy.as_joules() - 2.0 * one.energy.as_joules()).abs() < 1e-12);
            let hop_part = link.hop_latency * hops as f64;
            let ser1 = one.latency - hop_part;
            let ser2 = two.latency - hop_part;
            prop_assert!((ser2.as_secs() - 2.0 * ser1.as_secs()).abs() < 1e-12);
        }

        /// More hops never cost less.
        #[test]
        fn monotone_in_hops(b in 1u64..1_000_000, h in 0u64..11) {
            let link = LinkParams::default();
            let near = TransferCost::unicast(Bytes::new(b), h, &link);
            let far = TransferCost::unicast(Bytes::new(b), h + 1, &link);
            prop_assert!(far.latency >= near.latency);
            prop_assert!(far.energy >= near.energy);
        }
    }
}
