//! 2-D mesh topology with XY routing.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A node (chiplet slot) in the mesh, identified by its dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Mesh coordinates: `x` is the column (0 = west edge), `y` the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A `width × height` 2-D mesh (the paper's Simba package is 6×6; the
/// dual-NPU study uses 12×6).
///
/// # Examples
///
/// ```
/// use npu_noc::Mesh2d;
/// let m = Mesh2d::new(6, 6);
/// assert_eq!(m.len(), 36);
/// let n = m.node(5, 5);
/// assert_eq!(m.coord(n).x, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh2d {
    width: u32,
    height: u32,
}

impl Mesh2d {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mesh extents must be positive");
        Mesh2d { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// True for a degenerate 1×1 mesh only; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node(&self, x: u32, y: u32) -> NodeId {
        assert!(x < self.width && y < self.height, "coords out of range");
        NodeId(y * self.width + x)
    }

    /// Coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this mesh.
    pub fn coord(&self, n: NodeId) -> Coord {
        assert!((n.0 as usize) < self.len(), "node out of range");
        Coord {
            x: n.0 % self.width,
            y: n.0 / self.width,
        }
    }

    /// Iterates all nodes in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.width * self.height).map(NodeId)
    }

    /// Manhattan (XY-routed) hop count between two nodes.
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> u64 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)) as u64
    }

    /// The XY route from `a` to `b` (X first, then Y), inclusive of both
    /// endpoints. A route of `h` hops has `h + 1` nodes.
    pub fn xy_route(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let (ca, cb) = (self.coord(a), self.coord(b));
        let mut path = vec![a];
        let mut x = ca.x;
        let mut y = ca.y;
        while x != cb.x {
            x = if cb.x > x { x + 1 } else { x - 1 };
            path.push(self.node(x, y));
        }
        while y != cb.y {
            y = if cb.y > y { y + 1 } else { y - 1 };
            path.push(self.node(x, y));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh2d::new(6, 6);
        for n in m.nodes() {
            let c = m.coord(n);
            assert_eq!(m.node(c.x, c.y), n);
        }
    }

    #[test]
    fn manhattan_examples() {
        let m = Mesh2d::new(6, 6);
        assert_eq!(m.manhattan(m.node(0, 0), m.node(0, 0)), 0);
        assert_eq!(m.manhattan(m.node(0, 0), m.node(5, 5)), 10);
        assert_eq!(m.manhattan(m.node(2, 1), m.node(4, 4)), 5);
    }

    #[test]
    fn xy_route_goes_x_first() {
        let m = Mesh2d::new(6, 6);
        let route = m.xy_route(m.node(0, 0), m.node(2, 1));
        let coords: Vec<_> = route
            .iter()
            .map(|&n| (m.coord(n).x, m.coord(n).y))
            .collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_coords_panic() {
        let _ = Mesh2d::new(6, 6).node(6, 0);
    }

    proptest! {
        /// The XY route length always equals the Manhattan distance,
        /// the route starts at `a`, ends at `b`, and every consecutive
        /// pair of route nodes is exactly one mesh hop apart.
        #[test]
        fn route_length_is_manhattan(
            ax in 0u32..6, ay in 0u32..6, bx in 0u32..6, by in 0u32..6
        ) {
            let m = Mesh2d::new(6, 6);
            let (a, b) = (m.node(ax, ay), m.node(bx, by));
            let route = m.xy_route(a, b);
            prop_assert_eq!(route.len() as u64, m.manhattan(a, b) + 1);
            prop_assert_eq!(route[0], a);
            prop_assert_eq!(*route.last().unwrap(), b);
            for pair in route.windows(2) {
                prop_assert_eq!(m.manhattan(pair[0], pair[1]), 1);
            }
        }

        /// Manhattan distance is symmetric and satisfies the triangle
        /// inequality.
        #[test]
        fn manhattan_metric(
            ax in 0u32..12, ay in 0u32..6, bx in 0u32..12, by in 0u32..6,
            cx in 0u32..12, cy in 0u32..6
        ) {
            let m = Mesh2d::new(12, 6);
            let (a, b, c) = (m.node(ax, ay), m.node(bx, by), m.node(cx, cy));
            prop_assert_eq!(m.manhattan(a, b), m.manhattan(b, a));
            prop_assert!(m.manhattan(a, c) <= m.manhattan(a, b) + m.manhattan(b, c));
        }
    }
}
