//! NoP link parameters.

use serde::{Deserialize, Serialize};

use npu_tensor::{Joules, Seconds};

/// Physical parameters of one NoP link/router hop.
///
/// # Examples
///
/// ```
/// use npu_noc::LinkParams;
/// let l = LinkParams::simba_28nm();
/// assert_eq!(l.bandwidth_bytes_per_sec, 100.0e9);
/// assert_eq!(l.hop_latency.as_micros(), 0.035);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Serialization bandwidth per chiplet port, bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Router + link latency per hop.
    pub hop_latency: Seconds,
    /// Transmission energy per bit per hop.
    pub energy_per_bit: Joules,
}

impl LinkParams {
    /// The paper's NoP parameters: Simba microarchitecture scaled to 28 nm
    /// (§IV-D): 100 GB/s/chiplet, 35 ns/hop, 2.04 pJ/bit.
    pub fn simba_28nm() -> Self {
        LinkParams {
            bandwidth_bytes_per_sec: 100.0e9,
            hop_latency: Seconds::from_nanos(35.0),
            energy_per_bit: Joules::from_picojoules(2.04),
        }
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::simba_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_simba() {
        assert_eq!(LinkParams::default(), LinkParams::simba_28nm());
    }
}
