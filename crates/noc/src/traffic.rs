//! Per-link traffic aggregation.
//!
//! The paper's NoP analysis (Fig. 9) tracks per-layer transfer costs and
//! observes that gathers of sharded outputs raise traffic on the links
//! around the destination. This module aggregates routed bytes per
//! directed mesh link so schedules can be checked for hotspots.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use npu_tensor::{Bytes, Seconds};

use crate::link::LinkParams;
use crate::topology::{Mesh2d, NodeId};

/// Aggregated bytes per directed link.
///
/// # Examples
///
/// ```
/// use npu_noc::{Mesh2d, TrafficMatrix};
/// use npu_tensor::Bytes;
///
/// let mesh = Mesh2d::new(6, 6);
/// let mut t = TrafficMatrix::new(mesh);
/// t.add_route(mesh.node(0, 0), mesh.node(2, 0), Bytes::from_kib(4));
/// assert_eq!(t.max_link_load().as_u64(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    mesh: Mesh2d,
    // npu-lint: allow(D001) consumed via max/len aggregates only (max_link_load, active_links); order unobservable
    links: HashMap<(NodeId, NodeId), Bytes>,
    total: Bytes,
}

impl TrafficMatrix {
    /// Creates an empty traffic matrix over a mesh.
    pub fn new(mesh: Mesh2d) -> Self {
        TrafficMatrix {
            mesh,
            // npu-lint: allow(D001) same matrix as above: aggregate-only reads
            links: HashMap::new(),
            total: Bytes::ZERO,
        }
    }

    /// Routes `bytes` from `src` to `dst` along the XY path, accumulating
    /// load on every traversed link.
    pub fn add_route(&mut self, src: NodeId, dst: NodeId, bytes: Bytes) {
        let path = self.mesh.xy_route(src, dst);
        for pair in path.windows(2) {
            *self.links.entry((pair[0], pair[1])).or_insert(Bytes::ZERO) += bytes;
        }
        if path.len() > 1 {
            self.total += bytes;
        }
    }

    /// The heaviest directed-link load.
    pub fn max_link_load(&self) -> Bytes {
        self.links.values().copied().max().unwrap_or(Bytes::ZERO)
    }

    /// Total payload bytes that crossed at least one link.
    pub fn total_routed(&self) -> Bytes {
        self.total
    }

    /// Number of links with non-zero load.
    pub fn active_links(&self) -> usize {
        self.links.len()
    }

    /// Contention factor over a pipelining window: how much the hottest
    /// link exceeds what the link can carry in `window`. Values ≤ 1 mean
    /// the NoP is uncongested (the paper finds NoP costs are two orders of
    /// magnitude below compute).
    pub fn contention_factor(&self, window: Seconds, link: &LinkParams) -> f64 {
        if window.is_zero() {
            return f64::INFINITY;
        }
        let capacity = link.bandwidth_bytes_per_sec * window.as_secs();
        self.max_link_load().as_f64() / capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `total_routed` is exactly the sum of the bytes of every added
        /// route whose endpoints differ (self-routes cross no link), and
        /// no single link carries more than that total.
        #[test]
        fn total_routed_is_the_sum_of_cross_routes(
            srcs in prop::collection::vec(0usize..36, 0..12),
            dsts in prop::collection::vec(0usize..36, 0..12),
            sizes in prop::collection::vec(1u64..1_000_000, 0..12)
        ) {
            let mesh = Mesh2d::new(6, 6);
            let nodes: Vec<NodeId> = mesh.nodes().collect();
            let mut t = TrafficMatrix::new(mesh);
            let mut expected = Bytes::ZERO;
            for ((&s, &d), &b) in srcs.iter().zip(&dsts).zip(&sizes) {
                t.add_route(nodes[s], nodes[d], Bytes::new(b));
                if s != d {
                    expected += Bytes::new(b);
                }
            }
            prop_assert_eq!(t.total_routed(), expected);
            prop_assert!(t.max_link_load() <= t.total_routed());
            // Links only exist when something was routed.
            prop_assert_eq!(t.active_links() == 0, expected == Bytes::ZERO);
        }
    }

    #[test]
    fn overlapping_routes_accumulate() {
        let mesh = Mesh2d::new(6, 6);
        let mut t = TrafficMatrix::new(mesh);
        // Two routes sharing the (0,0)->(1,0) link.
        t.add_route(mesh.node(0, 0), mesh.node(2, 0), Bytes::new(100));
        t.add_route(mesh.node(0, 0), mesh.node(1, 0), Bytes::new(50));
        assert_eq!(t.max_link_load(), Bytes::new(150));
        assert_eq!(t.total_routed(), Bytes::new(150));
        assert_eq!(t.active_links(), 2);
    }

    #[test]
    fn self_route_adds_nothing() {
        let mesh = Mesh2d::new(6, 6);
        let mut t = TrafficMatrix::new(mesh);
        t.add_route(mesh.node(3, 3), mesh.node(3, 3), Bytes::from_mib(10));
        assert_eq!(t.max_link_load(), Bytes::ZERO);
        assert_eq!(t.total_routed(), Bytes::ZERO);
    }

    #[test]
    fn contention_factor_sane() {
        let mesh = Mesh2d::new(6, 6);
        let mut t = TrafficMatrix::new(mesh);
        t.add_route(mesh.node(0, 0), mesh.node(5, 0), Bytes::new(1_000_000));
        let link = LinkParams::simba_28nm();
        // 1 MB in an 82 ms window over a 100 GB/s link: ~1.2e-4.
        let f = t.contention_factor(Seconds::from_millis(82.0), &link);
        assert!(f < 1e-3, "got {f}");
    }
}
