//! MAESTRO-style analytical per-layer cost models for dataflow
//! accelerators.
//!
//! The paper evaluates perception layers with MAESTRO, an analytical DNN
//! cost model, on two accelerator templates: a Shidiannao-like
//! *output-stationary* (OS) design and an NVDLA-like *weight-stationary*
//! (WS) design. This crate reproduces that oracle:
//!
//! * [`mapping`] computes *mechanistic* spatial-mapping utilization — how
//!   many PEs a layer's loop extents can occupy on a 2-D array under each
//!   dataflow. Token-shaped operands (`x = 1`) starve the OS output map,
//!   which is the behaviour behind the paper's fusion-stage bottlenecks.
//! * [`profile`] holds the *fitted* per-op-class stall and energy
//!   coefficients that calibrate the model to the paper's published
//!   MAESTRO measurements (DESIGN.md §1 documents every constant).
//! * [`cost`] combines both into [`CostModel`] implementations:
//!   [`FittedMaestro`] (default, paper-calibrated) and
//!   [`FirstPrinciples`] (an independent roofline model for ablations).
//! * [`memo`] wraps any model in a sharded, thread-safe memoization
//!   cache ([`MemoCostModel`]) so the parallel sweep executor computes
//!   each distinct `(accelerator, layer, dtype)` cost once per sweep.
//! * [`reconfig`] models mapping-transition spin-up ([`ReconfigModel`]):
//!   the control-plane and weight-reload latency charged when an online
//!   mode switch re-programs chiplets (`npu-sched`'s schedule re-matcher
//!   consumes it).
//!
//! # Examples
//!
//! ```
//! use npu_dnn::{Layer, OpKind};
//! use npu_maestro::{Accelerator, CostModel, FittedMaestro};
//!
//! // S_FUSE QKV projection on one 256-PE Shidiannao-like chiplet:
//! // the paper reports 78.7 ms.
//! let acc = Accelerator::shidiannao_like(256);
//! let layer = Layer::intrinsic(
//!     "s_fuse.qkv",
//!     OpKind::Dense { tokens: 12_800, in_features: 256, out_features: 768 },
//! );
//! let cost = FittedMaestro::default().layer_cost(&layer, &acc);
//! assert!((cost.latency.as_millis() - 78.6).abs() < 1.0);
//! ```

pub mod accelerator;
pub mod calib;
pub mod cost;
pub mod energy;
pub mod mapper;
pub mod mapping;
pub mod memo;
pub mod pe_array;
pub mod profile;
pub mod reconfig;
pub mod report;

pub use accelerator::{Accelerator, Dataflow};
pub use cost::{CostModel, FirstPrinciples, FittedMaestro, LayerCost};
pub use energy::{breakdown, AccessEnergies, EnergyBreakdown};
pub use mapper::{best_geometry, geometry_sweep, GeometryPoint};
pub use memo::MemoCostModel;
pub use pe_array::PeArray;
pub use profile::DataflowProfile;
pub use reconfig::ReconfigModel;
pub use report::{graph_cost, ClassBreakdown, GraphCost};
