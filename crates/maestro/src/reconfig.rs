//! Chiplet reconfiguration cost: what it takes to re-program a chiplet
//! when the active mapping changes mid-drive.
//!
//! The paper evaluates one fixed mapping per workload, so mapping
//! changes are free by construction. An online mode switch (see
//! `npu-scenario`'s `Drive` timelines) is not: every chiplet whose shard
//! set changes must have its new weights streamed in through the
//! package-edge DRAM ports and its NoP routes/descriptor tables
//! rewritten by the package controller before the new mapping can accept
//! frames. This module models that spin-up window analytically — a fixed
//! supervisor overhead, a serialized per-chiplet control-plane cost, and
//! a weight-reload term limited by the shared DRAM-port bandwidth —
//! mirroring how "Chiplets on Wheels" frames dynamic reconfiguration as
//! a first-class cost for vehicle chiplet platforms.

use serde::{Deserialize, Serialize};

use npu_tensor::{Bytes, Seconds};

/// Analytical model of one mapping transition's spin-up latency.
///
/// # Examples
///
/// ```
/// use npu_maestro::ReconfigModel;
/// use npu_tensor::Bytes;
///
/// let model = ReconfigModel::default();
/// // Reloading 64 MiB of weights across 12 chiplets takes a few ms —
/// // about one 30 FPS frame interval.
/// let t = model.transition_latency(12, Bytes::from_mib(64));
/// assert!(t.as_millis() > 1.0 && t.as_millis() < 50.0);
/// // A no-op transition (nothing re-programmed) is free.
/// assert!(model.transition_latency(0, Bytes::ZERO).is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigModel {
    /// Fixed supervisor overhead per transition (quiesce the NoP, swap
    /// route tables, barrier the package) — charged once if anything
    /// changes at all.
    pub base: Seconds,
    /// Control-plane time per re-programmed chiplet (descriptor upload,
    /// mapping-table rewrite). The controller walks chiplets serially.
    pub per_chiplet: Seconds,
    /// Aggregate weight-reload bandwidth into the package in bytes/s:
    /// the west-edge DRAM ports are shared, so reloads serialize against
    /// this figure regardless of how many chiplets wait.
    pub reload_bytes_per_sec: f64,
}

impl Default for ReconfigModel {
    /// LPDDR-class package I/O (16 GB/s aggregate reload bandwidth), a
    /// 500 µs region re-allocation handshake per chiplet and a 1 ms
    /// supervisor barrier — a package-wide re-match lands around one
    /// 30 FPS frame interval, a small one well under it.
    fn default() -> Self {
        ReconfigModel {
            base: Seconds::from_millis(1.0),
            per_chiplet: Seconds::from_micros(500.0),
            reload_bytes_per_sec: 16e9,
        }
    }
}

impl ReconfigModel {
    /// A validated model.
    ///
    /// # Panics
    ///
    /// Panics if either overhead is negative/non-finite or the bandwidth
    /// is not finite and positive.
    pub fn new(base: Seconds, per_chiplet: Seconds, reload_bytes_per_sec: f64) -> Self {
        for (what, v) in [("base", base), ("per-chiplet", per_chiplet)] {
            assert!(
                v.as_secs().is_finite() && v.as_secs() >= 0.0,
                "{what} reconfiguration overhead must be finite and non-negative, got {v}"
            );
        }
        assert!(
            reload_bytes_per_sec.is_finite() && reload_bytes_per_sec > 0.0,
            "reload bandwidth must be finite and positive, got {reload_bytes_per_sec}"
        );
        ReconfigModel {
            base,
            per_chiplet,
            reload_bytes_per_sec,
        }
    }

    /// Spin-up latency of a transition re-programming `chiplets` chiplets
    /// with `weight_bytes` of new weights in total. A transition touching
    /// nothing costs nothing (the mapping is already live).
    pub fn transition_latency(&self, chiplets: usize, weight_bytes: Bytes) -> Seconds {
        if chiplets == 0 {
            return Seconds::ZERO;
        }
        let control = self.base.as_secs() + self.per_chiplet.as_secs() * chiplets as f64;
        let reload = weight_bytes.as_f64() / self.reload_bytes_per_sec;
        Seconds::new(control + reload)
    }

    /// Staged per-chiplet readiness of a make-before-break transition.
    ///
    /// `reload_bytes[k]` is the weight footprint streamed into the k-th
    /// chiplet of the control-plane walk (callers pass chiplets in walk
    /// order). The controller visits chiplets serially and the west-edge
    /// DRAM ports serialize all reloads, so the k-th chiplet comes back
    /// online once the supervisor barrier, k+1 control-plane handshakes
    /// and the first k+1 reloads have all completed:
    ///
    /// ```text
    /// r_k = base + per_chiplet * (k+1) + sum(reload_bytes[..=k]) / bw
    /// ```
    ///
    /// The returned offsets are relative to the switch instant and
    /// strictly increasing. The schedule is exact against
    /// [`transition_latency`](Self::transition_latency): the last entry is
    /// bit-identical to the scalar barrier latency of the same reload set,
    /// which anchors the full-barrier degeneration of the phased engine.
    ///
    /// ```
    /// use npu_maestro::ReconfigModel;
    /// use npu_tensor::Bytes;
    ///
    /// let m = ReconfigModel::default();
    /// let reloads = [Bytes::from_mib(4), Bytes::from_mib(16), Bytes::from_mib(1)];
    /// let staged = m.readiness_schedule(&reloads);
    /// let total: Bytes = Bytes::new(reloads.iter().map(|b| b.as_u64()).sum());
    /// assert_eq!(staged.len(), 3);
    /// assert_eq!(staged[2], m.transition_latency(3, total));
    /// assert!(staged[0] < staged[1] && staged[1] < staged[2]);
    /// ```
    pub fn readiness_schedule(&self, reload_bytes: &[Bytes]) -> Vec<Seconds> {
        let mut cum = Bytes::ZERO;
        reload_bytes
            .iter()
            .enumerate()
            .map(|(k, &bytes)| {
                cum = Bytes::new(cum.as_u64() + bytes.as_u64());
                // Same expression shape as `transition_latency` so the
                // final stage is bit-identical to the scalar barrier.
                let control = self.base.as_secs() + self.per_chiplet.as_secs() * (k + 1) as f64;
                let reload = cum.as_f64() / self.reload_bytes_per_sec;
                Seconds::new(control + reload)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_monotone_in_both_inputs() {
        let m = ReconfigModel::default();
        let small = m.transition_latency(2, Bytes::from_mib(1));
        let more_chiplets = m.transition_latency(8, Bytes::from_mib(1));
        let more_bytes = m.transition_latency(2, Bytes::from_mib(32));
        assert!(more_chiplets > small);
        assert!(more_bytes > small);
    }

    #[test]
    fn empty_transition_is_free() {
        // Even with pending bytes, zero re-programmed chiplets means the
        // mapping did not change: nothing to wait for.
        let m = ReconfigModel::default();
        assert!(m.transition_latency(0, Bytes::from_mib(512)).is_zero());
    }

    #[test]
    fn reload_term_tracks_the_port_bandwidth() {
        let m = ReconfigModel::new(Seconds::ZERO, Seconds::ZERO, 1e9);
        let t = m.transition_latency(1, Bytes::new(500_000_000));
        assert!((t.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reload bandwidth")]
    fn zero_bandwidth_is_rejected() {
        let _ = ReconfigModel::new(Seconds::ZERO, Seconds::ZERO, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_overhead_is_rejected() {
        let _ = ReconfigModel::new(Seconds::new(-1.0), Seconds::ZERO, 1e9);
    }

    #[test]
    fn serializes_round_trip() {
        let m = ReconfigModel::default();
        let json = serde_json::to_string(&m).expect("serialize");
        let back: ReconfigModel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m);
    }
}
