//! Processing-element array geometry.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_tensor::Hertz;

/// A 2-D array of processing elements.
///
/// The paper's chiplets are 256-PE (16×16) accelerators at 2 GHz; the
/// monolithic baselines are 9216-PE (96×96), 4608-PE (64×72) and 2304-PE
/// (48×48) arrays with the same total PE budget.
///
/// # Examples
///
/// ```
/// use npu_maestro::PeArray;
///
/// let chiplet = PeArray::square_ish(256);
/// assert_eq!(chiplet.dims(), (16, 16));
/// let fsd = PeArray::square_ish(9216);
/// assert_eq!(fsd.dims(), (96, 96));
/// let half = PeArray::square_ish(4608);
/// assert_eq!(half.dims(), (64, 72));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeArray {
    rows: u64,
    cols: u64,
    frequency: Hertz,
    macs_per_pe: u64,
}

impl PeArray {
    /// Creates an array with explicit geometry at the default 2 GHz.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(rows: u64, cols: u64) -> Self {
        assert!(rows > 0 && cols > 0, "PE array extents must be positive");
        PeArray {
            rows,
            cols,
            frequency: Hertz::default(),
            macs_per_pe: 1,
        }
    }

    /// Creates the most square factorization of `pes` (rows ≤ cols, rows
    /// maximal).
    ///
    /// # Panics
    ///
    /// Panics if `pes` is zero.
    pub fn square_ish(pes: u64) -> Self {
        assert!(pes > 0, "PE count must be positive");
        let mut rows = (pes as f64).sqrt() as u64;
        while rows > 1 && !pes.is_multiple_of(rows) {
            rows -= 1;
        }
        PeArray::new(rows, pes / rows)
    }

    /// Sets the clock frequency (builder style).
    pub fn with_frequency(mut self, f: Hertz) -> Self {
        self.frequency = f;
        self
    }

    /// Total PE count.
    pub fn pes(&self) -> u64 {
        self.rows * self.cols
    }

    /// `(rows, cols)` geometry.
    pub fn dims(&self) -> (u64, u64) {
        (self.rows, self.cols)
    }

    /// Row count.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Clock frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Peak MAC throughput in MACs/second.
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.pes() as f64 * self.macs_per_pe as f64 * self.frequency.as_hz()
    }
}

impl fmt::Display for PeArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} PEs @ {}", self.rows, self.cols, self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(PeArray::square_ish(256).dims(), (16, 16));
        assert_eq!(PeArray::square_ish(2304).dims(), (48, 48));
        assert_eq!(PeArray::square_ish(4608).dims(), (64, 72));
        assert_eq!(PeArray::square_ish(9216).dims(), (96, 96));
    }

    #[test]
    fn peak_throughput() {
        let a = PeArray::square_ish(256);
        assert_eq!(a.peak_macs_per_sec(), 256.0 * 2e9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pes_rejected() {
        let _ = PeArray::square_ish(0);
    }

    #[test]
    fn display() {
        assert_eq!(PeArray::new(16, 16).to_string(), "16x16 PEs @ 2.00 GHz");
    }

    proptest! {
        #[test]
        fn square_ish_preserves_pe_count(pes in 1u64..20_000) {
            let a = PeArray::square_ish(pes);
            prop_assert_eq!(a.pes(), pes);
            prop_assert!(a.rows() <= a.cols());
        }
    }
}
