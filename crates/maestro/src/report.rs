//! Graph-level cost rollups.

use serde::{Deserialize, Serialize};

use npu_dnn::{Graph, LayerId, OpClass};
use npu_tensor::{Joules, MacCount, Seconds};

use crate::accelerator::Accelerator;
use crate::cost::{CostModel, LayerCost};

/// Per-op-class latency/energy breakdown of a graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassBreakdown {
    entries: Vec<(OpClass, Seconds, Joules)>,
}

impl ClassBreakdown {
    /// Latency attributed to the class.
    pub fn latency(&self, class: OpClass) -> Seconds {
        self.entries
            .iter()
            .find(|(c, _, _)| *c == class)
            .map(|(_, l, _)| *l)
            .unwrap_or(Seconds::ZERO)
    }

    /// Energy attributed to the class.
    pub fn energy(&self, class: OpClass) -> Joules {
        self.entries
            .iter()
            .find(|(c, _, _)| *c == class)
            .map(|(_, _, e)| *e)
            .unwrap_or(Joules::ZERO)
    }

    /// Iterates non-zero classes.
    pub fn iter(&self) -> impl Iterator<Item = &(OpClass, Seconds, Joules)> {
        self.entries.iter()
    }
}

/// The cost of executing a whole graph serially on one accelerator —
/// MAESTRO's per-network evaluation mode, used for the paper's Figs. 3–4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphCost {
    per_layer: Vec<(LayerId, LayerCost)>,
    serial_latency: Seconds,
    energy: Joules,
    macs: MacCount,
    breakdown: ClassBreakdown,
}

impl GraphCost {
    /// Per-layer costs in topological order.
    pub fn per_layer(&self) -> &[(LayerId, LayerCost)] {
        &self.per_layer
    }

    /// Cost of one layer.
    pub fn layer(&self, id: LayerId) -> Option<&LayerCost> {
        self.per_layer
            .iter()
            .find(|(l, _)| *l == id)
            .map(|(_, c)| c)
    }

    /// Serial (sum over layers) latency: a single accelerator executes
    /// layers one at a time.
    pub fn serial_latency(&self) -> Seconds {
        self.serial_latency
    }

    /// Total compute energy.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Total MACs.
    pub fn macs(&self) -> MacCount {
        self.macs
    }

    /// Per-class breakdown.
    pub fn breakdown(&self) -> &ClassBreakdown {
        &self.breakdown
    }

    /// Time-weighted average active PEs over the serial execution.
    pub fn mean_active_pes(&self) -> f64 {
        if self.serial_latency.is_zero() {
            return 0.0;
        }
        let weighted: f64 = self
            .per_layer
            .iter()
            .map(|(_, c)| c.active_pes * c.latency.as_secs())
            .sum();
        weighted / self.serial_latency.as_secs()
    }
}

/// Evaluates a whole graph serially on one accelerator.
pub fn graph_cost(model: &dyn CostModel, graph: &Graph, acc: &Accelerator) -> GraphCost {
    let mut per_layer = Vec::with_capacity(graph.len());
    let mut serial = Seconds::ZERO;
    let mut energy = Joules::ZERO;
    let mut macs = MacCount::ZERO;
    let mut by_class: Vec<(OpClass, Seconds, Joules)> = OpClass::ALL
        .iter()
        .map(|&c| (c, Seconds::ZERO, Joules::ZERO))
        .collect();

    for (id, layer) in graph.iter() {
        let cost = model.layer_cost(layer, acc);
        serial += cost.latency;
        energy += cost.energy;
        macs += cost.macs;
        let entry = by_class
            .iter_mut()
            .find(|(c, _, _)| *c == layer.class())
            .expect("all classes present");
        entry.1 += cost.latency;
        entry.2 += cost.energy;
        per_layer.push((id, cost));
    }

    by_class.retain(|(_, l, _)| !l.is_zero());
    GraphCost {
        per_layer,
        serial_latency: serial,
        energy,
        macs,
        breakdown: ClassBreakdown { entries: by_class },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FittedMaestro;
    use npu_dnn::models::attention::{fusion_block, FusionConfig};
    use npu_dnn::models::{fe_bfpn, BifpnConfig, FeConfig};

    #[test]
    fn fe_graph_cost_sums_layers() {
        let g = fe_bfpn(&FeConfig::default(), &BifpnConfig::default());
        let acc = Accelerator::shidiannao_like(256);
        let gc = graph_cost(&FittedMaestro::new(), &g, &acc);
        assert_eq!(gc.per_layer().len(), g.len());
        let manual: Seconds = gc.per_layer().iter().map(|(_, c)| c.latency).sum();
        assert!((gc.serial_latency().as_secs() - manual.as_secs()).abs() < 1e-12);
        assert_eq!(gc.macs(), g.total_macs());
    }

    #[test]
    fn fe_is_conv_dominated() {
        let g = fe_bfpn(&FeConfig::default(), &BifpnConfig::default());
        let acc = Accelerator::shidiannao_like(256);
        let gc = graph_cost(&FittedMaestro::new(), &g, &acc);
        let conv_share =
            gc.breakdown().latency(OpClass::Conv).as_secs() / gc.serial_latency().as_secs();
        assert!(conv_share > 0.95, "got {conv_share}");
    }

    #[test]
    fn fusion_is_linear_dominated_and_mean_active_is_low() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let acc = Accelerator::shidiannao_like(256);
        let gc = graph_cost(&FittedMaestro::new(), &g, &acc);
        let lin = gc.breakdown().latency(OpClass::Linear).as_secs();
        assert!(lin / gc.serial_latency().as_secs() > 0.9);
        // ~16 active PEs of 256.
        assert!(gc.mean_active_pes() < 20.0);
    }
}
