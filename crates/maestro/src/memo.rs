//! A sharded memoization cache over any [`CostModel`].
//!
//! The sweep grids (trunk DSE, chiplet-count / failure / NoP sweeps) and
//! the throughput matcher's repeated schedule evaluations ask the cost
//! oracle the *same* `(accelerator, layer)` questions thousands of times:
//! every sweep point re-scores the same perception layers on the same
//! 256-PE chiplet templates. [`MemoCostModel`] wraps any inner model and
//! answers repeats from a sharded hash map, so each distinct evaluation
//! is computed once per sweep — including across the worker threads of
//! `npu-par`, which share one cache through `&MemoCostModel`.
//!
//! Because the inner model is required to be deterministic (see
//! [`CostModel`]), caching returns bit-identical results: a memoized
//! sweep equals the uncached serial sweep exactly.
//!
//! # Examples
//!
//! ```
//! use npu_dnn::{Layer, OpKind};
//! use npu_maestro::{Accelerator, CostModel, FittedMaestro, MemoCostModel};
//!
//! let inner = FittedMaestro::new();
//! let memo = MemoCostModel::new(&inner);
//! let acc = Accelerator::shidiannao_like(256);
//! let layer = Layer::intrinsic(
//!     "qkv",
//!     OpKind::Dense { tokens: 12_800, in_features: 256, out_features: 768 },
//! );
//! let first = memo.layer_cost(&layer, &acc);
//! let again = memo.layer_cost(&layer, &acc); // served from the cache
//! assert_eq!(first, again);
//! assert_eq!(memo.stats(), (1, 1)); // (hits, misses)
//! ```

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use npu_dnn::{Layer, OpKind};
use npu_tensor::{Dtype, TensorShape};

use crate::accelerator::{Accelerator, Dataflow};
use crate::cost::{CostModel, LayerCost};

/// Number of independently locked cache shards. Sixteen keeps lock
/// contention negligible at the executor's default worker counts while
/// staying cheap to allocate per sweep.
const SHARDS: usize = 16;

/// The non-name part of the cache key, all `Copy`: accelerator
/// dataflow, geometry and clock, plus the layer's operator and output
/// shape and the accounting dtype — everything
/// [`CostModel::layer_cost`] may depend on besides the profile.
///
/// The profile itself is identified by the accelerator *name* (the
/// first level of each shard's map): the in-tree constructors
/// (`shidiannao_like`, `nvdla_like`, `eyeriss_like`) encode the cost
/// profile in the name, so callers building custom [`Accelerator::new`]
/// instances must give distinct names to distinct profiles (documented
/// on [`MemoCostModel`]).
type LayerKey = (Dataflow, (u64, u64), u64, OpKind, TensorShape, Dtype);

fn layer_key(layer: &Layer, acc: &Accelerator, dtype: Dtype) -> LayerKey {
    (
        acc.dataflow(),
        acc.array().dims(),
        acc.array().frequency().as_hz().to_bits(),
        layer.op(),
        layer.out(),
        dtype,
    )
}

fn shard_of(acc_name: &str, key: &LayerKey) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    acc_name.hash(&mut h);
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// One shard: accelerator name (looked up by `&str`, so cache hits
/// allocate nothing) to that accelerator's layer-cost table.
// npu-lint: allow(D001) memo cache: looked up by key and len-summed only, never iterated for output
type Shard = Mutex<HashMap<String, HashMap<LayerKey, LayerCost>>>;

/// A thread-safe memoizing wrapper around a [`CostModel`].
///
/// Keys are `(accelerator identity, layer operator + output shape,
/// dtype)`; values are the inner model's [`LayerCost`]s, verbatim.
/// Shared across `npu-par` worker threads by reference: the shards are
/// individually locked, and a racing double-compute of the same key is
/// benign (both workers store the same deterministic value).
///
/// **Caveat:** accelerator identity includes the name but not the cost
/// profile's coefficients. Distinct profiles must use distinct
/// accelerator names (all in-tree constructors do).
pub struct MemoCostModel<'m> {
    inner: &'m dyn CostModel,
    name: String,
    dtype: Dtype,
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'m> MemoCostModel<'m> {
    /// Wraps `inner` with an empty cache (FP16 NoP-accounting key slot).
    pub fn new(inner: &'m dyn CostModel) -> Self {
        MemoCostModel::with_dtype(inner, Dtype::Fp16)
    }

    /// Wraps `inner`, tagging cache keys with `dtype`.
    ///
    /// The stock models' latencies are dtype-independent, but the key
    /// carries the datatype so quantization-aware models can be wrapped
    /// without aliasing FP16 and INT8 entries.
    pub fn with_dtype(inner: &'m dyn CostModel, dtype: Dtype) -> Self {
        MemoCostModel {
            inner,
            name: format!("memo({})", inner.name()),
            dtype,
            // npu-lint: allow(D001) cache construction; entries are value-identical regardless of insertion order
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct `(accelerator, layer, dtype)` entries cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("no poisoned shard")
                    .values()
                    // npu-lint: allow(D001) len-only aggregate: a sum over lens is order-insensitive
                    .map(HashMap::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for MemoCostModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("MemoCostModel")
            .field("inner", &self.inner.name())
            .field("entries", &self.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

impl CostModel for MemoCostModel<'_> {
    fn layer_cost(&self, layer: &Layer, acc: &Accelerator) -> LayerCost {
        let key = layer_key(layer, acc, self.dtype);
        let shard = &self.shards[shard_of(acc.name(), &key)];
        // Hit path: borrowed `&str` lookup + `Copy` tuple key — no
        // allocation on the matcher's hottest path.
        if let Some(cached) = shard
            .lock()
            .expect("no poisoned shard")
            .get(acc.name())
            .and_then(|per_acc| per_acc.get(&key))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *cached;
        }
        // Compute outside the lock: misses are the expensive path and
        // must not serialize the other workers' hits on this shard.
        let cost = self.inner.layer_cost(layer, acc);
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .lock()
            .expect("no poisoned shard")
            .entry(acc.name().to_string())
            .or_default()
            .insert(key, cost);
        cost
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FittedMaestro;
    use npu_dnn::OpKind;

    fn qkv() -> Layer {
        Layer::intrinsic(
            "qkv",
            OpKind::Dense {
                tokens: 12_800,
                in_features: 256,
                out_features: 768,
            },
        )
    }

    #[test]
    fn cache_returns_bit_identical_costs() {
        let inner = FittedMaestro::new();
        let memo = MemoCostModel::new(&inner);
        let os = Accelerator::shidiannao_like(256);
        let direct = inner.layer_cost(&qkv(), &os);
        let miss = memo.layer_cost(&qkv(), &os);
        let hit = memo.layer_cost(&qkv(), &os);
        assert_eq!(direct, miss);
        assert_eq!(direct, hit);
        assert_eq!(memo.stats(), (1, 1));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn distinct_accelerators_do_not_alias() {
        let inner = FittedMaestro::new();
        let memo = MemoCostModel::new(&inner);
        let os = memo.layer_cost(&qkv(), &Accelerator::shidiannao_like(256));
        let ws = memo.layer_cost(&qkv(), &Accelerator::nvdla_like(256));
        assert_ne!(os.latency, ws.latency);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn renamed_layers_with_equal_shape_share_an_entry() {
        // The key is the operator + shape, not the layer name: shard #0
        // and shard #1 of the same split cost the same.
        let inner = FittedMaestro::new();
        let memo = MemoCostModel::new(&inner);
        let os = Accelerator::shidiannao_like(256);
        memo.layer_cost(&qkv(), &os);
        memo.layer_cost(&qkv().renamed("qkv.shard1"), &os);
        assert_eq!(memo.stats(), (1, 1));
    }

    #[test]
    fn cache_is_shared_across_threads() {
        let inner = FittedMaestro::new();
        let memo = MemoCostModel::new(&inner);
        let os = Accelerator::shidiannao_like(256);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| memo.layer_cost(&qkv(), &os));
            }
        });
        let (hits, misses) = memo.stats();
        assert_eq!(hits + misses, 4);
        assert_eq!(memo.len(), 1, "racing threads converge on one entry");
    }

    #[test]
    fn name_reflects_the_inner_model() {
        let inner = FittedMaestro::new();
        let memo = MemoCostModel::new(&inner);
        assert_eq!(memo.name(), "memo(fitted-maestro)");
        assert!(memo.is_empty());
        assert!(format!("{memo:?}").contains("fitted-maestro"));
    }
}
