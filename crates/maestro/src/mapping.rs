//! Mechanistic spatial-mapping utilization.
//!
//! Given a layer's loop extents and an array geometry, how many PEs can
//! the dataflow's spatial mapping actually occupy?
//!
//! * **Output-stationary (Shidiannao-like)** maps the 2-D *output feature
//!   map* onto the array: `Y` over rows, `X` over columns. Spatial layers
//!   tile well; token-shaped layers (`X = 1`: dense/FFN/attention operands)
//!   occupy a single column — `min(Y, rows)` PEs. This single mechanism
//!   reproduces the paper's measured ≈32 GMAC/s linear-op rate on a 256-PE
//!   chiplet and the utilization collapse of monolithic arrays (Table II).
//! * **Weight-stationary (NVDLA-like)** maps the `K × C` weight
//!   cross-section: `K` over rows, `C` over columns.

use npu_dnn::OpDims;

use crate::accelerator::Dataflow;
use crate::pe_array::PeArray;

/// Average number of PEs the mapping keeps busy for the given op.
///
/// The value accounts for tiling edge effects: an extent of 90 on 16 rows
/// needs 6 passes of which the last is partially filled, giving
/// `90/96`-full rows on average.
///
/// The result is always in `[1, pes]`.
pub fn active_pes(df: Dataflow, dims: OpDims, array: &PeArray) -> f64 {
    let (rows, cols) = array.dims();
    let active = match df {
        Dataflow::OutputStationary => {
            if dims.is_token_shaped() {
                // One output column: Y (tokens) folds over the rows.
                dims.y.min(rows) as f64
            } else {
                tiled_occupancy(dims.y, dims.x, rows, cols)
            }
        }
        Dataflow::WeightStationary => tiled_occupancy(dims.k, dims.c, rows, cols),
        // Row-stationary: output rows across PE rows, filter-row x output-
        // channel replicas across columns (coarse Eyeriss approximation).
        Dataflow::RowStationary => tiled_occupancy(dims.y, dims.r * dims.s * dims.k, rows, cols),
    };
    active.clamp(1.0, array.pes() as f64)
}

/// Mapping utilization in `[0, 1]`: [`active_pes`] / total PEs.
pub fn utilization(df: Dataflow, dims: OpDims, array: &PeArray) -> f64 {
    active_pes(df, dims, array) / array.pes() as f64
}

/// Average occupancy of tiling an `a × b` index space over an
/// `rows × cols` array: `a·b / (⌈a/rows⌉·rows · ⌈b/cols⌉·cols) · rows·cols`.
fn tiled_occupancy(a: u64, b: u64, rows: u64, cols: u64) -> f64 {
    let tiles_a = a.div_ceil(rows);
    let tiles_b = b.div_ceil(cols);
    (a * b) as f64 / (tiles_a * tiles_b) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dims(y: u64, x: u64, k: u64, c: u64) -> OpDims {
        OpDims {
            y,
            x,
            k,
            c,
            r: 3,
            s: 3,
            stride: 1,
        }
    }

    #[test]
    fn os_conv_on_chiplet_is_nearly_full() {
        // 90x160 output on 16x16: rows 90/96 full, cols exact.
        let a = PeArray::square_ish(256);
        let act = active_pes(Dataflow::OutputStationary, dims(90, 160, 224, 224), &a);
        assert!((act - 240.0).abs() < 1e-9, "got {act}");
    }

    #[test]
    fn os_token_shaped_uses_one_column() {
        // The calibration cornerstone: dense/FFN ops on a 16x16 OS chiplet
        // keep 16 PEs busy -> 32 GMAC/s at 2 GHz.
        let a = PeArray::square_ish(256);
        let act = active_pes(Dataflow::OutputStationary, dims(12_800, 1, 768, 256), &a);
        assert_eq!(act, 16.0);
    }

    #[test]
    fn os_token_shaped_on_monolithic_uses_96() {
        let a = PeArray::square_ish(9216);
        let act = active_pes(Dataflow::OutputStationary, dims(16_000, 1, 1024, 256), &a);
        assert_eq!(act, 96.0);
    }

    #[test]
    fn monolithic_utilization_collapses_on_small_maps() {
        // 12x20 late-FE maps on a 96x96 array: ~2.6% occupancy.
        let a = PeArray::square_ish(9216);
        let u = utilization(Dataflow::OutputStationary, dims(12, 20, 2048, 1024), &a);
        assert!(u < 0.03, "got {u}");
    }

    #[test]
    fn ws_maps_weight_cross_section() {
        let a = PeArray::square_ish(256);
        // K=768, C=256 tiles the 16x16 array exactly.
        let act = active_pes(Dataflow::WeightStationary, dims(12_800, 1, 768, 256), &a);
        assert_eq!(act, 256.0);
        // Thin stem (C=3) starves WS columns.
        let act = active_pes(Dataflow::WeightStationary, dims(180, 320, 64, 3), &a);
        assert!(act < 64.0, "got {act}");
    }

    #[test]
    fn rs_does_not_starve_on_token_ops() {
        // The row-stationary extension keeps the array busy on dense ops.
        let a = PeArray::square_ish(256);
        let os = active_pes(Dataflow::OutputStationary, dims(12_800, 1, 768, 256), &a);
        let mut d = dims(12_800, 1, 768, 256);
        d.r = 1;
        d.s = 1;
        let rs = active_pes(Dataflow::RowStationary, d, &a);
        assert!(rs > 10.0 * os, "rs {rs} vs os {os}");
    }

    #[test]
    fn active_is_at_least_one() {
        let a = PeArray::square_ish(256);
        let act = active_pes(Dataflow::OutputStationary, dims(1, 1, 1, 1), &a);
        assert_eq!(act, 1.0);
    }

    proptest! {
        /// Occupancy never exceeds the array and utilization is in [0,1].
        #[test]
        fn occupancy_bounded(
            y in 1u64..4000, x in 1u64..400, k in 1u64..3000, c in 1u64..3000,
            pes in prop::sample::select(vec![256u64, 2304, 4608, 9216]),
        ) {
            let a = PeArray::square_ish(pes);
            for df in [
                Dataflow::OutputStationary,
                Dataflow::WeightStationary,
                Dataflow::RowStationary,
            ] {
                let act = active_pes(df, dims(y, x, k, c), &a);
                prop_assert!(act >= 1.0);
                prop_assert!(act <= pes as f64 + 1e-9);
                let u = utilization(df, dims(y, x, k, c), &a);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&u));
            }
        }

        /// Growing the output map never reduces OS occupancy.
        #[test]
        fn os_occupancy_monotone_in_y(y in 1u64..500, x in 2u64..300) {
            let a = PeArray::square_ish(256);
            let lo = active_pes(Dataflow::OutputStationary, dims(y, x, 64, 64), &a);
            let hi = active_pes(Dataflow::OutputStationary, dims(y * 2, x, 64, 64), &a);
            // Doubling Y fills tiles at least as well on a 16-row array
            // when Y is a multiple of 16; in general allow small dips from
            // edge tiles but never below half.
            prop_assert!(hi >= lo * 0.5 - 1e-9);
        }
    }
}
