//! Per-layer cost models.

use serde::{Deserialize, Serialize};

use npu_dnn::{Layer, OpClass};
use npu_tensor::{Dtype, Joules, MacCount, Seconds};

use crate::accelerator::Accelerator;
use crate::mapping;
use crate::pe_array::PeArray;
use crate::profile::REFERENCE_PES;

/// The cost of executing one layer (or layer shard) on one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Execution latency.
    pub latency: Seconds,
    /// Compute energy.
    pub energy: Joules,
    /// MACs executed.
    pub macs: MacCount,
    /// Average PEs the mapping keeps busy on the *actual* array (the
    /// paper's "PEs utilization" metric numerator).
    pub active_pes: f64,
    /// Total PEs of the array the layer ran on.
    pub peak_pes: u64,
}

impl LayerCost {
    /// Mapping utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.active_pes / self.peak_pes as f64
    }

    /// A zero cost on the given array (used for elided layers).
    pub fn zero(peak_pes: u64) -> Self {
        LayerCost {
            latency: Seconds::ZERO,
            energy: Joules::ZERO,
            macs: MacCount::ZERO,
            active_pes: 0.0,
            peak_pes,
        }
    }
}

/// An analytical per-layer cost oracle.
///
/// Implementations must be deterministic: the schedulers call them
/// repeatedly during search. They must also be `Send + Sync` — the
/// parallel sweep executor (`npu-par`) shares one model across worker
/// threads, so interior state (e.g. [`crate::MemoCostModel`]'s cache)
/// must be thread-safe.
pub trait CostModel: Send + Sync {
    /// Cost of `layer` on `acc`.
    fn layer_cost(&self, layer: &Layer, acc: &Accelerator) -> LayerCost;

    /// Model name for reports.
    fn name(&self) -> &str;
}

/// The default, paper-calibrated cost model.
///
/// Latency: `macs / (active_ref / stall × array_scale × f)` where
/// `active_ref` is the mechanistic mapping occupancy on the 256-PE
/// reference chiplet, `stall` the fitted per-class serialization factor,
/// and `array_scale` the fitted large-array scaling (DESIGN.md §1).
/// Energy: `macs × energy_per_mac(class)`.
///
/// # Examples
///
/// ```
/// use npu_dnn::{Layer, OpKind};
/// use npu_maestro::{Accelerator, CostModel, FittedMaestro};
/// use npu_tensor::TensorShape;
///
/// let model = FittedMaestro::default();
/// let os = Accelerator::shidiannao_like(256);
/// let conv = Layer::new(
///     "conv",
///     OpKind::Conv2d { in_ch: 224, out_ch: 224, kernel: (3, 3), stride: 1 },
///     TensorShape::nchw(1, 224, 90, 160),
/// );
/// let c = model.layer_cost(&conv, &os);
/// assert!(c.utilization() > 0.9); // spatial convs fill the OS chiplet
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FittedMaestro {
    _private: (),
}

impl FittedMaestro {
    /// Creates the calibrated model.
    pub fn new() -> Self {
        FittedMaestro::default()
    }
}

impl CostModel for FittedMaestro {
    fn layer_cost(&self, layer: &Layer, acc: &Accelerator) -> LayerCost {
        let dims = layer.dims();
        let class = layer.class();
        let macs = layer.macs();
        let array = acc.array();
        let profile = acc.profile();

        // Reference-chiplet occupancy: arrays at or below the reference
        // size are evaluated directly; larger arrays get the reference
        // occupancy scaled by the fitted array-scaling efficiency.
        let pes = array.pes();
        let rate_macs_per_cycle = if pes <= REFERENCE_PES {
            mapping::active_pes(acc.dataflow(), dims, array) / profile.stall(class)
        } else {
            let reference = PeArray::square_ish(REFERENCE_PES).with_frequency(array.frequency());
            let active_ref = mapping::active_pes(acc.dataflow(), dims, &reference);
            active_ref / profile.stall(class)
                * (pes as f64 / REFERENCE_PES as f64)
                * profile.scaling_efficiency(pes)
        };

        let latency =
            Seconds::new(macs.as_f64() / (rate_macs_per_cycle * array.frequency().as_hz()));
        let energy = profile.energy_per_mac(class) * macs.as_f64();

        LayerCost {
            latency,
            energy,
            macs,
            active_pes: mapping::active_pes(acc.dataflow(), dims, array),
            peak_pes: pes,
        }
    }

    fn name(&self) -> &str {
        "fitted-maestro"
    }
}

/// An independent first-principles roofline model, provided for ablation.
///
/// Latency is `max(compute, DRAM traffic / bandwidth)` with compute at the
/// mechanistic mapping occupancy of the *actual* array and no fitted stall
/// factors. It deliberately does **not** reproduce the paper's monolithic
/// baselines (a pure roofline predicts large arrays speed up almost
/// linearly on conv layers) — comparing the two models quantifies how much
/// of the paper's result depends on MAESTRO's dataflow serialization
/// effects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirstPrinciples {
    /// Off-accelerator memory bandwidth in bytes/second.
    pub dram_bytes_per_sec: f64,
    /// Energy per MAC in pJ.
    pub mac_pj: f64,
    /// Energy per DRAM byte in pJ.
    pub dram_pj_per_byte: f64,
    /// Datatype used for traffic accounting.
    pub dtype: Dtype,
}

impl Default for FirstPrinciples {
    /// LPDDR4-class bandwidth and 28 nm-class energies.
    fn default() -> Self {
        FirstPrinciples {
            dram_bytes_per_sec: 64.0e9,
            mac_pj: 1.2,
            dram_pj_per_byte: 20.0,
            dtype: Dtype::Fp16,
        }
    }
}

impl FirstPrinciples {
    fn traffic_bytes(&self, layer: &Layer) -> f64 {
        let out = layer.output_bytes(self.dtype).as_f64();
        let weights = layer.weight_bytes(self.dtype).as_f64();
        // Input estimate: reduction extent per output element times output
        // count, discounted by typical halo/stream reuse.
        let dims = layer.dims();
        let input_elems = (dims.y * dims.x * dims.c) as f64 * dims.stride as f64;
        let input = input_elems * self.dtype.bytes_per_element() as f64;
        out + weights + input
    }
}

impl CostModel for FirstPrinciples {
    fn layer_cost(&self, layer: &Layer, acc: &Accelerator) -> LayerCost {
        let macs = layer.macs();
        let array = acc.array();
        let active = mapping::active_pes(acc.dataflow(), layer.dims(), array);
        let compute = macs.as_f64() / (active * array.frequency().as_hz());
        let traffic = self.traffic_bytes(layer);
        let mem = traffic / self.dram_bytes_per_sec;
        let latency = Seconds::new(compute.max(mem));
        let energy =
            Joules::from_picojoules(macs.as_f64() * self.mac_pj + traffic * self.dram_pj_per_byte);
        LayerCost {
            latency,
            energy,
            macs,
            active_pes: active,
            peak_pes: array.pes(),
        }
    }

    fn name(&self) -> &str {
        "first-principles"
    }
}

/// Returns true when `class` benefits from the WS dataflow's energy
/// profile (conv-like classes): the heterogeneity heuristic used by the
/// trunk DSE.
pub fn ws_energy_affine(class: OpClass) -> bool {
    matches!(class, OpClass::Conv | OpClass::Deconv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::OpKind;
    use npu_tensor::TensorShape;

    fn qkv() -> Layer {
        Layer::intrinsic(
            "s_fuse.qkv",
            OpKind::Dense {
                tokens: 12_800,
                in_features: 256,
                out_features: 768,
            },
        )
    }

    fn big_conv() -> Layer {
        Layer::new(
            "conv",
            OpKind::Conv2d {
                in_ch: 224,
                out_ch: 224,
                kernel: (3, 3),
                stride: 1,
            },
            TensorShape::nchw(1, 224, 90, 160),
        )
    }

    #[test]
    fn linear_rate_is_32_gmacs_on_os_chiplet() {
        let c = FittedMaestro::new().layer_cost(&qkv(), &Accelerator::shidiannao_like(256));
        let rate = c.macs.as_f64() / c.latency.as_secs() / 1e9;
        assert!((rate - 32.0).abs() < 0.5, "got {rate} GMAC/s");
        // The paper's S_FUSE QKV latency: 78.7 ms.
        assert!((c.latency.as_millis() - 78.6).abs() < 1.0);
    }

    #[test]
    fn ws_is_much_slower_on_linear_ops() {
        let m = FittedMaestro::new();
        let os = m.layer_cost(&qkv(), &Accelerator::shidiannao_like(256));
        let ws = m.layer_cost(&qkv(), &Accelerator::nvdla_like(256));
        let ratio = ws.latency / os.latency;
        assert!(
            (6.0..8.0).contains(&ratio),
            "fusion layers are strongly OS-affine, got {ratio:.2}"
        );
    }

    #[test]
    fn ws_is_6_85x_slower_on_convs() {
        let m = FittedMaestro::new();
        let os = m.layer_cost(&big_conv(), &Accelerator::shidiannao_like(256));
        let ws = m.layer_cost(&big_conv(), &Accelerator::nvdla_like(256));
        let ratio = ws.latency / os.latency;
        assert!((6.0..7.2).contains(&ratio), "got {ratio:.2}");
        // ...but 1.55x more energy-efficient.
        let e_ratio = os.energy / ws.energy;
        assert!((e_ratio - 1.55).abs() < 1e-6, "got {e_ratio}");
    }

    #[test]
    fn monolithic_array_barely_speeds_up() {
        let m = FittedMaestro::new();
        let chiplet = m.layer_cost(&qkv(), &Accelerator::shidiannao_like(256));
        let mono = m.layer_cost(&qkv(), &Accelerator::shidiannao_like(9216));
        let speedup = chiplet.latency / mono.latency;
        assert!(
            (1.0..1.2).contains(&speedup),
            "Table II: 36x PEs buy ~7% on one layer, got {speedup:.3}"
        );
    }

    #[test]
    fn utilization_metric_uses_actual_array() {
        let m = FittedMaestro::new();
        let mono = m.layer_cost(&qkv(), &Accelerator::shidiannao_like(9216));
        // One 96-PE column of a 96x96 array: ~1% utilization.
        assert!((mono.utilization() - 96.0 / 9216.0).abs() < 1e-9);
        let chiplet = m.layer_cost(&big_conv(), &Accelerator::shidiannao_like(256));
        assert!(chiplet.utilization() > 0.9);
    }

    #[test]
    fn energy_is_array_size_independent() {
        let m = FittedMaestro::new();
        let a = m.layer_cost(&qkv(), &Accelerator::shidiannao_like(256));
        let b = m.layer_cost(&qkv(), &Accelerator::shidiannao_like(9216));
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn first_principles_differs_from_fitted_on_monoliths() {
        let fp = FirstPrinciples::default();
        let chiplet = fp.layer_cost(&big_conv(), &Accelerator::shidiannao_like(256));
        let mono = fp.layer_cost(&big_conv(), &Accelerator::shidiannao_like(9216));
        // Roofline: the monolith is much faster on spatial convs (this is
        // exactly the effect MAESTRO's dataflow modelling removes).
        assert!(mono.latency.as_secs() < chiplet.latency.as_secs() * 0.5);
    }

    #[test]
    fn layer_cost_zero() {
        let z = LayerCost::zero(256);
        assert!(z.latency.is_zero());
        assert_eq!(z.utilization(), 0.0);
    }
}
