//! Paper reference values and the calibration comparison.
//!
//! Every value the paper reports for a single 256-PE OS chiplet
//! (§III–§IV) is recorded here and compared against the model's output;
//! the golden tests in this module are the evidence that the simulator
//! reproduces the paper's per-layer oracle.

use serde::{Deserialize, Serialize};

use npu_dnn::models::attention::{fusion_block, FusionConfig};
use npu_dnn::models::{fe_bfpn, BifpnConfig, FeConfig};
use npu_tensor::Seconds;

use crate::accelerator::Accelerator;
use crate::cost::{CostModel, FittedMaestro};
use crate::report::graph_cost;

/// Paper: S_FUSE QKV projection latency on one chiplet (§IV-B).
pub const PAPER_S_QKV_MS: f64 = 78.7;
/// Paper: S_FUSE self-attention latency on one chiplet (§IV-B).
pub const PAPER_S_ATTN_MS: f64 = 20.5;
/// Paper: S_FUSE FFN latency on one chiplet (§IV-B).
pub const PAPER_S_FFN_MS: f64 = 236.0;
/// Paper: T_FUSE QKV projection latency on one chiplet (§IV-B).
pub const PAPER_T_QKV_MS: f64 = 165.6;
/// Paper: T_FUSE self-attention latency on one chiplet (§IV-B).
pub const PAPER_T_ATTN_MS: f64 = 36.4;
/// Paper: T_FUSE FFN latency on one chiplet (§IV-B).
pub const PAPER_T_FFN_MS: f64 = 490.2;
/// Paper: FE+BFPN per-camera latency, the base pipelining latency (§IV-A).
pub const PAPER_FE_E2E_MS: f64 = 82.69;
/// Paper: average OS-over-WS speedup across workloads (§III-A).
pub const PAPER_OS_WS_SPEEDUP: f64 = 6.85;
/// Paper: WS energy-efficiency gain over OS including fusion (§III-A).
pub const PAPER_WS_ENERGY_GAIN: f64 = 1.2;
/// Paper: WS energy-efficiency gain excluding fusion stages (§III-A).
pub const PAPER_WS_ENERGY_GAIN_NO_FUSION: f64 = 1.55;

/// One calibration comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibRow {
    /// What is being compared.
    pub quantity: String,
    /// The paper's value.
    pub paper: f64,
    /// This model's value.
    pub measured: f64,
}

impl CalibRow {
    /// Relative error `|measured - paper| / paper`.
    pub fn relative_error(&self) -> f64 {
        ((self.measured - self.paper) / self.paper).abs()
    }
}

/// Computes the full calibration table: per-layer latencies on a single
/// 256-PE OS chiplet against the paper's published values.
pub fn calibration_table() -> Vec<CalibRow> {
    let model = FittedMaestro::new();
    let os = Accelerator::shidiannao_like(256);

    let ms = |s: Seconds| s.as_millis();
    let layer_ms = |graph: &npu_dnn::Graph, name: &str| -> f64 {
        let id = graph.find(name).unwrap_or_else(|| panic!("layer {name}"));
        ms(model.layer_cost(graph.layer(id), &os).latency)
    };

    let s = fusion_block(&FusionConfig::spatial_default());
    let t = fusion_block(&FusionConfig::temporal_default());
    let fe = fe_bfpn(&FeConfig::default(), &BifpnConfig::default());
    let fe_ms = ms(graph_cost(&model, &fe, &os).serial_latency());

    let s_attn = layer_ms(&s, "s_fuse.attn.score") + layer_ms(&s, "s_fuse.attn.ctx");
    let t_attn = layer_ms(&t, "t_fuse.attn.score") + layer_ms(&t, "t_fuse.attn.ctx");

    vec![
        CalibRow {
            quantity: "FE+BFPN e2e [ms]".into(),
            paper: PAPER_FE_E2E_MS,
            measured: fe_ms,
        },
        CalibRow {
            quantity: "S_FUSE qkv [ms]".into(),
            paper: PAPER_S_QKV_MS,
            measured: layer_ms(&s, "s_fuse.qkv"),
        },
        CalibRow {
            quantity: "S_FUSE attn [ms]".into(),
            paper: PAPER_S_ATTN_MS,
            measured: s_attn,
        },
        CalibRow {
            quantity: "S_FUSE ffn [ms]".into(),
            paper: PAPER_S_FFN_MS,
            measured: layer_ms(&s, "s_fuse.ffn"),
        },
        CalibRow {
            quantity: "T_FUSE qkv [ms]".into(),
            paper: PAPER_T_QKV_MS,
            measured: layer_ms(&t, "t_fuse.qkv"),
        },
        CalibRow {
            quantity: "T_FUSE attn [ms]".into(),
            paper: PAPER_T_ATTN_MS,
            measured: t_attn,
        },
        CalibRow {
            quantity: "T_FUSE ffn [ms]".into(),
            paper: PAPER_T_FFN_MS,
            measured: layer_ms(&t, "t_fuse.ffn"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tightly-fitted quantities must sit within a few percent of the
    /// paper; the structurally-derived ones within a looser band.
    #[test]
    fn calibration_within_tolerance() {
        for row in calibration_table() {
            let tol = match row.quantity.as_str() {
                // Directly calibrated via token counts (DESIGN.md §1).
                "S_FUSE qkv [ms]" | "S_FUSE attn [ms]" | "T_FUSE qkv [ms]" | "T_FUSE attn [ms]" => {
                    0.05
                }
                // Structure-derived: the paper's exact token/hidden sizes
                // for these are not recoverable; shapes hold within ~12%.
                _ => 0.13,
            };
            assert!(
                row.relative_error() <= tol,
                "{}: paper {:.2}, measured {:.2} ({:.1}% off, tol {:.0}%)",
                row.quantity,
                row.paper,
                row.measured,
                row.relative_error() * 100.0,
                tol * 100.0
            );
        }
    }

    /// Fusion stages must dominate single-chiplet latency with the paper's
    /// shares: S_FUSE 25-28%, T_FUSE 52-54% (§III-A).
    #[test]
    fn fusion_shares_match_fig3() {
        let t: f64 = calibration_table()
            .iter()
            .filter(|r| r.quantity.starts_with("T_FUSE"))
            .map(|r| r.measured)
            .sum();
        let s: f64 = calibration_table()
            .iter()
            .filter(|r| r.quantity.starts_with("S_FUSE"))
            .map(|r| r.measured)
            .sum();
        let fe = calibration_table()[0].measured;
        // Fig. 3's breakdown uses the per-camera FE plus trunks (~91 ms).
        let total = fe + s + t + 91.0;
        let s_share = s / total;
        let t_share = t / total;
        assert!((0.22..0.32).contains(&s_share), "S share {s_share:.3}");
        assert!((0.46..0.60).contains(&t_share), "T share {t_share:.3}");
    }
}
