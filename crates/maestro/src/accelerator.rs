//! Accelerator = PE array + dataflow + cost profile.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::pe_array::PeArray;
use crate::profile::DataflowProfile;

/// The stationary-operand dataflow of an accelerator.
///
/// The paper studies the two dataflows its references \[13,19,36\] found
/// dominant:
///
/// * [`Dataflow::OutputStationary`] — Shidiannao-like: the 2-D PE array is
///   mapped to output pixels, partial sums never move. Excellent latency on
///   spatial (conv-like) layers, starved by token-shaped operands.
/// * [`Dataflow::WeightStationary`] — NVDLA-like: the array is mapped to
///   the `K × C` weight cross-section; weights are fetched once, giving the
///   energy edge on convolutions at a latency cost.
/// * [`Dataflow::RowStationary`] — Eyeriss-like: filter and input rows are
///   pinned to PEs. Provided as an *extension* beyond the paper (which
///   studies OS/WS only); its profile is literature-informed, not fitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Shidiannao-like output-stationary mapping.
    OutputStationary,
    /// NVDLA-like weight-stationary mapping.
    WeightStationary,
    /// Eyeriss-like row-stationary mapping (extension; not paper-fitted).
    RowStationary,
}

impl Dataflow {
    /// Short label used in reports (`OS` / `WS`).
    pub fn label(self) -> &'static str {
        match self {
            Dataflow::OutputStationary => "OS",
            Dataflow::WeightStationary => "WS",
            Dataflow::RowStationary => "RS",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete accelerator instance: geometry, dataflow and fitted cost
/// profile.
///
/// # Examples
///
/// ```
/// use npu_maestro::{Accelerator, Dataflow};
///
/// let os = Accelerator::shidiannao_like(256);
/// assert_eq!(os.dataflow(), Dataflow::OutputStationary);
/// let ws = Accelerator::nvdla_like(256);
/// assert_eq!(ws.array().pes(), 256);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    name: String,
    array: PeArray,
    dataflow: Dataflow,
    profile: DataflowProfile,
}

impl Accelerator {
    /// Creates an accelerator from explicit parts.
    pub fn new(
        name: impl Into<String>,
        array: PeArray,
        dataflow: Dataflow,
        profile: DataflowProfile,
    ) -> Self {
        Accelerator {
            name: name.into(),
            array,
            dataflow,
            profile,
        }
    }

    /// A Shidiannao-like output-stationary accelerator with `pes` PEs and
    /// the paper-calibrated profile.
    pub fn shidiannao_like(pes: u64) -> Self {
        Accelerator::new(
            format!("shidiannao-{pes}"),
            PeArray::square_ish(pes),
            Dataflow::OutputStationary,
            DataflowProfile::shidiannao_like(),
        )
    }

    /// An NVDLA-like weight-stationary accelerator with `pes` PEs and the
    /// paper-calibrated profile.
    pub fn nvdla_like(pes: u64) -> Self {
        Accelerator::new(
            format!("nvdla-{pes}"),
            PeArray::square_ish(pes),
            Dataflow::WeightStationary,
            DataflowProfile::nvdla_like(),
        )
    }

    /// An Eyeriss-like row-stationary accelerator with `pes` PEs
    /// (extension beyond the paper; literature-informed profile).
    pub fn eyeriss_like(pes: u64) -> Self {
        Accelerator::new(
            format!("eyeriss-{pes}"),
            PeArray::square_ish(pes),
            Dataflow::RowStationary,
            DataflowProfile::eyeriss_like(),
        )
    }

    /// Accelerator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// PE array geometry.
    pub fn array(&self) -> &PeArray {
        &self.array
    }

    /// The dataflow.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// The fitted cost profile.
    pub fn profile(&self) -> &DataflowProfile {
        &self.profile
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} {}]", self.name, self.dataflow, self.array)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let os = Accelerator::shidiannao_like(256);
        assert_eq!(os.dataflow(), Dataflow::OutputStationary);
        assert_eq!(os.array().dims(), (16, 16));
        let ws = Accelerator::nvdla_like(9216);
        assert_eq!(ws.dataflow(), Dataflow::WeightStationary);
        assert_eq!(ws.array().dims(), (96, 96));
    }

    #[test]
    fn labels() {
        assert_eq!(Dataflow::OutputStationary.label(), "OS");
        assert_eq!(Dataflow::WeightStationary.to_string(), "WS");
    }
}
