//! Fitted per-op-class cost coefficients.
//!
//! The mechanistic mapping model (`mapping`) explains *where* PEs are busy;
//! the remaining gap to the paper's published MAESTRO measurements is
//! carried by two fitted coefficient sets per dataflow:
//!
//! * `stall` — a latency multiplier ≥ 1 per op class modelling operand
//!   delivery serialization (weight streaming, partial-sum read-modify-
//!   write) that the mapping alone does not capture.
//! * `energy_per_mac` — effective pJ/MAC per op class, including the
//!   memory-hierarchy traffic energy amortized per MAC.
//!
//! Every constant is documented with the paper evidence it was fitted to;
//! swap in your own [`DataflowProfile`] to model different silicon.

use serde::{Deserialize, Serialize};

use npu_dnn::OpClass;
use npu_tensor::Joules;

/// Per-op-class coefficients of one dataflow.
///
/// # Examples
///
/// ```
/// use npu_dnn::OpClass;
/// use npu_maestro::DataflowProfile;
///
/// let ws = DataflowProfile::nvdla_like();
/// // WS pays a ~6.85x serialization penalty on convolutions (paper §III-A).
/// assert!((ws.stall(OpClass::Conv) - 6.85).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowProfile {
    name: String,
    stall_conv: f64,
    stall_deconv: f64,
    stall_linear: f64,
    stall_attention: f64,
    stall_memory: f64,
    epm_conv_pj: f64,
    epm_deconv_pj: f64,
    epm_linear_pj: f64,
    epm_attention_pj: f64,
    epm_memory_pj: f64,
    /// Array-scaling exponent: effective throughput of arrays larger than
    /// the 256-PE reference chiplet scales as `(pes/256)^(1-alpha)`.
    alpha: f64,
}

/// The reference chiplet size all scaling is expressed against.
pub const REFERENCE_PES: u64 = 256;

impl DataflowProfile {
    /// Shidiannao-like (output-stationary) profile.
    ///
    /// Fitted constants (DESIGN.md §1):
    /// * stalls are 1.0 — OS is compute-bound; the token-column starvation
    ///   is modelled mechanistically by the mapping.
    /// * energy: conv 4.0 pJ/MAC, deconv 3.3, linear/attention 3.4 —
    ///   chosen so stage energies land near Figs. 6–8 / Table I and the
    ///   WS-vs-OS ratios of Fig. 3 hold (WS 1.2× better overall, 1.55×
    ///   excluding fusion).
    /// * `alpha = 0.981` — the paper's monolithic 9216-PE baseline shows
    ///   near-zero speedup over the serial chiplet sum (Table II: 1.8 s),
    ///   i.e. 36× the PEs buy only ≈7% throughput.
    pub fn shidiannao_like() -> Self {
        DataflowProfile {
            name: "shidiannao-like".to_string(),
            stall_conv: 1.0,
            stall_deconv: 1.0,
            stall_linear: 1.0,
            stall_attention: 1.0,
            stall_memory: 1.0,
            epm_conv_pj: 4.0,
            epm_deconv_pj: 3.3,
            epm_linear_pj: 3.4,
            epm_attention_pj: 3.4,
            epm_memory_pj: 0.2,
            alpha: 0.981,
        }
    }

    /// NVDLA-like (weight-stationary) profile.
    ///
    /// Fitted constants (DESIGN.md §1):
    /// * conv/deconv stall 6.85 — the paper's §III-A "OS dataflow offers
    ///   6.85× speedups over its WS counterparts".
    /// * linear/attention stall 110 — with the WS mapping keeping the full
    ///   256-PE cross-section busy, 110 yields a ≈6.9× OS advantage on
    ///   token ops (paper Fig. 4: fusion layers strongly OS-affine), and
    ///   drives the WS-only trunk configuration to the ≈6.6× end-to-end
    ///   disadvantage of Table I.
    /// * energy: conv-class = OS/1.55 (paper: 1.55× WS efficiency gain
    ///   excluding fusion; also yields DET_TR's −35% energy on WS),
    ///   linear-class = OS × 1.25 (fusion layers are OS-affine in energy).
    pub fn nvdla_like() -> Self {
        DataflowProfile {
            name: "nvdla-like".to_string(),
            stall_conv: 6.85,
            stall_deconv: 6.85,
            stall_linear: 110.0,
            stall_attention: 110.0,
            stall_memory: 1.0,
            epm_conv_pj: 4.0 / 1.55,
            epm_deconv_pj: 3.3 / 1.55,
            epm_linear_pj: 3.4 * 1.25,
            epm_attention_pj: 3.4 * 1.25,
            epm_memory_pj: 0.2,
            alpha: 0.981,
        }
    }

    /// Eyeriss-like (row-stationary) profile — an extension beyond the
    /// paper, with literature-informed (NOT paper-fitted) coefficients:
    /// row reuse makes it the energy-balanced middle ground, a bit slower
    /// than OS on spatial layers and substantially better than OS on
    /// token-shaped ops (its 1-D row mapping does not starve on `X = 1`).
    pub fn eyeriss_like() -> Self {
        DataflowProfile {
            name: "eyeriss-like".to_string(),
            stall_conv: 1.6,
            stall_deconv: 1.6,
            stall_linear: 8.0,
            stall_attention: 8.0,
            stall_memory: 1.0,
            epm_conv_pj: 3.2,
            epm_deconv_pj: 2.8,
            epm_linear_pj: 3.8,
            epm_attention_pj: 3.8,
            epm_memory_pj: 0.2,
            alpha: 0.981,
        }
    }

    /// Profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Latency multiplier (≥ 1) for the op class.
    pub fn stall(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Conv => self.stall_conv,
            OpClass::Deconv => self.stall_deconv,
            OpClass::Linear => self.stall_linear,
            OpClass::Attention => self.stall_attention,
            OpClass::Memory => self.stall_memory,
        }
    }

    /// Effective energy per MAC for the op class.
    pub fn energy_per_mac(&self, class: OpClass) -> Joules {
        let pj = match class {
            OpClass::Conv => self.epm_conv_pj,
            OpClass::Deconv => self.epm_deconv_pj,
            OpClass::Linear => self.epm_linear_pj,
            OpClass::Attention => self.epm_attention_pj,
            OpClass::Memory => self.epm_memory_pj,
        };
        Joules::from_picojoules(pj)
    }

    /// Array-scaling efficiency for an array of `pes` PEs relative to the
    /// 256-PE reference chiplet: `(pes/256)^(1-alpha) / (pes/256)`.
    ///
    /// Multiplying the reference-chiplet throughput by
    /// `(pes/256) × scaling_efficiency(pes)` gives the large-array
    /// throughput; at `alpha ≈ 0.98` a 9216-PE monolith is only ≈7% faster
    /// than one 256-PE chiplet, matching Table II.
    pub fn scaling_efficiency(&self, pes: u64) -> f64 {
        if pes <= REFERENCE_PES {
            return 1.0;
        }
        let ratio = pes as f64 / REFERENCE_PES as f64;
        ratio.powf(-self.alpha)
    }

    /// Overrides a stall coefficient (builder style; for sensitivity
    /// studies).
    pub fn with_stall(mut self, class: OpClass, stall: f64) -> Self {
        assert!(stall >= 1.0, "stall multipliers are >= 1");
        match class {
            OpClass::Conv => self.stall_conv = stall,
            OpClass::Deconv => self.stall_deconv = stall,
            OpClass::Linear => self.stall_linear = stall,
            OpClass::Attention => self.stall_attention = stall,
            OpClass::Memory => self.stall_memory = stall,
        }
        self
    }

    /// Overrides an energy coefficient in pJ/MAC (builder style).
    pub fn with_energy_per_mac_pj(mut self, class: OpClass, pj: f64) -> Self {
        assert!(pj > 0.0, "energy per MAC must be positive");
        match class {
            OpClass::Conv => self.epm_conv_pj = pj,
            OpClass::Deconv => self.epm_deconv_pj = pj,
            OpClass::Linear => self.epm_linear_pj = pj,
            OpClass::Attention => self.epm_attention_pj = pj,
            OpClass::Memory => self.epm_memory_pj = pj,
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_conv_energy_is_55_percent_better() {
        let os = DataflowProfile::shidiannao_like();
        let ws = DataflowProfile::nvdla_like();
        let ratio = os.energy_per_mac(OpClass::Conv) / ws.energy_per_mac(OpClass::Conv);
        assert!((ratio - 1.55).abs() < 1e-9);
    }

    #[test]
    fn ws_linear_energy_is_worse() {
        let os = DataflowProfile::shidiannao_like();
        let ws = DataflowProfile::nvdla_like();
        assert!(ws.energy_per_mac(OpClass::Linear) > os.energy_per_mac(OpClass::Linear));
    }

    #[test]
    fn scaling_efficiency_matches_table2_story() {
        let p = DataflowProfile::shidiannao_like();
        assert_eq!(p.scaling_efficiency(256), 1.0);
        assert_eq!(p.scaling_efficiency(64), 1.0);
        // 36x PEs -> ~7% total speedup.
        let speedup = 36.0 * p.scaling_efficiency(9216);
        assert!((1.0..1.15).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn builder_overrides() {
        let p = DataflowProfile::shidiannao_like()
            .with_stall(OpClass::Conv, 2.0)
            .with_energy_per_mac_pj(OpClass::Conv, 9.0);
        assert_eq!(p.stall(OpClass::Conv), 2.0);
        assert_eq!(
            p.energy_per_mac(OpClass::Conv),
            Joules::from_picojoules(9.0)
        );
    }

    #[test]
    #[should_panic(expected = "stall multipliers")]
    fn stall_below_one_rejected() {
        let _ = DataflowProfile::shidiannao_like().with_stall(OpClass::Conv, 0.5);
    }
}
