//! Mechanistic energy decomposition.
//!
//! The fitted profiles in [`crate::profile`] carry *effective* pJ/MAC
//! totals calibrated to the paper. This module explains those magnitudes
//! from first principles: it counts per-tier memory accesses from the
//! dataflow's reuse structure and prices them with published 28 nm-class
//! per-access energies. It is used by the energy ablation (and is the
//! place to start when re-targeting the simulator to other silicon).
//!
//! Scope: the access-count model is meaningful for *conv-class* layers
//! (where operand working sets fit typical chiplet buffers and the reuse
//! patterns below apply). Token-shaped ops are weight-streaming bound
//! under every dataflow here; their OS/WS energy ordering is carried by
//! the fitted profiles, not by this module.
//!
//! Reuse structure per dataflow (counts per layer):
//!
//! * **Output-stationary** — partial sums live in PE registers (one RF
//!   write per MAC, one buffer write per output element); weights are
//!   re-fetched from the global buffer once per output tile; inputs are
//!   shifted between neighbours (amortized to one buffer read per input
//!   element per tile row).
//! * **Weight-stationary** — weights are fetched once; partial sums make
//!   a buffer round-trip per reduction slice; inputs broadcast across the
//!   `K` columns.
//! * **Row-stationary** — filter rows and input rows are held in PE
//!   registers; intermediate between the two above on every operand.

use serde::{Deserialize, Serialize};

use npu_dnn::Layer;
use npu_tensor::Joules;

use crate::accelerator::{Accelerator, Dataflow};

/// Per-access energies of one silicon target.
///
/// Defaults follow widely used 28/32 nm estimates (Horowitz ISSCC'14
/// scaling): int8 MAC ≈ 0.56 pJ, register file ≈ 0.9 pJ, global buffer
/// (100s of KiB SRAM) ≈ 6 pJ, DRAM ≈ 100 pJ per 2-byte word.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessEnergies {
    /// One multiply-accumulate.
    pub mac_pj: f64,
    /// One PE register-file access.
    pub rf_pj: f64,
    /// One global-buffer (chiplet SRAM) access.
    pub buffer_pj: f64,
    /// One DRAM word access.
    pub dram_pj: f64,
}

impl Default for AccessEnergies {
    fn default() -> Self {
        AccessEnergies {
            mac_pj: 0.56,
            rf_pj: 0.9,
            buffer_pj: 6.0,
            dram_pj: 100.0,
        }
    }
}

/// The decomposed energy of one layer on one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Arithmetic energy.
    pub mac: Joules,
    /// Register-file traffic energy.
    pub rf: Joules,
    /// Global-buffer traffic energy.
    pub buffer: Joules,
    /// DRAM traffic energy (weights + input + output, streamed once).
    pub dram: Joules,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> Joules {
        self.mac + self.rf + self.buffer + self.dram
    }

    /// Effective pJ per MAC given a MAC count.
    pub fn per_mac_pj(&self, macs: f64) -> f64 {
        if macs == 0.0 {
            0.0
        } else {
            self.total().as_joules() / macs * 1e12
        }
    }
}

/// Counts per-tier accesses for a layer under the accelerator's dataflow
/// and prices them.
pub fn breakdown(layer: &Layer, acc: &Accelerator, costs: &AccessEnergies) -> EnergyBreakdown {
    let d = layer.dims();
    let macs = layer.macs().as_f64();
    let pes = acc.array().pes() as f64;
    let outputs = (d.y * d.x * d.k) as f64;
    let inputs = (d.y * d.x * d.c) as f64 / (d.stride * d.stride).max(1) as f64;
    let weights = (d.k * d.c * d.r * d.s) as f64;

    // Every MAC reads two operands from RF and updates an accumulator.
    let rf_accesses = 3.0 * macs;

    let output_tiles = (outputs / pes).ceil().max(1.0);
    let buffer_accesses = match acc.dataflow() {
        Dataflow::OutputStationary => {
            // Weights re-fetched per output tile; inputs read once per
            // tile row (neighbour shifting amortizes the rest); outputs
            // written once.
            weights * output_tiles + inputs + outputs
        }
        Dataflow::WeightStationary => {
            // Weights once; psums round-trip per reduction slice of C; the
            // input is broadcast (read once per element).
            let c_slices = (d.c as f64 / acc.array().cols() as f64).ceil().max(1.0);
            weights + 2.0 * outputs * c_slices + inputs
        }
        Dataflow::RowStationary => {
            // Row reuse keeps both weights and psums local longer.
            weights * output_tiles.sqrt() + outputs + inputs
        }
    };

    // Everything streams through DRAM once per frame (no cross-frame
    // caching of activations; weights resident after first load are still
    // charged once per frame for a conservative bound).
    let dram_accesses = weights + inputs + outputs;

    EnergyBreakdown {
        mac: Joules::from_picojoules(macs * costs.mac_pj),
        rf: Joules::from_picojoules(rf_accesses * costs.rf_pj),
        buffer: Joules::from_picojoules(buffer_accesses * costs.buffer_pj),
        dram: Joules::from_picojoules(dram_accesses * costs.dram_pj),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::OpKind;
    use npu_tensor::TensorShape;

    fn conv() -> Layer {
        Layer::new(
            "conv",
            OpKind::Conv2d {
                in_ch: 224,
                out_ch: 224,
                kernel: (3, 3),
                stride: 1,
            },
            TensorShape::nchw(1, 224, 90, 160),
        )
    }

    fn dense() -> Layer {
        Layer::intrinsic(
            "qkv",
            OpKind::Dense {
                tokens: 12_800,
                in_features: 256,
                out_features: 768,
            },
        )
    }

    #[test]
    fn ws_buffer_energy_beats_os_on_convs() {
        // The mechanism behind the paper's 1.55x WS conv-energy gain:
        // output-stationary re-fetches weights per output tile.
        let c = AccessEnergies::default();
        let os = breakdown(&conv(), &Accelerator::shidiannao_like(256), &c);
        let ws = breakdown(&conv(), &Accelerator::nvdla_like(256), &c);
        assert!(
            ws.buffer < os.buffer,
            "ws {} vs os {}",
            ws.buffer,
            os.buffer
        );
    }

    #[test]
    fn token_ops_are_streaming_bound_under_both_dataflows() {
        // For token-shaped ops the weight working set exceeds any on-PE
        // residency, so both dataflows are buffer-streaming bound and the
        // per-MAC energy is far above the conv-class one. The OS-vs-WS
        // *ordering* on token ops comes from the fitted profiles, not from
        // this access-count model (see module docs).
        let c = AccessEnergies::default();
        let macs = dense().macs().as_f64();
        let os = breakdown(&dense(), &Accelerator::shidiannao_like(256), &c);
        let os_conv = breakdown(&conv(), &Accelerator::shidiannao_like(256), &c);
        assert!(
            os.per_mac_pj(macs) > os_conv.per_mac_pj(conv().macs().as_f64()),
            "token ops must look worse per MAC"
        );
    }

    #[test]
    fn per_mac_magnitude_matches_fitted_profiles() {
        // The fitted conv coefficient is 4.0 pJ/MAC (OS); the mechanistic
        // count should land in the same decade.
        let c = AccessEnergies::default();
        let os = breakdown(&conv(), &Accelerator::shidiannao_like(256), &c);
        let per_mac = os.per_mac_pj(conv().macs().as_f64());
        assert!((1.0..12.0).contains(&per_mac), "{per_mac} pJ/MAC");
    }

    #[test]
    fn totals_add_up() {
        let c = AccessEnergies::default();
        let b = breakdown(&conv(), &Accelerator::shidiannao_like(256), &c);
        let sum = b.mac + b.rf + b.buffer + b.dram;
        assert_eq!(b.total(), sum);
        assert!(b.total().as_joules() > 0.0);
    }
}
