//! Array-geometry exploration: how much of a dataflow's behaviour is the
//! array *aspect ratio*?
//!
//! The paper's OS chiplets are square (16×16), which is exactly what
//! starves token-shaped operands down to one column. This module sweeps
//! rectangular geometries at a fixed PE budget and reports the best
//! mapping occupancy per layer — quantifying the "column starvation is an
//! aspect-ratio artifact" hypothesis (an extension study; the paper keeps
//! Simba's square arrays).

use serde::{Deserialize, Serialize};

use npu_dnn::Layer;
use npu_tensor::{float, Hertz};

use crate::accelerator::Dataflow;
use crate::mapping;
use crate::pe_array::PeArray;

/// One geometry's occupancy for a layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometryPoint {
    /// Array rows.
    pub rows: u64,
    /// Array columns.
    pub cols: u64,
    /// Average busy PEs under the dataflow's spatial mapping.
    pub active_pes: f64,
}

/// Enumerates all `rows × cols = pes` factorizations (rows ≤ cols and the
/// transposes), computing the mapping occupancy of `layer` on each.
pub fn geometry_sweep(
    layer: &Layer,
    df: Dataflow,
    pes: u64,
    frequency: Hertz,
) -> Vec<GeometryPoint> {
    let mut out = Vec::new();
    let mut push = |rows: u64, cols: u64| {
        let array = PeArray::new(rows, cols).with_frequency(frequency);
        out.push(GeometryPoint {
            rows,
            cols,
            active_pes: mapping::active_pes(df, layer.dims(), &array),
        });
    };
    let mut r = 1;
    while r * r <= pes {
        if pes.is_multiple_of(r) {
            push(r, pes / r);
            if r != pes / r {
                push(pes / r, r);
            }
        }
        r += 1;
    }
    out.sort_by(|a, b| {
        // Composite key: total-order on occupancy, rows break ties.
        float::total_cmp(b.active_pes, a.active_pes).then(a.rows.cmp(&b.rows))
    });
    out
}

/// The geometry maximizing mapping occupancy for a layer.
pub fn best_geometry(layer: &Layer, df: Dataflow, pes: u64, frequency: Hertz) -> GeometryPoint {
    geometry_sweep(layer, df, pes, frequency)
        .into_iter()
        .next()
        .expect("at least the 1 x pes geometry exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::OpKind;
    use npu_tensor::TensorShape;

    fn qkv() -> Layer {
        Layer::intrinsic(
            "qkv",
            OpKind::Dense {
                tokens: 12_800,
                in_features: 256,
                out_features: 768,
            },
        )
    }

    fn conv() -> Layer {
        Layer::new(
            "conv",
            OpKind::Conv2d {
                in_ch: 224,
                out_ch: 224,
                kernel: (3, 3),
                stride: 1,
            },
            TensorShape::nchw(1, 224, 90, 160),
        )
    }

    #[test]
    fn tall_arrays_fix_os_token_starvation() {
        // The square 16x16 array keeps 16 PEs busy on token ops; a 256x1
        // column array keeps all 256 busy — the starvation is an
        // aspect-ratio artifact of the 2-D output mapping.
        let best = best_geometry(&qkv(), Dataflow::OutputStationary, 256, Hertz::default());
        assert_eq!((best.rows, best.cols), (256, 1));
        assert!((best.active_pes - 256.0).abs() < 1e-9);

        let square = geometry_sweep(&qkv(), Dataflow::OutputStationary, 256, Hertz::default())
            .into_iter()
            .find(|g| g.rows == 16 && g.cols == 16)
            .unwrap();
        assert!((square.active_pes - 16.0).abs() < 1e-9);
    }

    #[test]
    fn square_is_near_optimal_for_spatial_convs() {
        let best = best_geometry(&conv(), Dataflow::OutputStationary, 256, Hertz::default());
        let square = geometry_sweep(&conv(), Dataflow::OutputStationary, 256, Hertz::default())
            .into_iter()
            .find(|g| g.rows == 16 && g.cols == 16)
            .unwrap();
        assert!(square.active_pes >= 0.9 * best.active_pes);
    }

    #[test]
    fn sweep_covers_all_factorizations() {
        let sweep = geometry_sweep(&conv(), Dataflow::WeightStationary, 256, Hertz::default());
        // 256 = 2^8 has 9 divisors -> 9 geometries incl. transposes.
        assert_eq!(sweep.len(), 9);
        for g in &sweep {
            assert_eq!(g.rows * g.cols, 256);
        }
    }
}
