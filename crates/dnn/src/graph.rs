//! Directed acyclic graphs of layers.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use npu_tensor::{float, Bytes, Dtype, MacCount};

use crate::layer::Layer;

/// Identifier of a layer within one [`Graph`].
///
/// Ids are dense indices assigned in insertion order, which the graph
/// guarantees to be a topological order (a layer's predecessors must exist
/// when it is added).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LayerId(u32);

impl LayerId {
    /// Index into the graph's layer vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Error building or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A predecessor id does not exist in the graph.
    MissingPredecessor {
        /// The offending id.
        pred: LayerId,
        /// Name of the layer being added.
        layer: String,
    },
    /// The graph has no layers.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingPredecessor { pred, layer } => {
                write!(f, "predecessor {pred} of layer `{layer}` does not exist")
            }
            GraphError::Empty => write!(f, "graph contains no layers"),
        }
    }
}

impl Error for GraphError {}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    layer: Layer,
    preds: Vec<LayerId>,
    succs: Vec<LayerId>,
}

/// A DAG of [`Layer`]s.
///
/// Layers are stored in insertion order, which is always a valid
/// topological order because predecessors must already exist when a layer
/// is added — cycles are unrepresentable by construction.
///
/// # Examples
///
/// ```
/// use npu_dnn::{Graph, Layer, OpKind};
///
/// let mut g = Graph::new("toy");
/// let a = g.add(
///     Layer::intrinsic("qkv", OpKind::Dense { tokens: 16, in_features: 8, out_features: 24 }),
///     &[],
/// )?;
/// let b = g.add(
///     Layer::intrinsic("attn", OpKind::AttentionScore { queries: 16, window: 4, dim: 8 }),
///     &[a],
/// )?;
/// assert_eq!(g.len(), 2);
/// assert_eq!(g.preds(b), &[a]);
/// # Ok::<(), npu_dnn::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a layer with the given predecessors.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingPredecessor`] if any predecessor id is
    /// not already in the graph.
    pub fn add(&mut self, layer: Layer, preds: &[LayerId]) -> Result<LayerId, GraphError> {
        for &p in preds {
            if p.index() >= self.nodes.len() {
                return Err(GraphError::MissingPredecessor {
                    pred: p,
                    layer: layer.name().to_string(),
                });
            }
        }
        let id = LayerId(self.nodes.len() as u32);
        for &p in preds {
            self.nodes[p.index()].succs.push(id);
        }
        self.nodes.push(Node {
            layer,
            preds: preds.to_vec(),
            succs: Vec::new(),
        });
        Ok(id)
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no layers.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The layer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids are only minted by this
    /// graph's [`Graph::add`]).
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.nodes[id.index()].layer
    }

    /// Looks a layer up by name (linear scan; graphs are small).
    pub fn find(&self, name: &str) -> Option<LayerId> {
        self.nodes
            .iter()
            .position(|n| n.layer.name() == name)
            .map(|i| LayerId(i as u32))
    }

    /// All ids in topological (insertion) order.
    pub fn ids(&self) -> impl Iterator<Item = LayerId> + '_ {
        (0..self.nodes.len() as u32).map(LayerId)
    }

    /// Iterates `(id, layer)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (LayerId, &Layer)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (LayerId(i as u32), &n.layer))
    }

    /// Predecessors of a layer.
    pub fn preds(&self, id: LayerId) -> &[LayerId] {
        &self.nodes[id.index()].preds
    }

    /// Successors of a layer.
    pub fn succs(&self, id: LayerId) -> &[LayerId] {
        &self.nodes[id.index()].succs
    }

    /// Layers with no predecessors (workload inputs).
    pub fn sources(&self) -> Vec<LayerId> {
        self.ids().filter(|&id| self.preds(id).is_empty()).collect()
    }

    /// Layers with no successors (workload outputs).
    pub fn sinks(&self) -> Vec<LayerId> {
        self.ids().filter(|&id| self.succs(id).is_empty()).collect()
    }

    /// Total MAC count over all layers.
    pub fn total_macs(&self) -> MacCount {
        self.nodes.iter().map(|n| n.layer.macs()).sum()
    }

    /// Total parameter bytes over all layers.
    pub fn total_weight_bytes(&self, dtype: Dtype) -> Bytes {
        self.nodes.iter().map(|n| n.layer.weight_bytes(dtype)).sum()
    }

    /// Longest path through the graph where each layer is weighted by
    /// `weight`. Returns the path (topological order) and its total weight.
    ///
    /// Used to compute end-to-end latency lower bounds: with per-layer
    /// latencies as weights, the critical path is the serial fraction of
    /// the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for an empty graph.
    pub fn critical_path_by<F>(&self, mut weight: F) -> Result<(Vec<LayerId>, f64), GraphError>
    where
        F: FnMut(LayerId, &Layer) -> f64,
    {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.nodes.len();
        let mut best = vec![0.0_f64; n];
        let mut from: Vec<Option<LayerId>> = vec![None; n];
        for (i, node) in self.nodes.iter().enumerate() {
            let id = LayerId(i as u32);
            let w = weight(id, &node.layer);
            let (pred_best, pred_id) = node.preds.iter().map(|&p| (best[p.index()], Some(p))).fold(
                (0.0_f64, None),
                |acc, cur| {
                    if cur.0 > acc.0 {
                        cur
                    } else {
                        acc
                    }
                },
            );
            best[i] = pred_best + w;
            from[i] = pred_id;
        }
        let (end, _) =
            float::total_max_by_key(best.iter().enumerate(), |&(_, &w)| w).expect("non-empty");
        let mut path = Vec::new();
        let mut cur = Some(LayerId(end as u32));
        while let Some(id) = cur {
            path.push(id);
            cur = from[id.index()];
        }
        path.reverse();
        Ok((path, best[end]))
    }

    /// Splits the graph into two sub-stages at the given layer: layers with
    /// id ≤ `at` form the first partition. Returns the two id sets.
    ///
    /// This models the paper's FE+BFPN pipeline split ("partitioned into
    /// two pipelining stages at the fourth convolutional ResNet-18 block",
    /// §V-B); because ids are topological the cut is always causal for
    /// chain-structured prefixes.
    pub fn split_at(&self, at: LayerId) -> (Vec<LayerId>, Vec<LayerId>) {
        let first = self.ids().filter(|id| *id <= at).collect();
        let second = self.ids().filter(|id| *id > at).collect();
        (first, second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use proptest::prelude::*;

    fn dense(name: &str, tokens: u64) -> Layer {
        Layer::intrinsic(
            name,
            OpKind::Dense {
                tokens,
                in_features: 8,
                out_features: 8,
            },
        )
    }

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new("chain");
        let mut prev: Vec<LayerId> = vec![];
        for i in 0..n {
            let id = g.add(dense(&format!("l{i}"), 16), &prev).unwrap();
            prev = vec![id];
        }
        g
    }

    #[test]
    fn add_rejects_missing_pred() {
        let mut g = Graph::new("g");
        let err = g.add(dense("a", 4), &[LayerId(3)]).unwrap_err();
        assert!(matches!(err, GraphError::MissingPredecessor { .. }));
        assert!(err.to_string().contains("L3"));
    }

    #[test]
    fn sources_and_sinks() {
        let mut g = Graph::new("g");
        let a = g.add(dense("a", 4), &[]).unwrap();
        let b = g.add(dense("b", 4), &[]).unwrap();
        let c = g.add(dense("c", 4), &[a, b]).unwrap();
        assert_eq!(g.sources(), vec![a, b]);
        assert_eq!(g.sinks(), vec![c]);
        assert_eq!(g.succs(a), &[c]);
        assert_eq!(g.preds(c), &[a, b]);
    }

    #[test]
    fn find_by_name() {
        let g = chain(4);
        assert_eq!(g.find("l2"), Some(LayerId(2)));
        assert_eq!(g.find("nope"), None);
    }

    #[test]
    fn critical_path_on_diamond_takes_heavier_arm() {
        let mut g = Graph::new("g");
        let a = g.add(dense("a", 1), &[]).unwrap();
        let heavy = g.add(dense("heavy", 100), &[a]).unwrap();
        let light = g.add(dense("light", 1), &[a]).unwrap();
        let d = g.add(dense("d", 1), &[heavy, light]).unwrap();
        let (path, w) = g.critical_path_by(|_, l| l.macs().as_f64()).unwrap();
        assert_eq!(path, vec![a, heavy, d]);
        assert!(w > 100.0 * 64.0);
    }

    #[test]
    fn critical_path_empty_graph_errors() {
        let g = Graph::new("empty");
        assert_eq!(
            g.critical_path_by(|_, _| 1.0).unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn split_at_partitions_all_ids() {
        let g = chain(6);
        let (a, b) = g.split_at(LayerId(2));
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn total_macs_sums_layers() {
        let g = chain(3);
        assert_eq!(g.total_macs().as_u64(), 3 * 16 * 8 * 8);
    }

    proptest! {
        /// Insertion order is topological: every edge goes forward.
        #[test]
        fn edges_always_point_forward(adds in proptest::collection::vec(0usize..8, 1..40)) {
            let mut g = Graph::new("p");
            let mut ids: Vec<LayerId> = Vec::new();
            for (i, pick) in adds.iter().enumerate() {
                // Choose up to 2 predecessors among existing nodes.
                let mut preds = Vec::new();
                if !ids.is_empty() {
                    preds.push(ids[pick % ids.len()]);
                    if ids.len() > 1 {
                        preds.push(ids[(pick / 2) % ids.len()]);
                    }
                }
                preds.dedup();
                let id = g.add(dense(&format!("n{i}"), 4), &preds).unwrap();
                ids.push(id);
            }
            for id in g.ids() {
                for &p in g.preds(id) {
                    prop_assert!(p < id);
                }
                for &s in g.succs(id) {
                    prop_assert!(s > id);
                }
            }
        }

        /// The critical path weight is at least the max single-layer weight
        /// and at most the total weight.
        #[test]
        fn critical_path_is_bounded(n in 1usize..30) {
            let g = chain(n);
            let (path, w) = g.critical_path_by(|_, l| l.macs().as_f64()).unwrap();
            let total: f64 = g.iter().map(|(_, l)| l.macs().as_f64()).sum();
            prop_assert!(w <= total + 1e-9);
            prop_assert_eq!(path.len(), n); // a chain's critical path is the chain
        }
    }
}
