//! DNN workload intermediate representation and the autonomous-driving
//! perception model zoo.
//!
//! This crate describes *what* has to be computed; the cost models in
//! `npu-maestro` describe *how fast* a given accelerator computes it.
//!
//! The central types are:
//!
//! * [`OpKind`] / [`Layer`] — a single tensor operator with MAC/byte
//!   accounting and MAESTRO-style mapping dimensions ([`OpDims`]).
//! * [`Graph`] — a DAG of layers with topological iteration, validation
//!   and critical-path queries.
//! * [`models`] — builders for every network in the Tesla Autopilot
//!   perception pipeline studied by the paper: ResNet-18-depth feature
//!   extractor, BiFPN, spatial/temporal attention fusion, occupancy
//!   (deconvolution) trunk, lane-prediction trunk and detection heads.
//! * [`pipeline`] — [`PerceptionConfig`]/[`PerceptionPipeline`]: the full
//!   four-stage, eight-camera workload of the paper's Fig. 2.
//!
//! # Examples
//!
//! ```
//! use npu_dnn::pipeline::PerceptionConfig;
//!
//! let pipe = PerceptionConfig::default().build();
//! assert_eq!(pipe.stages().len(), 4);
//! // Stage 1 runs eight concurrent FE+BFPN instances.
//! assert_eq!(pipe.stages()[0].replicas(), 8);
//! ```

pub mod builder;
pub mod dot;
pub mod graph;
pub mod layer;
pub mod models;
pub mod op;
pub mod pipeline;
pub mod stats;
pub mod validate;

pub use builder::GraphBuilder;
pub use graph::{Graph, GraphError, LayerId};
pub use layer::Layer;
pub use op::{OpClass, OpDims, OpKind};
pub use pipeline::{PerceptionConfig, PerceptionPipeline, Stage, StageKind};
pub use stats::WorkloadStats;
pub use validate::{validate, ValidationError};
