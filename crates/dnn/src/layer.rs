//! A single named layer: operator + output shape.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_tensor::{Bytes, Dtype, MacCount, TensorShape};

use crate::op::{OpClass, OpDims, OpKind};

/// A named DNN layer with a concrete output shape.
///
/// # Examples
///
/// ```
/// use npu_dnn::{Layer, OpKind};
/// use npu_tensor::TensorShape;
///
/// let l = Layer::new(
///     "s_fuse.ffn",
///     OpKind::Ffn { tokens: 16_000, d_model: 256, hidden: 1024 },
///     TensorShape::tokens(16_000, 256),
/// );
/// assert_eq!(l.macs().as_u64(), 2 * 16_000 * 256 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    op: OpKind,
    out: TensorShape,
}

impl Layer {
    /// Creates a layer from a name, operator and explicit output shape.
    pub fn new(name: impl Into<String>, op: OpKind, out: TensorShape) -> Self {
        Layer {
            name: name.into(),
            op,
            out,
        }
    }

    /// Creates a token-shaped layer whose output shape is implied by the
    /// operator (dense, FFN, attention).
    ///
    /// # Panics
    ///
    /// Panics if the operator is spatial and therefore has no intrinsic
    /// output shape.
    pub fn intrinsic(name: impl Into<String>, op: OpKind) -> Self {
        let out = op
            .intrinsic_out_shape()
            .expect("operator has no intrinsic output shape; use Layer::new");
        Layer::new(name, op, out)
    }

    /// Layer name (unique within a graph by convention, not enforcement).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator.
    pub fn op(&self) -> OpKind {
        self.op
    }

    /// Output shape.
    pub fn out(&self) -> TensorShape {
        self.out
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> MacCount {
        self.op.macs(self.out)
    }

    /// Operator class for cost profiles.
    pub fn class(&self) -> OpClass {
        self.op.class()
    }

    /// MAESTRO-style mapping dims.
    pub fn dims(&self) -> OpDims {
        self.op.dims(self.out)
    }

    /// Output size at the given datatype (what flows over the NoP to
    /// consumers).
    pub fn output_bytes(&self, dtype: Dtype) -> Bytes {
        self.out.bytes(dtype)
    }

    /// Parameter size at the given datatype.
    pub fn weight_bytes(&self, dtype: Dtype) -> Bytes {
        self.op.weight_bytes(dtype)
    }

    /// Returns a renamed copy (used when instantiating template graphs).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Layer {
            name: name.into(),
            op: self.op,
            out: self.out,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} -> {}]", self.name, self.op, self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_shape_for_dense() {
        let l = Layer::intrinsic(
            "qkv",
            OpKind::Dense {
                tokens: 100,
                in_features: 8,
                out_features: 24,
            },
        );
        assert_eq!(l.out(), TensorShape::tokens(100, 24));
        assert_eq!(l.name(), "qkv");
    }

    #[test]
    #[should_panic(expected = "no intrinsic output shape")]
    fn intrinsic_panics_for_spatial() {
        let _ = Layer::intrinsic("e", OpKind::Eltwise);
    }

    #[test]
    fn display_contains_name_and_shape() {
        let l = Layer::new(
            "fe.stem",
            OpKind::Conv2d {
                in_ch: 3,
                out_ch: 64,
                kernel: (7, 7),
                stride: 2,
            },
            TensorShape::nchw(1, 64, 180, 320),
        );
        let s = l.to_string();
        assert!(s.contains("fe.stem"));
        assert!(s.contains("1x64x180x320"));
    }

    #[test]
    fn renamed_preserves_op() {
        let l = Layer::intrinsic(
            "a",
            OpKind::Dense {
                tokens: 10,
                in_features: 4,
                out_features: 4,
            },
        );
        let r = l.renamed("b");
        assert_eq!(r.name(), "b");
        assert_eq!(r.op(), l.op());
    }
}
