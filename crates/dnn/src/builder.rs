//! Fluent graph construction.
//!
//! [`GraphBuilder`] tracks the "current" layer so chain-structured models
//! (the common case in this workload) read top-to-bottom, while branches
//! and joins remain explicit.
//!
//! # Examples
//!
//! ```
//! use npu_dnn::builder::GraphBuilder;
//! use npu_dnn::OpKind;
//! use npu_tensor::TensorShape;
//!
//! let mut b = GraphBuilder::new("toy");
//! b.chain_intrinsic(
//!     "embed",
//!     OpKind::Dense { tokens: 64, in_features: 16, out_features: 32 },
//! );
//! let trunk = b.chain(
//!     "conv",
//!     OpKind::Conv2d { in_ch: 32, out_ch: 32, kernel: (3, 3), stride: 1 },
//!     TensorShape::nchw(1, 32, 8, 8),
//! );
//! let skip = b.branch_from(
//!     trunk,
//!     "pool",
//!     OpKind::Pool { kernel: 2 },
//!     TensorShape::nchw(1, 32, 4, 4),
//! );
//! b.join("up", OpKind::Resample, TensorShape::nchw(1, 32, 8, 8), &[trunk, skip]);
//! let g = b.build();
//! assert_eq!(g.len(), 4);
//! ```

use npu_tensor::TensorShape;

use crate::graph::{Graph, LayerId};
use crate::layer::Layer;
use crate::op::OpKind;

/// Incrementally builds a [`Graph`], tracking the last-added layer.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    graph: Graph,
    current: Option<LayerId>,
}

impl GraphBuilder {
    /// Starts an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            graph: Graph::new(name),
            current: None,
        }
    }

    /// The last layer added, if any.
    pub fn current(&self) -> Option<LayerId> {
        self.current
    }

    /// Appends a layer after the current one (or as a source if none) and
    /// makes it current.
    pub fn chain(&mut self, name: impl Into<String>, op: OpKind, out: TensorShape) -> LayerId {
        let preds: Vec<LayerId> = self.current.into_iter().collect();
        let id = self
            .graph
            .add(Layer::new(name, op, out), &preds)
            .expect("current layer always exists in this graph");
        self.current = Some(id);
        id
    }

    /// [`GraphBuilder::chain`] for token-shaped ops whose output shape is
    /// implied by the operator.
    ///
    /// # Panics
    ///
    /// Panics if the op has no intrinsic output shape.
    pub fn chain_intrinsic(&mut self, name: impl Into<String>, op: OpKind) -> LayerId {
        let out = op
            .intrinsic_out_shape()
            .expect("op has no intrinsic output shape; use chain");
        self.chain(name, op, out)
    }

    /// Appends a layer branching from an explicit predecessor (leaves the
    /// current pointer untouched).
    pub fn branch_from(
        &mut self,
        from: LayerId,
        name: impl Into<String>,
        op: OpKind,
        out: TensorShape,
    ) -> LayerId {
        self.graph
            .add(Layer::new(name, op, out), &[from])
            .expect("predecessor was minted by this builder")
    }

    /// Appends a join layer over explicit predecessors and makes it
    /// current.
    pub fn join(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        out: TensorShape,
        preds: &[LayerId],
    ) -> LayerId {
        let id = self
            .graph
            .add(Layer::new(name, op, out), preds)
            .expect("predecessors were minted by this builder");
        self.current = Some(id);
        id
    }

    /// Finishes the build.
    pub fn build(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_links_sequentially() {
        let mut b = GraphBuilder::new("g");
        let a = b.chain_intrinsic(
            "a",
            OpKind::Dense {
                tokens: 4,
                in_features: 2,
                out_features: 2,
            },
        );
        let c = b.chain_intrinsic(
            "c",
            OpKind::Dense {
                tokens: 4,
                in_features: 2,
                out_features: 2,
            },
        );
        let g = b.build();
        assert_eq!(g.preds(c), &[a]);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![c]);
    }

    #[test]
    fn branch_preserves_current() {
        let mut b = GraphBuilder::new("g");
        let a = b.chain("a", OpKind::Eltwise, TensorShape::nchw(1, 2, 2, 2));
        b.branch_from(a, "side", OpKind::Eltwise, TensorShape::nchw(1, 2, 2, 2));
        assert_eq!(b.current(), Some(a));
        let tail = b.chain("tail", OpKind::Eltwise, TensorShape::nchw(1, 2, 2, 2));
        let g = b.build();
        assert_eq!(g.preds(tail), &[a]);
    }

    #[test]
    #[should_panic(expected = "no intrinsic output shape")]
    fn chain_intrinsic_rejects_spatial_ops() {
        let mut b = GraphBuilder::new("g");
        b.chain_intrinsic("bad", OpKind::Eltwise);
    }
}
