//! Workload statistics: MAC/parameter/activation histograms per op class.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_tensor::{Bytes, Dtype, MacCount};

use crate::graph::Graph;
use crate::op::OpClass;
use crate::pipeline::PerceptionPipeline;

/// Aggregate statistics of one graph or pipeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Layer count.
    pub layers: u64,
    /// Total MACs.
    pub macs: MacCount,
    /// Total parameters.
    pub weight_bytes: Bytes,
    /// Total activation output volume.
    pub activation_bytes: Bytes,
    /// Per-class `(layers, macs)`.
    pub by_class: Vec<(OpClass, u64, MacCount)>,
}

impl WorkloadStats {
    /// Statistics of one graph.
    pub fn of_graph(graph: &Graph, dtype: Dtype) -> Self {
        let mut stats = WorkloadStats {
            by_class: OpClass::ALL
                .iter()
                .map(|&c| (c, 0, MacCount::ZERO))
                .collect(),
            ..WorkloadStats::default()
        };
        for (_, layer) in graph.iter() {
            stats.layers += 1;
            stats.macs += layer.macs();
            stats.weight_bytes += layer.weight_bytes(dtype);
            stats.activation_bytes += layer.output_bytes(dtype);
            let entry = stats
                .by_class
                .iter_mut()
                .find(|(c, _, _)| *c == layer.class())
                .expect("all classes present");
            entry.1 += 1;
            entry.2 += layer.macs();
        }
        stats.by_class.retain(|(_, n, _)| *n > 0);
        stats
    }

    /// Statistics of a whole pipeline (model instances included).
    pub fn of_pipeline(pipeline: &PerceptionPipeline, dtype: Dtype) -> Self {
        let mut total = WorkloadStats {
            by_class: OpClass::ALL
                .iter()
                .map(|&c| (c, 0, MacCount::ZERO))
                .collect(),
            ..WorkloadStats::default()
        };
        for stage in pipeline.stages() {
            for sm in stage.models() {
                let g = WorkloadStats::of_graph(sm.graph(), dtype);
                let n = sm.instances();
                total.layers += g.layers * n;
                total.macs += g.macs * n;
                total.weight_bytes += g.weight_bytes * n;
                total.activation_bytes += g.activation_bytes * n;
                for (c, cn, cm) in &g.by_class {
                    let entry = total
                        .by_class
                        .iter_mut()
                        .find(|(tc, _, _)| tc == c)
                        .expect("all classes present");
                    entry.1 += cn * n;
                    entry.2 += *cm * n;
                }
            }
        }
        total.by_class.retain(|(_, n, _)| *n > 0);
        total
    }

    /// Share of MACs in the given class.
    pub fn class_share(&self, class: OpClass) -> f64 {
        if self.macs.as_u64() == 0 {
            return 0.0;
        }
        self.by_class
            .iter()
            .find(|(c, _, _)| *c == class)
            .map(|(_, _, m)| m.as_f64() / self.macs.as_f64())
            .unwrap_or(0.0)
    }
}

impl fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} layers, {}, weights {}, activations {}",
            self.layers, self.macs, self.weight_bytes, self.activation_bytes
        )?;
        for (c, n, m) in &self.by_class {
            writeln!(f, "  {c:9} {n:4} layers  {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PerceptionConfig;

    #[test]
    fn pipeline_stats_are_plausible() {
        let pipe = PerceptionConfig::default().build();
        let s = WorkloadStats::of_pipeline(&pipe, Dtype::Fp16);
        // 8 FE instances at ~60 layers each plus fusion/trunks.
        assert!(s.layers > 400, "{}", s.layers);
        // ~320 GMAC/frame: 8x35 FE + 12 S + 21 T + ~40 trunks.
        assert!((250.0..420.0).contains(&s.macs.as_gmacs()), "{}", s.macs);
        // Conv-class dominates total MACs (the 8 FE instances).
        assert!(s.class_share(OpClass::Conv) > 0.5);
        // Linear+attention carry the fusion stages.
        assert!(s.class_share(OpClass::Linear) > 0.08);
    }

    #[test]
    fn graph_stats_match_graph_totals() {
        let pipe = PerceptionConfig::default().build();
        let g = pipe.stages()[1].models()[0].graph();
        let s = WorkloadStats::of_graph(g, Dtype::Fp16);
        assert_eq!(s.macs, g.total_macs());
        assert_eq!(s.layers as usize, g.len());
        assert_eq!(s.weight_bytes, g.total_weight_bytes(Dtype::Fp16));
    }

    #[test]
    fn display_lists_classes() {
        let pipe = PerceptionConfig::default().build();
        let s = WorkloadStats::of_pipeline(&pipe, Dtype::Fp16);
        let text = s.to_string();
        assert!(text.contains("conv"));
        assert!(text.contains("linear"));
    }
}
