//! Graphviz DOT export for model graphs.
//!
//! Useful for inspecting zoo models and documenting schedules; the output
//! renders with `dot -Tsvg`.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::op::OpClass;

/// Renders the graph in Graphviz DOT syntax, layers colored by op class.
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  node [shape=box, style=filled, fontname=\"monospace\"];"
    );
    for (id, layer) in graph.iter() {
        let color = match layer.class() {
            OpClass::Conv => "#a6cee3",
            OpClass::Deconv => "#1f78b4",
            OpClass::Linear => "#b2df8a",
            OpClass::Attention => "#33a02c",
            OpClass::Memory => "#eeeeee",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}\\n{} -> {}\", fillcolor=\"{}\"];",
            id.index(),
            layer.name(),
            layer.op(),
            layer.macs(),
            layer.out(),
            color
        );
    }
    for (id, _) in graph.iter() {
        for &succ in graph.succs(id) {
            let _ = writeln!(out, "  n{} -> n{};", id.index(), succ.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::attention::{fusion_block, FusionConfig};

    #[test]
    fn dot_contains_every_layer_and_edge() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        for (_, l) in g.iter() {
            assert!(dot.contains(l.name()), "{} missing", l.name());
        }
        // A 5-layer chain has 4 edges.
        assert_eq!(dot.matches(" -> n").count(), 4);
    }

    #[test]
    fn dot_is_deterministic() {
        let g = fusion_block(&FusionConfig::temporal_default());
        assert_eq!(to_dot(&g), to_dot(&g));
    }
}
