//! Tensor operators with MAC and operand-size accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_tensor::{Bytes, Dtype, MacCount, TensorShape};

/// The kind of a DNN layer.
///
/// Each variant carries the parameters needed to count multiply-accumulate
/// operations and operand sizes, and to derive the MAESTRO-style mapping
/// dimensions used by the cost models.
///
/// # Examples
///
/// ```
/// use npu_dnn::OpKind;
///
/// // The S_FUSE QKV projection of the paper: 12,800 camera tokens,
/// // d=256 projected to Q,K,V (3x256).
/// let qkv = OpKind::Dense { tokens: 12_800, in_features: 256, out_features: 768 };
/// let out = qkv.intrinsic_out_shape().unwrap();
/// assert_eq!(qkv.macs(out).as_u64(), 12_800 * 256 * 768);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Standard 2-D convolution. `kernel` is `(r, s)`, `stride` applies to
    /// both spatial dims. MACs are counted over the *output* feature map.
    Conv2d {
        /// Input channels.
        in_ch: u64,
        /// Output channels.
        out_ch: u64,
        /// Kernel extents `(r, s)`.
        kernel: (u64, u64),
        /// Spatial stride.
        stride: u64,
    },
    /// Depthwise 2-D convolution (one filter per channel).
    DwConv2d {
        /// Channels (input == output).
        ch: u64,
        /// Kernel extents `(r, s)`.
        kernel: (u64, u64),
        /// Spatial stride.
        stride: u64,
    },
    /// Transposed convolution upsampling by `upscale` in each spatial dim.
    ///
    /// MACs are counted on the output map divided by `upscale^2`: each
    /// output pixel receives `r*s / upscale^2` valid taps on average.
    Deconv2d {
        /// Input channels.
        in_ch: u64,
        /// Output channels.
        out_ch: u64,
        /// Kernel extents `(r, s)`.
        kernel: (u64, u64),
        /// Spatial upsampling factor (≥ 1).
        upscale: u64,
    },
    /// Fully-connected layer applied independently to `tokens` tokens
    /// (a.k.a. a token-parallel GEMM: `tokens × in_features × out_features`).
    Dense {
        /// Number of tokens the layer is applied to.
        tokens: u64,
        /// Input feature dimension.
        in_features: u64,
        /// Output feature dimension.
        out_features: u64,
    },
    /// A transformer feed-forward block: two dense layers
    /// `d_model → hidden → d_model`, treated as one shardable unit as in
    /// the paper's scheduling analysis.
    Ffn {
        /// Number of tokens.
        tokens: u64,
        /// Model dimension.
        d_model: u64,
        /// Hidden dimension.
        hidden: u64,
    },
    /// Attention score computation `Q · K^T` with a bounded per-query key
    /// window (the paper's fusion attention is local/deformable: each grid
    /// cell attends to a small set of candidate features).
    AttentionScore {
        /// Number of query tokens.
        queries: u64,
        /// Keys attended per query.
        window: u64,
        /// Head-summed feature dimension.
        dim: u64,
    },
    /// Attention context aggregation `softmax(S) · V` with the same
    /// windowing as [`OpKind::AttentionScore`].
    AttentionContext {
        /// Number of query tokens.
        queries: u64,
        /// Keys attended per query.
        window: u64,
        /// Head-summed feature dimension.
        dim: u64,
    },
    /// Elementwise arithmetic (residual add, scale…). Negligible MACs.
    Eltwise,
    /// Tensor concatenation; pure data movement.
    Concat,
    /// Spatial pooling with the given kernel.
    Pool {
        /// Pooling kernel extent (square).
        kernel: u64,
    },
    /// Nearest/bilinear spatial resampling; negligible compute.
    Resample,
}

impl OpKind {
    /// Number of multiply-accumulate operations, given the layer's output
    /// shape.
    pub fn macs(&self, out: TensorShape) -> MacCount {
        let m = match *self {
            OpKind::Conv2d {
                in_ch,
                out_ch,
                kernel: (r, s),
                ..
            } => out.n() * out.spatial() * out_ch * in_ch * r * s,
            OpKind::DwConv2d {
                ch, kernel: (r, s), ..
            } => out.n() * out.spatial() * ch * r * s,
            OpKind::Deconv2d {
                in_ch,
                out_ch,
                kernel: (r, s),
                upscale,
            } => out.n() * out.spatial() * out_ch * in_ch * r * s / (upscale * upscale),
            OpKind::Dense {
                tokens,
                in_features,
                out_features,
            } => tokens * in_features * out_features,
            OpKind::Ffn {
                tokens,
                d_model,
                hidden,
            } => 2 * tokens * d_model * hidden,
            OpKind::AttentionScore {
                queries,
                window,
                dim,
            }
            | OpKind::AttentionContext {
                queries,
                window,
                dim,
            } => queries * window * dim,
            // Memory-class ops: count one "op" per output element so they
            // are not free, but they never dominate.
            OpKind::Eltwise | OpKind::Concat | OpKind::Resample => out.elements(),
            OpKind::Pool { kernel } => out.elements() * kernel * kernel,
        };
        MacCount::new(m)
    }

    /// Convenience wrapper: MACs for an [`OpKind`] whose output shape can
    /// be derived from its own parameters (token-shaped ops).
    ///
    /// Returns `None` for spatial ops which need an explicit output shape.
    pub fn intrinsic_out_shape(&self) -> Option<TensorShape> {
        match *self {
            OpKind::Dense {
                tokens,
                out_features,
                ..
            } => Some(TensorShape::tokens(tokens, out_features)),
            OpKind::Ffn {
                tokens, d_model, ..
            } => Some(TensorShape::tokens(tokens, d_model)),
            OpKind::AttentionScore {
                queries, window, ..
            } => Some(TensorShape::tokens(queries, window)),
            OpKind::AttentionContext { queries, dim, .. } => {
                Some(TensorShape::tokens(queries, dim))
            }
            _ => None,
        }
    }

    /// Size of the layer's trained parameters.
    pub fn weight_bytes(&self, dtype: Dtype) -> Bytes {
        let elems = match *self {
            OpKind::Conv2d {
                in_ch,
                out_ch,
                kernel: (r, s),
                ..
            } => in_ch * out_ch * r * s,
            OpKind::DwConv2d {
                ch, kernel: (r, s), ..
            } => ch * r * s,
            OpKind::Deconv2d {
                in_ch,
                out_ch,
                kernel: (r, s),
                ..
            } => in_ch * out_ch * r * s,
            OpKind::Dense {
                in_features,
                out_features,
                ..
            } => in_features * out_features,
            OpKind::Ffn {
                d_model, hidden, ..
            } => 2 * d_model * hidden,
            _ => 0,
        };
        dtype.sized(elems)
    }

    /// Coarse operator class used by the per-dataflow cost profiles.
    pub fn class(&self) -> OpClass {
        match self {
            OpKind::Conv2d { .. } | OpKind::DwConv2d { .. } => OpClass::Conv,
            OpKind::Deconv2d { .. } => OpClass::Deconv,
            OpKind::Dense { .. } | OpKind::Ffn { .. } => OpClass::Linear,
            OpKind::AttentionScore { .. } | OpKind::AttentionContext { .. } => OpClass::Attention,
            OpKind::Eltwise | OpKind::Concat | OpKind::Pool { .. } | OpKind::Resample => {
                OpClass::Memory
            }
        }
    }

    /// MAESTRO-style 7-D mapping dimensions for the layer, given its
    /// output shape.
    ///
    /// Convolution-class ops expose their 2-D output map as `(y, x)`;
    /// token-shaped ops (dense / FFN / attention) expose `(tokens, 1)` —
    /// the `x = 1` extent is what starves 2-D output-stationary mappings,
    /// reproducing the behaviour measured by the paper.
    pub fn dims(&self, out: TensorShape) -> OpDims {
        match *self {
            OpKind::Conv2d {
                in_ch,
                out_ch,
                kernel: (r, s),
                stride,
            } => OpDims {
                y: out.h(),
                x: out.w(),
                k: out_ch,
                c: in_ch,
                r,
                s,
                stride,
            },
            OpKind::DwConv2d {
                ch,
                kernel: (r, s),
                stride,
            } => OpDims {
                y: out.h(),
                x: out.w(),
                k: ch,
                c: 1,
                r,
                s,
                stride,
            },
            OpKind::Deconv2d {
                in_ch,
                out_ch,
                kernel: (r, s),
                ..
            } => OpDims {
                y: out.h(),
                x: out.w(),
                k: out_ch,
                c: in_ch,
                r,
                s,
                stride: 1,
            },
            OpKind::Dense {
                tokens,
                in_features,
                out_features,
            } => OpDims {
                y: tokens,
                x: 1,
                k: out_features,
                c: in_features,
                r: 1,
                s: 1,
                stride: 1,
            },
            OpKind::Ffn {
                tokens,
                d_model,
                hidden,
            } => OpDims {
                y: tokens,
                x: 1,
                k: hidden,
                c: d_model,
                r: 1,
                s: 1,
                stride: 1,
            },
            OpKind::AttentionScore {
                queries,
                window,
                dim,
            }
            | OpKind::AttentionContext {
                queries,
                window,
                dim,
            } => OpDims {
                y: queries,
                x: 1,
                k: window,
                c: dim,
                r: 1,
                s: 1,
                stride: 1,
            },
            OpKind::Eltwise | OpKind::Concat | OpKind::Pool { .. } | OpKind::Resample => OpDims {
                y: out.h(),
                x: out.w(),
                k: out.c(),
                c: 1,
                r: 1,
                s: 1,
                stride: 1,
            },
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OpKind::Conv2d {
                in_ch,
                out_ch,
                kernel: (r, s),
                stride,
            } => write!(f, "conv{r}x{s}/{stride} {in_ch}->{out_ch}"),
            OpKind::DwConv2d {
                ch,
                kernel: (r, s),
                stride,
            } => write!(f, "dwconv{r}x{s}/{stride} ch{ch}"),
            OpKind::Deconv2d {
                in_ch,
                out_ch,
                kernel: (r, s),
                upscale,
            } => write!(f, "deconv{r}x{s}^{upscale} {in_ch}->{out_ch}"),
            OpKind::Dense {
                tokens,
                in_features,
                out_features,
            } => write!(f, "dense {tokens}t {in_features}->{out_features}"),
            OpKind::Ffn {
                tokens,
                d_model,
                hidden,
            } => write!(f, "ffn {tokens}t {d_model}<->{hidden}"),
            OpKind::AttentionScore {
                queries, window, ..
            } => write!(f, "attn-score {queries}q w{window}"),
            OpKind::AttentionContext {
                queries, window, ..
            } => write!(f, "attn-ctx {queries}q w{window}"),
            OpKind::Eltwise => write!(f, "eltwise"),
            OpKind::Concat => write!(f, "concat"),
            OpKind::Pool { kernel } => write!(f, "pool{kernel}x{kernel}"),
            OpKind::Resample => write!(f, "resample"),
        }
    }
}

/// Coarse operator class used to select cost-profile coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Standard / depthwise convolutions.
    Conv,
    /// Transposed convolutions (occupancy trunk upsampling).
    Deconv,
    /// Dense / FFN token-parallel GEMMs.
    Linear,
    /// Attention score/context matmuls.
    Attention,
    /// Data-movement ops (eltwise, concat, pool, resample).
    Memory,
}

impl OpClass {
    /// All classes, in a stable order (useful for reports).
    pub const ALL: [OpClass; 5] = [
        OpClass::Conv,
        OpClass::Deconv,
        OpClass::Linear,
        OpClass::Attention,
        OpClass::Memory,
    ];
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Conv => "conv",
            OpClass::Deconv => "deconv",
            OpClass::Linear => "linear",
            OpClass::Attention => "attention",
            OpClass::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// MAESTRO-style 7-D loop-nest extents of an operator.
///
/// `y, x` are output spatial extents (or `(tokens, 1)` for token-shaped
/// ops), `k` output channels, `c` input channels, `r, s` kernel extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpDims {
    /// Output height / token count.
    pub y: u64,
    /// Output width (1 for token-shaped ops).
    pub x: u64,
    /// Output channels (or per-token output extent).
    pub k: u64,
    /// Input channels / reduction extent.
    pub c: u64,
    /// Kernel height.
    pub r: u64,
    /// Kernel width.
    pub s: u64,
    /// Spatial stride.
    pub stride: u64,
}

impl OpDims {
    /// True if the op is token-shaped (`x == 1` with many `y`): the shape
    /// that collapses 2-D output-stationary spatial mappings.
    pub fn is_token_shaped(&self) -> bool {
        self.x == 1 && self.y > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(h: u64, w: u64, c: u64) -> TensorShape {
        TensorShape::nchw(1, c, h, w)
    }

    #[test]
    fn conv_macs_match_hand_count() {
        let op = OpKind::Conv2d {
            in_ch: 256,
            out_ch: 256,
            kernel: (3, 3),
            stride: 1,
        };
        let o = out(90, 160, 256);
        assert_eq!(op.macs(o).as_u64(), 90 * 160 * 256 * 256 * 9);
    }

    #[test]
    fn dw_conv_macs() {
        let op = OpKind::DwConv2d {
            ch: 256,
            kernel: (3, 3),
            stride: 1,
        };
        assert_eq!(op.macs(out(45, 80, 256)).as_u64(), 45 * 80 * 256 * 9);
    }

    #[test]
    fn deconv_macs_divide_by_upscale_squared() {
        let op = OpKind::Deconv2d {
            in_ch: 128,
            out_ch: 128,
            kernel: (4, 4),
            upscale: 2,
        };
        // 40x160 output after 2x upscale of a 20x80 input.
        assert_eq!(
            op.macs(out(40, 160, 128)).as_u64(),
            40 * 160 * 128 * 128 * 16 / 4
        );
    }

    #[test]
    fn dense_macs_are_paper_s_fuse_qkv() {
        let op = OpKind::Dense {
            tokens: 12_800,
            in_features: 256,
            out_features: 768,
        };
        let macs = op.macs(op.intrinsic_out_shape().unwrap());
        // 2.516 GMAC -> 78.6 ms at the calibrated 32 GMAC/s linear rate.
        assert!((macs.as_gmacs() - 2.516).abs() < 1e-2);
    }

    #[test]
    fn ffn_counts_both_linears() {
        let op = OpKind::Ffn {
            tokens: 16_000,
            d_model: 256,
            hidden: 1024,
        };
        let macs = op.macs(op.intrinsic_out_shape().unwrap());
        assert_eq!(macs.as_u64(), 2 * 16_000 * 256 * 1024);
    }

    #[test]
    fn attention_window_bounds_cost() {
        let score = OpKind::AttentionScore {
            queries: 16_000,
            window: 80,
            dim: 256,
        };
        let ctx = OpKind::AttentionContext {
            queries: 16_000,
            window: 80,
            dim: 256,
        };
        let total = score.macs(score.intrinsic_out_shape().unwrap()).as_u64()
            + ctx.macs(ctx.intrinsic_out_shape().unwrap()).as_u64();
        assert_eq!(total, 2 * 16_000 * 80 * 256);
    }

    #[test]
    fn classes() {
        assert_eq!(
            OpKind::Conv2d {
                in_ch: 1,
                out_ch: 1,
                kernel: (1, 1),
                stride: 1
            }
            .class(),
            OpClass::Conv
        );
        assert_eq!(
            OpKind::Deconv2d {
                in_ch: 1,
                out_ch: 1,
                kernel: (4, 4),
                upscale: 2
            }
            .class(),
            OpClass::Deconv
        );
        assert_eq!(
            OpKind::Dense {
                tokens: 1,
                in_features: 1,
                out_features: 1
            }
            .class(),
            OpClass::Linear
        );
        assert_eq!(OpKind::Eltwise.class(), OpClass::Memory);
    }

    #[test]
    fn dense_dims_are_token_shaped() {
        let op = OpKind::Dense {
            tokens: 12_800,
            in_features: 256,
            out_features: 768,
        };
        let d = op.dims(op.intrinsic_out_shape().unwrap());
        assert!(d.is_token_shaped());
        assert_eq!(d.y, 12_800);
        assert_eq!(d.k, 768);
    }

    #[test]
    fn conv_dims_are_spatial() {
        let op = OpKind::Conv2d {
            in_ch: 64,
            out_ch: 128,
            kernel: (3, 3),
            stride: 2,
        };
        let d = op.dims(out(45, 80, 128));
        assert!(!d.is_token_shaped());
        assert_eq!((d.y, d.x, d.k, d.c, d.r, d.s), (45, 80, 128, 64, 3, 3));
    }

    #[test]
    fn weight_bytes() {
        let dense = OpKind::Dense {
            tokens: 100,
            in_features: 256,
            out_features: 768,
        };
        assert_eq!(dense.weight_bytes(Dtype::Fp16).as_u64(), 256 * 768 * 2);
        assert_eq!(OpKind::Eltwise.weight_bytes(Dtype::Fp16).as_u64(), 0);
    }

    #[test]
    fn display_is_compact() {
        let op = OpKind::Conv2d {
            in_ch: 256,
            out_ch: 512,
            kernel: (3, 3),
            stride: 2,
        };
        assert_eq!(op.to_string(), "conv3x3/2 256->512");
    }
}
