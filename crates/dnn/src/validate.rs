//! Graph validation: shape-compatibility checking between layers.
//!
//! The model-zoo builders construct shapes by hand; this pass catches
//! wiring mistakes (channel mismatches, spatial mismatches at eltwise
//! joins, token-count mismatches through attention chains) before a graph
//! reaches the cost models.

use std::error::Error;
use std::fmt;

use crate::graph::{Graph, LayerId};
use crate::op::OpKind;

/// A shape-compatibility violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// The offending layer.
    pub layer: LayerId,
    /// Layer name.
    pub name: String,
    /// Human-readable problem description.
    pub problem: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.layer, self.name, self.problem)
    }
}

impl Error for ValidationError {}

/// Validates every edge of the graph; returns all violations found.
///
/// Checks performed:
/// * convolution-family layers: predecessor channel count must equal the
///   declared `in_ch`;
/// * eltwise joins: all predecessors share the output shape;
/// * dense/FFN layers: some predecessor supplies at least the declared
///   input features (projection heads may consume a slice);
/// * every non-source layer has a predecessor with a non-empty output.
pub fn validate(graph: &Graph) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let mut report = |id: LayerId, name: &str, problem: String| {
        errors.push(ValidationError {
            layer: id,
            name: name.to_string(),
            problem,
        });
    };

    for (id, layer) in graph.iter() {
        let preds = graph.preds(id);
        if preds.is_empty() {
            continue; // sources are fed externally
        }
        match layer.op() {
            OpKind::Conv2d { in_ch, .. } | OpKind::Deconv2d { in_ch, .. } => {
                let ok = preds.iter().any(|&p| graph.layer(p).out().c() == in_ch);
                if !ok {
                    let got: Vec<u64> = preds.iter().map(|&p| graph.layer(p).out().c()).collect();
                    report(
                        id,
                        layer.name(),
                        format!("expects {in_ch} input channels, predecessors give {got:?}"),
                    );
                }
            }
            OpKind::DwConv2d { ch, .. } => {
                let ok = preds.iter().any(|&p| graph.layer(p).out().c() == ch);
                if !ok {
                    report(id, layer.name(), format!("depthwise expects {ch} channels"));
                }
            }
            OpKind::Eltwise => {
                let out = layer.out();
                for &p in preds {
                    if graph.layer(p).out() != out {
                        report(
                            id,
                            layer.name(),
                            format!(
                                "eltwise shape mismatch: {} vs {}",
                                graph.layer(p).out(),
                                out
                            ),
                        );
                    }
                }
            }
            OpKind::Dense { in_features, .. }
            | OpKind::Ffn {
                d_model: in_features,
                ..
            } => {
                let ok = preds
                    .iter()
                    .any(|&p| graph.layer(p).out().c() >= in_features);
                if !ok {
                    report(
                        id,
                        layer.name(),
                        format!("no predecessor supplies {in_features} features"),
                    );
                }
            }
            _ => {}
        }
    }
    errors
}

/// Validates and panics with a readable report on the first failure —
/// for use in builders and tests.
///
/// # Panics
///
/// Panics if the graph has any validation error.
pub fn assert_valid(graph: &Graph) {
    let errors = validate(graph);
    assert!(
        errors.is_empty(),
        "graph `{}` has {} validation error(s):\n{}",
        graph.name(),
        errors.len(),
        errors
            .iter()
            .map(ValidationError::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::models::attention::{fusion_block, FusionConfig};
    use crate::models::detection::{detection_head, DetectionConfig};
    use crate::models::lane::{lane_trunk, LaneConfig};
    use crate::models::occupancy::{occupancy_trunk, OccupancyConfig};
    use crate::models::{fe_bfpn, BifpnConfig, FeConfig};
    use crate::pipeline::PerceptionConfig;
    use npu_tensor::TensorShape;

    #[test]
    fn every_zoo_model_validates() {
        assert_valid(&fe_bfpn(&FeConfig::default(), &BifpnConfig::default()));
        assert_valid(&fusion_block(&FusionConfig::spatial_default()));
        assert_valid(&fusion_block(&FusionConfig::temporal_default()));
        assert_valid(&occupancy_trunk(&OccupancyConfig::default()));
        assert_valid(&lane_trunk(&LaneConfig::default()));
        assert_valid(&detection_head("det", &DetectionConfig::default()));
    }

    #[test]
    fn full_pipeline_validates() {
        let pipe = PerceptionConfig::default().build();
        for stage in pipe.stages() {
            for sm in stage.models() {
                assert_valid(sm.graph());
            }
        }
    }

    #[test]
    fn channel_mismatch_is_caught() {
        let mut g = Graph::new("bad");
        let a = g
            .add(
                Layer::new(
                    "a",
                    OpKind::Conv2d {
                        in_ch: 3,
                        out_ch: 64,
                        kernel: (3, 3),
                        stride: 1,
                    },
                    TensorShape::nchw(1, 64, 8, 8),
                ),
                &[],
            )
            .unwrap();
        g.add(
            Layer::new(
                "b",
                OpKind::Conv2d {
                    in_ch: 128, // wrong: a gives 64
                    out_ch: 64,
                    kernel: (3, 3),
                    stride: 1,
                },
                TensorShape::nchw(1, 64, 8, 8),
            ),
            &[a],
        )
        .unwrap();
        let errs = validate(&g);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].to_string().contains("128 input channels"));
    }

    #[test]
    fn eltwise_mismatch_is_caught() {
        let mut g = Graph::new("bad");
        let a = g
            .add(
                Layer::new("a", OpKind::Resample, TensorShape::nchw(1, 8, 4, 4)),
                &[],
            )
            .unwrap();
        let b = g
            .add(
                Layer::new("b", OpKind::Resample, TensorShape::nchw(1, 8, 2, 2)),
                &[],
            )
            .unwrap();
        g.add(
            Layer::new("sum", OpKind::Eltwise, TensorShape::nchw(1, 8, 4, 4)),
            &[a, b],
        )
        .unwrap();
        assert_eq!(validate(&g).len(), 1);
    }

    #[test]
    #[should_panic(expected = "validation error")]
    fn assert_valid_panics_on_bad_graph() {
        let mut g = Graph::new("bad");
        let a = g
            .add(
                Layer::new("a", OpKind::Resample, TensorShape::nchw(1, 8, 4, 4)),
                &[],
            )
            .unwrap();
        g.add(
            Layer::intrinsic(
                "d",
                OpKind::Dense {
                    tokens: 16,
                    in_features: 999,
                    out_features: 8,
                },
            ),
            &[a],
        )
        .unwrap();
        assert_valid(&g);
    }
}
