//! The four-stage Tesla-Autopilot-style perception pipeline (paper Fig. 2).
//!
//! Stage 1 — FE+BFPN, eight concurrent per-camera instances.
//! Stage 2 — multi-camera spatial fusion (S_FUSE).
//! Stage 3 — temporal fusion over a 12-entry feature queue (T_FUSE).
//! Stage 4 — trunks and heads: occupancy, lane prediction, 3 detectors.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_tensor::{Bytes, Dtype, MacCount};

use crate::graph::Graph;
use crate::models::{
    attention::{fusion_block, FusionConfig},
    bifpn::BifpnConfig,
    detection::{detection_head, DetectionConfig},
    fe_bfpn,
    lane::{lane_trunk, LaneConfig},
    occupancy::{occupancy_trunk, OccupancyConfig},
    resnet::FeConfig,
};

/// Which perception stage a [`Stage`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Stage 1: per-camera feature extraction + BiFPN.
    FeatureExtraction,
    /// Stage 2: multi-camera spatial fusion.
    SpatialFusion,
    /// Stage 3: temporal fusion.
    TemporalFusion,
    /// Stage 4: trunks and heads.
    Trunks,
}

impl StageKind {
    /// All stages in pipeline order.
    pub const ALL: [StageKind; 4] = [
        StageKind::FeatureExtraction,
        StageKind::SpatialFusion,
        StageKind::TemporalFusion,
        StageKind::Trunks,
    ];

    /// Stage index in pipeline order (0-based).
    pub fn index(self) -> usize {
        match self {
            StageKind::FeatureExtraction => 0,
            StageKind::SpatialFusion => 1,
            StageKind::TemporalFusion => 2,
            StageKind::Trunks => 3,
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StageKind::FeatureExtraction => "FE+BFPN",
            StageKind::SpatialFusion => "S_FUSE",
            StageKind::TemporalFusion => "T_FUSE",
            StageKind::Trunks => "TRUNKS",
        };
        f.write_str(s)
    }
}

/// A model within a stage, possibly instantiated multiple times
/// (8 FE+BFPN instances, 3 detector heads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageModel {
    graph: Graph,
    instances: u64,
}

impl StageModel {
    /// Creates a stage model with the given instance count.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero.
    pub fn new(graph: Graph, instances: u64) -> Self {
        assert!(instances >= 1, "a stage model needs at least one instance");
        StageModel { graph, instances }
    }

    /// The model graph (shared by all instances).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of concurrent instances.
    pub fn instances(&self) -> u64 {
        self.instances
    }

    /// MACs over all instances.
    pub fn total_macs(&self) -> MacCount {
        self.graph.total_macs() * self.instances
    }
}

/// One perception stage: a set of concurrent models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    kind: StageKind,
    models: Vec<StageModel>,
    /// Bytes this stage emits downstream per processed frame.
    output_bytes: Bytes,
}

impl Stage {
    /// Creates a stage.
    pub fn new(kind: StageKind, models: Vec<StageModel>, output_bytes: Bytes) -> Self {
        Stage {
            kind,
            models,
            output_bytes,
        }
    }

    /// The stage kind.
    pub fn kind(&self) -> StageKind {
        self.kind
    }

    /// The stage's models.
    pub fn models(&self) -> &[StageModel] {
        &self.models
    }

    /// Total concurrent model instances in the stage.
    pub fn replicas(&self) -> u64 {
        self.models.iter().map(|m| m.instances).sum()
    }

    /// Total layer count across model instances.
    pub fn total_layers(&self) -> u64 {
        self.models
            .iter()
            .map(|m| m.graph.len() as u64 * m.instances)
            .sum()
    }

    /// MACs across all instances.
    pub fn total_macs(&self) -> MacCount {
        self.models.iter().map(StageModel::total_macs).sum()
    }

    /// Bytes emitted downstream per frame.
    pub fn output_bytes(&self) -> Bytes {
        self.output_bytes
    }
}

/// Full pipeline configuration with paper-calibrated defaults.
///
/// # Examples
///
/// ```
/// use npu_dnn::PerceptionConfig;
///
/// let cfg = PerceptionConfig::default();
/// assert_eq!(cfg.cameras, 8);
/// assert_eq!(cfg.queue_len, 12);
/// let pipe = cfg.build();
/// assert!(pipe.total_macs().as_gmacs() > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerceptionConfig {
    /// Installed cameras (paper: 8).
    pub cameras: u64,
    /// Feature-extractor config.
    pub fe: FeConfig,
    /// BiFPN neck config.
    pub bifpn: BifpnConfig,
    /// Spatial fusion config.
    pub s_fuse: FusionConfig,
    /// Temporal fusion config.
    pub t_fuse: FusionConfig,
    /// Temporal queue length (paper: 12 previous representations).
    pub queue_len: u64,
    /// Occupancy trunk config.
    pub occupancy: OccupancyConfig,
    /// Lane trunk config.
    pub lane: LaneConfig,
    /// Detector head config.
    pub detection: DetectionConfig,
    /// Number of detector heads (traffic / vehicle / pedestrian).
    pub detectors: u64,
    /// Datatype of feature maps moved between stages.
    pub dtype: Dtype,
}

impl Default for PerceptionConfig {
    fn default() -> Self {
        PerceptionConfig {
            cameras: 8,
            fe: FeConfig::default(),
            bifpn: BifpnConfig::default(),
            s_fuse: FusionConfig::spatial_default(),
            t_fuse: FusionConfig::temporal_default(),
            queue_len: 12,
            occupancy: OccupancyConfig::default(),
            lane: LaneConfig::default(),
            detection: DetectionConfig::default(),
            detectors: 3,
            dtype: Dtype::Fp16,
        }
    }
}

impl PerceptionConfig {
    /// Builds the full four-stage pipeline.
    pub fn build(&self) -> PerceptionPipeline {
        let dtype = self.dtype;

        let fe_graph = fe_bfpn(&self.fe, &self.bifpn);
        let fe_out = fe_graph
            .layer(*fe_graph.sinks().last().expect("non-empty"))
            .out();
        let fe_stage = Stage::new(
            StageKind::FeatureExtraction,
            vec![StageModel::new(fe_graph, self.cameras)],
            fe_out.bytes(dtype) * self.cameras,
        );

        let s_graph = fusion_block(&self.s_fuse);
        let s_out = s_graph
            .layer(*s_graph.sinks().last().expect("non-empty"))
            .out();
        let s_stage = Stage::new(
            StageKind::SpatialFusion,
            vec![StageModel::new(s_graph, 1)],
            s_out.bytes(dtype),
        );

        let t_graph = fusion_block(&self.t_fuse);
        let t_out = t_graph
            .layer(*t_graph.sinks().last().expect("non-empty"))
            .out();
        let t_stage = Stage::new(
            StageKind::TemporalFusion,
            vec![StageModel::new(t_graph, 1)],
            t_out.bytes(dtype),
        );

        let occ = occupancy_trunk(&self.occupancy);
        let lane = lane_trunk(&self.lane);
        let det = detection_head("det", &self.detection);
        let trunk_out: Bytes = occ
            .sinks()
            .iter()
            .map(|&s| occ.layer(s).out().bytes(dtype))
            .sum();
        let trunk_stage = Stage::new(
            StageKind::Trunks,
            vec![
                StageModel::new(occ, 1),
                StageModel::new(lane, 1),
                StageModel::new(det, self.detectors),
            ],
            trunk_out,
        );

        PerceptionPipeline {
            config: self.clone(),
            stages: vec![fe_stage, s_stage, t_stage, trunk_stage],
        }
    }
}

/// The built four-stage perception workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerceptionPipeline {
    config: PerceptionConfig,
    stages: Vec<Stage>,
}

impl PerceptionPipeline {
    /// The configuration used to build the pipeline.
    pub fn config(&self) -> &PerceptionConfig {
        &self.config
    }

    /// The four stages in pipeline order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The stage of the given kind.
    pub fn stage(&self, kind: StageKind) -> &Stage {
        &self.stages[kind.index()]
    }

    /// MACs per processed frame across the whole pipeline.
    pub fn total_macs(&self) -> MacCount {
        self.stages.iter().map(Stage::total_macs).sum()
    }

    /// Returns a pipeline restricted to the first three stages (the
    /// "bottleneck stages" on which the paper's Table II compares
    /// baselines).
    pub fn bottleneck_stages(&self) -> PerceptionPipeline {
        PerceptionPipeline {
            config: self.config.clone(),
            stages: self.stages[..3].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_stages_in_order() {
        let pipe = PerceptionConfig::default().build();
        let kinds: Vec<_> = pipe.stages().iter().map(Stage::kind).collect();
        assert_eq!(kinds, StageKind::ALL.to_vec());
    }

    #[test]
    fn fe_stage_has_eight_instances() {
        let pipe = PerceptionConfig::default().build();
        assert_eq!(pipe.stage(StageKind::FeatureExtraction).replicas(), 8);
    }

    #[test]
    fn trunk_stage_has_five_model_instances() {
        let pipe = PerceptionConfig::default().build();
        // occupancy + lane + 3 detectors
        assert_eq!(pipe.stage(StageKind::Trunks).replicas(), 5);
    }

    #[test]
    fn fusion_macs_dominate_single_chiplet_time() {
        // Paper Fig. 3: S_FUSE + T_FUSE are ~78-82% of single-chiplet
        // latency. In MAC terms (all linear-class at the same rate) the
        // fusion stages are ~21 GMAC vs ~4 GMAC of trunk linear work.
        let pipe = PerceptionConfig::default().build();
        let s = pipe.stage(StageKind::SpatialFusion).total_macs().as_gmacs();
        let t = pipe
            .stage(StageKind::TemporalFusion)
            .total_macs()
            .as_gmacs();
        assert!(s > 10.0 && t > 18.0, "s={s:.1} t={t:.1}");
        assert!(t > s, "temporal fusion is the bigger bottleneck");
    }

    #[test]
    fn stage_outputs_are_megabyte_scale() {
        let pipe = PerceptionConfig::default().build();
        for stage in pipe.stages() {
            let mb = stage.output_bytes().as_f64() / (1024.0 * 1024.0);
            assert!(
                mb < 20.0,
                "{}: {mb:.1} MiB is implausibly large",
                stage.kind()
            );
        }
    }

    #[test]
    fn bottleneck_pipeline_drops_trunks() {
        let pipe = PerceptionConfig::default().build();
        let b = pipe.bottleneck_stages();
        assert_eq!(b.stages().len(), 3);
        assert!(b.total_macs() < pipe.total_macs());
    }

    #[test]
    fn stage_kind_display() {
        assert_eq!(StageKind::SpatialFusion.to_string(), "S_FUSE");
        assert_eq!(StageKind::Trunks.to_string(), "TRUNKS");
    }
}
