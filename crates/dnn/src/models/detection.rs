//! Object-detection heads (traffic light / vehicle / pedestrian).
//!
//! Per the paper (§II-B Stage 4): "Each detector head entails separate
//! class and box prediction networks using a sequence of 3 convolution
//! layers and fully connected layer."

use serde::{Deserialize, Serialize};

use npu_tensor::TensorShape;

use crate::graph::{Graph, LayerId};
use crate::layer::Layer;
use crate::op::OpKind;

/// Detection head configuration.
///
/// # Examples
///
/// ```
/// use npu_dnn::models::DetectionConfig;
/// let cfg = DetectionConfig::default();
/// assert_eq!(cfg.conv_ch, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionConfig {
    /// Input BEV grid (from T_FUSE).
    pub in_grid: (u64, u64),
    /// Input channels.
    pub in_ch: u64,
    /// Detector working grid after pooling.
    pub det_grid: (u64, u64),
    /// Convolution width of the class/box nets.
    pub conv_ch: u64,
    /// Classes predicted by the class net.
    pub classes: u64,
    /// Anchors per cell.
    pub anchors: u64,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            in_grid: (20, 80),
            in_ch: 304,
            det_grid: (10, 40),
            conv_ch: 64,
            classes: 10,
            anchors: 2,
        }
    }
}

/// Builds one detector head (e.g. `det.vehicle`): shared pool, then class
/// and box prediction nets of 3 convs + FC each.
pub fn detection_head(name: &str, cfg: &DetectionConfig) -> Graph {
    let mut g = Graph::new(name.to_string());
    let (h, w) = cfg.det_grid;
    let pool = g
        .add(
            Layer::new(
                format!("{name}.pool"),
                OpKind::Pool { kernel: 2 },
                TensorShape::nchw(1, cfg.in_ch, h, w),
            ),
            &[],
        )
        .expect("first layer");

    let tokens = h * w;
    let class_out = cfg.anchors * cfg.classes;
    let box_out = cfg.anchors * 4;
    append_pred_net(&mut g, &format!("{name}.cls"), pool, cfg, class_out);
    append_pred_net(&mut g, &format!("{name}.box"), pool, cfg, box_out);
    debug_assert_eq!(tokens, h * w);
    g
}

/// One prediction net: 3 convs + FC head.
fn append_pred_net(
    g: &mut Graph,
    prefix: &str,
    input: LayerId,
    cfg: &DetectionConfig,
    out_features: u64,
) {
    let (h, w) = cfg.det_grid;
    let mut cur = input;
    let mut in_ch = cfg.in_ch;
    for i in 0..3 {
        cur = g
            .add(
                Layer::new(
                    format!("{prefix}.conv{}", i + 1),
                    OpKind::Conv2d {
                        in_ch,
                        out_ch: cfg.conv_ch,
                        kernel: (3, 3),
                        stride: 1,
                    },
                    TensorShape::nchw(1, cfg.conv_ch, h, w),
                ),
                &[cur],
            )
            .expect("cur exists");
        in_ch = cfg.conv_ch;
    }
    g.add(
        Layer::intrinsic(
            format!("{prefix}.fc"),
            OpKind::Dense {
                tokens: h * w,
                in_features: cfg.conv_ch,
                out_features,
            },
        ),
        &[cur],
    )
    .expect("cur exists");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpClass;

    #[test]
    fn head_structure() {
        let g = detection_head("det.vehicle", &DetectionConfig::default());
        // pool + 2 nets x (3 convs + fc) = 9 layers.
        assert_eq!(g.len(), 9);
        assert_eq!(g.sinks().len(), 2); // class + box outputs
    }

    #[test]
    fn macs_are_small_relative_to_other_trunks() {
        let g = detection_head("det.vehicle", &DetectionConfig::default());
        let gmacs = g.total_macs().as_gmacs();
        // Calibrated: ~0.2 GMAC per head so that Het(2)'s DET-only WS
        // migration saves ~1% of trunk energy as in Table I.
        assert!((0.1..0.4).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn heads_are_conv_dominated() {
        let g = detection_head("det.ped", &DetectionConfig::default());
        let conv_macs: f64 = g
            .iter()
            .filter(|(_, l)| l.class() == OpClass::Conv)
            .map(|(_, l)| l.macs().as_f64())
            .sum();
        let share = conv_macs / g.total_macs().as_f64();
        assert!(share > 0.9, "detection heads should be conv-bound: {share}");
    }
}
