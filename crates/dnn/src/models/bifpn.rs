//! Bidirectional feature pyramid network (BiFPN) neck.
//!
//! Two BiFPN blocks follow the feature extractor in the paper's Stage 1
//! (after EfficientDet, the paper's ref. 32). Each block runs a top-down pass (finer scales
//! fused with upsampled coarser ones) and a bottom-up pass, with a 3×3
//! fusion conv per node.

use serde::{Deserialize, Serialize};

use crate::graph::{Graph, LayerId};
use crate::layer::Layer;
use crate::op::OpKind;

/// BiFPN configuration.
///
/// # Examples
///
/// ```
/// use npu_dnn::models::BifpnConfig;
/// let cfg = BifpnConfig::default();
/// assert_eq!(cfg.blocks, 2);
/// assert_eq!(cfg.out_grid, (20, 80));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BifpnConfig {
    /// Pyramid channel width.
    pub ch: u64,
    /// Number of BiFPN blocks.
    pub blocks: u64,
    /// Output grid of the downstream fusion head (camera token grid).
    pub out_grid: (u64, u64),
    /// Channels of the stage output feature.
    pub out_ch: u64,
}

impl Default for BifpnConfig {
    /// Calibrated so FE+BFPN lands near the paper's 82.7 ms on one 256-PE
    /// OS chiplet (see DESIGN.md §1).
    fn default() -> Self {
        BifpnConfig {
            ch: 224,
            blocks: 2,
            out_grid: (20, 80),
            out_ch: 256,
        }
    }
}

/// Appends `cfg.blocks` BiFPN blocks fusing the given backbone taps
/// (finest first). Returns the final per-scale output ids (finest first).
///
/// # Panics
///
/// Panics if fewer than two taps are supplied — a pyramid needs at least
/// two scales to fuse.
pub fn append_bifpn(
    g: &mut Graph,
    prefix: &str,
    taps: &[LayerId],
    cfg: &BifpnConfig,
) -> Vec<LayerId> {
    assert!(taps.len() >= 2, "BiFPN needs at least two pyramid scales");

    // Lateral 1x1 projections to the pyramid width.
    let mut levels: Vec<LayerId> = taps
        .iter()
        .enumerate()
        .map(|(i, &tap)| {
            let src = g.layer(tap).out();
            g.add(
                Layer::new(
                    format!("{prefix}.lat{i}"),
                    OpKind::Conv2d {
                        in_ch: src.c(),
                        out_ch: cfg.ch,
                        kernel: (1, 1),
                        stride: 1,
                    },
                    src.with_c(cfg.ch),
                ),
                &[tap],
            )
            .expect("tap exists")
        })
        .collect();

    for b in 0..cfg.blocks {
        levels = append_block(g, &format!("{prefix}.b{b}"), &levels, cfg.ch);
    }
    levels
}

/// One BiFPN block: top-down then bottom-up, fusion conv per node.
fn append_block(g: &mut Graph, prefix: &str, levels: &[LayerId], ch: u64) -> Vec<LayerId> {
    let n = levels.len();
    let shape_of = |g: &Graph, id: LayerId| g.layer(id).out();

    // Top-down: td[n-1] = levels[n-1]; td[i] = conv(levels[i] + up(td[i+1])).
    let mut td: Vec<Option<LayerId>> = vec![None; n];
    td[n - 1] = Some(levels[n - 1]);
    for i in (0..n - 1).rev() {
        let target = shape_of(g, levels[i]);
        let up = g
            .add(
                Layer::new(format!("{prefix}.td{i}.up"), OpKind::Resample, target),
                &[td[i + 1].expect("filled by previous iteration")],
            )
            .expect("td exists");
        let sum = g
            .add(
                Layer::new(format!("{prefix}.td{i}.add"), OpKind::Eltwise, target),
                &[levels[i], up],
            )
            .expect("preds exist");
        td[i] = Some(
            g.add(
                Layer::new(
                    format!("{prefix}.td{i}.conv"),
                    OpKind::Conv2d {
                        in_ch: ch,
                        out_ch: ch,
                        kernel: (3, 3),
                        stride: 1,
                    },
                    target,
                ),
                &[sum],
            )
            .expect("sum exists"),
        );
    }
    let td: Vec<LayerId> = td.into_iter().map(|id| id.expect("all filled")).collect();

    // Bottom-up: out[0] = td[0]; out[i] = conv(levels[i] + td[i] + down(out[i-1])).
    let mut out: Vec<LayerId> = vec![td[0]];
    for i in 1..n {
        let target = shape_of(g, levels[i]);
        let down = g
            .add(
                Layer::new(
                    format!("{prefix}.bu{i}.down"),
                    OpKind::Pool { kernel: 2 },
                    target,
                ),
                &[out[i - 1]],
            )
            .expect("prev out exists");
        let sum = g
            .add(
                Layer::new(format!("{prefix}.bu{i}.add"), OpKind::Eltwise, target),
                &[levels[i], td[i], down],
            )
            .expect("preds exist");
        out.push(
            g.add(
                Layer::new(
                    format!("{prefix}.bu{i}.conv"),
                    OpKind::Conv2d {
                        in_ch: ch,
                        out_ch: ch,
                        kernel: (3, 3),
                        stride: 1,
                    },
                    target,
                ),
                &[sum],
            )
            .expect("sum exists"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::resnet::{append_backbone, FeConfig};
    use npu_tensor::TensorShape;

    fn built() -> (Graph, Vec<LayerId>) {
        let mut g = Graph::new("fe_bfpn");
        let taps = append_backbone(&mut g, "fe", &FeConfig::default());
        let outs = append_bifpn(&mut g, "bfpn", &taps, &BifpnConfig::default());
        (g, outs)
    }

    #[test]
    fn outputs_one_per_scale_at_pyramid_width() {
        let (g, outs) = built();
        assert_eq!(outs.len(), 4);
        for id in &outs {
            assert_eq!(g.layer(*id).out().c(), BifpnConfig::default().ch);
        }
    }

    #[test]
    fn finest_output_keeps_finest_resolution() {
        let (g, outs) = built();
        let o = g.layer(outs[0]).out();
        assert_eq!((o.h(), o.w()), (90, 160));
    }

    #[test]
    fn fusion_conv_count_matches_structure() {
        let (g, _) = built();
        // Per block: (n-1) top-down convs + (n-1) bottom-up convs = 6.
        let fusion_convs = g
            .iter()
            .filter(|(_, l)| l.name().starts_with("bfpn.b") && l.name().ends_with(".conv"))
            .count();
        assert_eq!(fusion_convs, 2 * 6);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_scale() {
        let mut g = Graph::new("g");
        let only = g
            .add(
                Layer::new("t", OpKind::Eltwise, TensorShape::nchw(1, 192, 8, 8)),
                &[],
            )
            .unwrap();
        let _ = append_bifpn(&mut g, "b", &[only], &BifpnConfig::default());
    }
}
