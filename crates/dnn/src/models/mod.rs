//! Builders for the networks of the Tesla Autopilot perception pipeline.
//!
//! Every builder returns a [`crate::Graph`] (or appends to one) whose layer
//! shapes follow the dimensions published in the paper: multiscale features
//! `90×160×256 / 45×80×512 / 23×40×1024 / 12×20×2048` (which imply a
//! 360×640 input with strides 4/8/16/32), a 20×80 per-camera token grid, a
//! 200×80 BEV attention grid, and a 12-entry temporal queue.

pub mod attention;
pub mod bifpn;
pub mod detection;
pub mod lane;
pub mod occupancy;
pub mod resnet;

pub use attention::{fusion_block, FusionConfig};
pub use bifpn::{append_bifpn, BifpnConfig};
pub use detection::{detection_head, DetectionConfig};
pub use lane::{lane_trunk, LaneConfig};
pub use occupancy::{occupancy_trunk, OccupancyConfig};
pub use resnet::{append_backbone, FeConfig};

use crate::graph::Graph;
use crate::layer::Layer;
use crate::op::OpKind;
use npu_tensor::TensorShape;

/// Ceiling division helper used for strided output extents.
pub(crate) fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Builds the complete per-camera FE+BFPN feature pipeline: ResNet-18-depth
/// bottleneck backbone, BiFPN neck, and a fusion head producing the
/// 20×80×`out_ch` camera feature the paper's Stage-1 emits.
///
/// # Examples
///
/// ```
/// use npu_dnn::models::{fe_bfpn, FeConfig, BifpnConfig};
///
/// let g = fe_bfpn(&FeConfig::default(), &BifpnConfig::default());
/// // The backbone taps match the paper's published feature sizes.
/// let p2 = g.layer(g.find("fe.s1.b1.out").unwrap()).out();
/// assert_eq!((p2.h(), p2.w(), p2.c()), (90, 160, 256));
/// ```
pub fn fe_bfpn(fe: &FeConfig, neck: &BifpnConfig) -> Graph {
    let mut g = Graph::new("fe_bfpn");
    let taps = resnet::append_backbone(&mut g, "fe", fe);
    let outs = bifpn::append_bifpn(&mut g, "bfpn", &taps, neck);

    // Fusion head: resample the finest BiFPN output to the camera token
    // grid and project to the stage-output channel count.
    let grid = neck.out_grid;
    let resampled = g
        .add(
            Layer::new(
                "head.resample",
                OpKind::Resample,
                TensorShape::nchw(1, neck.ch, grid.0, grid.1),
            ),
            &[outs[0]],
        )
        .expect("preds exist");
    g.add(
        Layer::new(
            "head.proj",
            OpKind::Conv2d {
                in_ch: neck.ch,
                out_ch: neck.out_ch,
                kernel: (3, 3),
                stride: 1,
            },
            TensorShape::nchw(1, neck.out_ch, grid.0, grid.1),
        ),
        &[resampled],
    )
    .expect("preds exist");
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fe_bfpn_total_macs_in_calibrated_band() {
        let g = fe_bfpn(&FeConfig::default(), &BifpnConfig::default());
        let gmacs = g.total_macs().as_gmacs();
        // Calibrated to land the paper's 82.7 ms on a 256-PE OS chiplet:
        // roughly 38-45 GMAC of conv work.
        assert!(
            (25.0..50.0).contains(&gmacs),
            "FE+BFPN should be tens of GMACs, got {gmacs:.1}"
        );
    }

    #[test]
    fn fe_bfpn_ends_at_camera_grid() {
        let g = fe_bfpn(&FeConfig::default(), &BifpnConfig::default());
        let sink = *g.sinks().last().unwrap();
        let out = g.layer(sink).out();
        assert_eq!((out.h(), out.w(), out.c()), (20, 80, 256));
    }
}
