//! ResNet-18-depth bottleneck backbone with the paper's feature dims.
//!
//! The paper (§II-B) specifies a "ResNet18 architecture with 4 multiscale
//! features (90×160×256, 45×80×512, 23×40×1024, 12×20×2048)". Those
//! channel counts are bottleneck-style (expansion 4) and the spatial sizes
//! imply a 360×640 input at strides 4/8/16/32, so we build a ResNet with
//! 18-layer depth (2 blocks per stage) and bottleneck blocks.

use serde::{Deserialize, Serialize};

use npu_tensor::TensorShape;

use crate::graph::{Graph, LayerId};
use crate::layer::Layer;
use crate::op::OpKind;

use super::ceil_div;

/// One backbone stage: bottleneck width, output channels, spatial stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Bottleneck (3×3 conv) width.
    pub width: u64,
    /// Stage output channels (after 1×1 expansion).
    pub out_ch: u64,
    /// Stride applied by the stage's first block.
    pub stride: u64,
    /// Number of residual blocks.
    pub blocks: u64,
}

/// Feature-extractor configuration.
///
/// # Examples
///
/// ```
/// use npu_dnn::models::FeConfig;
/// let fe = FeConfig::default();
/// assert_eq!(fe.input_hw, (360, 640));
/// assert_eq!(fe.stages[3].out_ch, 2048);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeConfig {
    /// Input image height/width (after ISP pre-scaling).
    pub input_hw: (u64, u64),
    /// Stem output channels.
    pub stem_ch: u64,
    /// The four residual stages.
    pub stages: [StageSpec; 4],
}

impl Default for FeConfig {
    /// The paper's published feature pyramid.
    fn default() -> Self {
        FeConfig {
            input_hw: (360, 640),
            stem_ch: 64,
            stages: [
                StageSpec {
                    width: 64,
                    out_ch: 256,
                    stride: 1,
                    blocks: 2,
                },
                StageSpec {
                    width: 128,
                    out_ch: 512,
                    stride: 2,
                    blocks: 2,
                },
                StageSpec {
                    width: 256,
                    out_ch: 1024,
                    stride: 2,
                    blocks: 2,
                },
                StageSpec {
                    width: 512,
                    out_ch: 2048,
                    stride: 2,
                    blocks: 2,
                },
            ],
        }
    }
}

impl FeConfig {
    /// The four multiscale tap shapes this config produces.
    pub fn tap_shapes(&self) -> [TensorShape; 4] {
        let (h, w) = self.input_hw;
        let mut div = 4; // stem conv /2 + maxpool /2
        let mut shapes = Vec::with_capacity(4);
        for s in &self.stages {
            div *= s.stride;
            shapes.push(TensorShape::nchw(
                1,
                s.out_ch,
                ceil_div(h, div),
                ceil_div(w, div),
            ));
        }
        [shapes[0], shapes[1], shapes[2], shapes[3]]
    }
}

/// Appends the backbone to `g` and returns the four multiscale tap ids
/// (finest first).
///
/// # Panics
///
/// Panics only on internal invariant violations (predecessor bookkeeping).
pub fn append_backbone(g: &mut Graph, prefix: &str, cfg: &FeConfig) -> [LayerId; 4] {
    let (h, w) = cfg.input_hw;
    let (h2, w2) = (ceil_div(h, 2), ceil_div(w, 2));

    let stem = g
        .add(
            Layer::new(
                format!("{prefix}.stem"),
                OpKind::Conv2d {
                    in_ch: 3,
                    out_ch: cfg.stem_ch,
                    kernel: (7, 7),
                    stride: 2,
                },
                TensorShape::nchw(1, cfg.stem_ch, h2, w2),
            ),
            &[],
        )
        .expect("stem is the first layer");

    let (h4, w4) = (ceil_div(h2, 2), ceil_div(w2, 2));
    let mut cur = g
        .add(
            Layer::new(
                format!("{prefix}.maxpool"),
                OpKind::Pool { kernel: 3 },
                TensorShape::nchw(1, cfg.stem_ch, h4, w4),
            ),
            &[stem],
        )
        .expect("stem exists");

    let mut in_ch = cfg.stem_ch;
    let (mut ch, mut cw) = (h4, w4);
    let mut taps = Vec::with_capacity(4);

    for (si, spec) in cfg.stages.iter().enumerate() {
        for b in 0..spec.blocks {
            let stride = if b == 0 { spec.stride } else { 1 };
            let (oh, ow) = (ceil_div(ch, stride), ceil_div(cw, stride));
            let base = format!("{prefix}.s{}.b{}", si + 1, b + 1);

            // 1x1 reduce at input spatial size.
            let reduce = g
                .add(
                    Layer::new(
                        format!("{base}.conv1"),
                        OpKind::Conv2d {
                            in_ch,
                            out_ch: spec.width,
                            kernel: (1, 1),
                            stride: 1,
                        },
                        TensorShape::nchw(1, spec.width, ch, cw),
                    ),
                    &[cur],
                )
                .expect("cur exists");
            // 3x3 (strided in the first block of a stage).
            let mid = g
                .add(
                    Layer::new(
                        format!("{base}.conv2"),
                        OpKind::Conv2d {
                            in_ch: spec.width,
                            out_ch: spec.width,
                            kernel: (3, 3),
                            stride,
                        },
                        TensorShape::nchw(1, spec.width, oh, ow),
                    ),
                    &[reduce],
                )
                .expect("reduce exists");
            // 1x1 expand.
            let expand = g
                .add(
                    Layer::new(
                        format!("{base}.conv3"),
                        OpKind::Conv2d {
                            in_ch: spec.width,
                            out_ch: spec.out_ch,
                            kernel: (1, 1),
                            stride: 1,
                        },
                        TensorShape::nchw(1, spec.out_ch, oh, ow),
                    ),
                    &[mid],
                )
                .expect("mid exists");

            // Projection shortcut when shape changes.
            let residual = if in_ch != spec.out_ch || stride != 1 {
                g.add(
                    Layer::new(
                        format!("{base}.proj"),
                        OpKind::Conv2d {
                            in_ch,
                            out_ch: spec.out_ch,
                            kernel: (1, 1),
                            stride,
                        },
                        TensorShape::nchw(1, spec.out_ch, oh, ow),
                    ),
                    &[cur],
                )
                .expect("cur exists")
            } else {
                cur
            };

            cur = g
                .add(
                    Layer::new(
                        format!("{base}.out"),
                        OpKind::Eltwise,
                        TensorShape::nchw(1, spec.out_ch, oh, ow),
                    ),
                    &[expand, residual],
                )
                .expect("both arms exist");

            in_ch = spec.out_ch;
            ch = oh;
            cw = ow;
        }
        taps.push(cur);
    }

    [taps[0], taps[1], taps[2], taps[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_taps_match_paper_dims() {
        let shapes = FeConfig::default().tap_shapes();
        assert_eq!(
            shapes.map(|s| (s.h(), s.w(), s.c())),
            [
                (90, 160, 256),
                (45, 80, 512),
                (23, 40, 1024),
                (12, 20, 2048)
            ]
        );
    }

    #[test]
    fn backbone_builds_and_taps_have_expected_shapes() {
        let mut g = Graph::new("fe");
        let taps = append_backbone(&mut g, "fe", &FeConfig::default());
        let expected = FeConfig::default().tap_shapes();
        for (tap, shape) in taps.iter().zip(expected) {
            assert_eq!(g.layer(*tap).out(), shape);
        }
        // 18-layer depth: stem + pool + 8 blocks x (3 conv + optional proj + add).
        assert!(g.len() > 30);
    }

    #[test]
    fn backbone_macs_are_bottleneck_scale() {
        let mut g = Graph::new("fe");
        append_backbone(&mut g, "fe", &FeConfig::default());
        let gmacs = g.total_macs().as_gmacs();
        // Hand count (DESIGN.md): ~11 GMAC for the backbone alone.
        assert!((8.0..14.0).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn every_block_has_residual_add() {
        let mut g = Graph::new("fe");
        append_backbone(&mut g, "fe", &FeConfig::default());
        let adds = g.iter().filter(|(_, l)| l.name().ends_with(".out")).count();
        assert_eq!(adds, 8); // 4 stages x 2 blocks
    }
}
