//! Lane-prediction trunk with context-aware computing.
//!
//! Per the paper (§II-B Stage 4), lane prediction combines self-attention
//! and cross-attention repeated over 3 levels with 3 classifier predictors.
//! §V-C/Fig. 11: Tesla's deployment is *context aware* — cross-attention
//! context (BEV grid regions) is only processed for relevant regions; the
//! fraction processed scales compute nearly linearly, and ≈60% retained
//! context meets the 82 ms pipeline constraint.

use serde::{Deserialize, Serialize};

use crate::graph::Graph;
use crate::layer::Layer;
use crate::op::OpKind;

/// Lane trunk configuration.
///
/// # Examples
///
/// ```
/// use npu_dnn::models::LaneConfig;
/// let cfg = LaneConfig::default();
/// assert_eq!(cfg.levels, 3);
/// assert!((cfg.context_fraction - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneConfig {
    /// Lane query tokens.
    pub queries: u64,
    /// Lane head feature dimension.
    pub d: u64,
    /// Grid context tokens at 100% retention (BEV grid cells).
    pub context_tokens: u64,
    /// Grid feature dimension (input to the K/V projections).
    pub context_dim: u64,
    /// Cross-attention key window per query at 100% retention.
    pub context_window: u64,
    /// Self-attention key window.
    pub self_window: u64,
    /// Number of decoder levels (each with a classifier predictor).
    pub levels: u64,
    /// Fraction of grid context processed (Fig. 11 sweeps 1.0 → 0.1).
    pub context_fraction: f64,
}

impl Default for LaneConfig {
    /// Calibrated so the full-context trunk is ≈120-130 ms on one 256-PE
    /// OS chiplet and the 82 ms constraint is met near 60% retention.
    fn default() -> Self {
        LaneConfig {
            queries: 800,
            d: 112,
            context_tokens: 200 * 80,
            context_dim: 304,
            context_window: 512,
            self_window: 32,
            levels: 3,
            context_fraction: 1.0,
        }
    }
}

impl LaneConfig {
    /// Returns a copy with the given context fraction.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not within `(0, 1]`.
    pub fn with_context_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "context fraction must be in (0, 1]");
        self.context_fraction = f;
        self
    }

    /// Effective context tokens at the configured retention.
    pub fn effective_context_tokens(&self) -> u64 {
        ((self.context_tokens as f64 * self.context_fraction).round() as u64).max(1)
    }

    /// Effective cross-attention window at the configured retention.
    pub fn effective_window(&self) -> u64 {
        ((self.context_window as f64 * self.context_fraction).round() as u64).max(1)
    }
}

/// Builds the lane trunk: `levels` × (context K/V projection, self
/// attention, cross attention, FFN, classifier).
pub fn lane_trunk(cfg: &LaneConfig) -> Graph {
    let mut g = Graph::new("lane");
    let ctx_tokens = cfg.effective_context_tokens();
    let window = cfg.effective_window();
    // The decoder chain runs level-to-level through the FFN output; the
    // per-level classifiers are side outputs.
    let mut prev_ffn = None;

    for lvl in 0..cfg.levels {
        let base = format!("lane.l{}", lvl + 1);
        let chain: Vec<_> = prev_ffn.into_iter().collect();

        // Project retained grid context to K/V at the lane dimension: the
        // context-dependent (dominant) cost. Each level re-projects the
        // BEV grid, so this is a graph source (runs concurrently with the
        // decoder chain).
        let kv = g
            .add(
                Layer::intrinsic(
                    format!("{base}.ctx_kv"),
                    OpKind::Dense {
                        tokens: ctx_tokens,
                        in_features: cfg.context_dim,
                        out_features: 2 * cfg.d,
                    },
                ),
                &[],
            )
            .expect("sources always insert");

        // Query self-attention over the previous level's queries.
        let self_qkv = g
            .add(
                Layer::intrinsic(
                    format!("{base}.self_qkv"),
                    OpKind::Dense {
                        tokens: cfg.queries,
                        in_features: cfg.d,
                        out_features: 3 * cfg.d,
                    },
                ),
                &chain,
            )
            .expect("preds exist");
        let self_score = g
            .add(
                Layer::intrinsic(
                    format!("{base}.self.score"),
                    OpKind::AttentionScore {
                        queries: cfg.queries,
                        window: cfg.self_window,
                        dim: cfg.d,
                    },
                ),
                &[self_qkv],
            )
            .expect("qkv exists");
        let self_ctx = g
            .add(
                Layer::intrinsic(
                    format!("{base}.self.ctx"),
                    OpKind::AttentionContext {
                        queries: cfg.queries,
                        window: cfg.self_window,
                        dim: cfg.d,
                    },
                ),
                &[self_score],
            )
            .expect("score exists");

        // Cross attention over retained context.
        let cross_score = g
            .add(
                Layer::intrinsic(
                    format!("{base}.cross.score"),
                    OpKind::AttentionScore {
                        queries: cfg.queries,
                        window,
                        dim: cfg.d,
                    },
                ),
                &[self_ctx, kv],
            )
            .expect("preds exist");
        let cross_ctx = g
            .add(
                Layer::intrinsic(
                    format!("{base}.cross.ctx"),
                    OpKind::AttentionContext {
                        queries: cfg.queries,
                        window,
                        dim: cfg.d,
                    },
                ),
                &[cross_score],
            )
            .expect("score exists");

        let ffn = g
            .add(
                Layer::intrinsic(
                    format!("{base}.ffn"),
                    OpKind::Ffn {
                        tokens: cfg.queries,
                        d_model: cfg.d,
                        hidden: 4 * cfg.d,
                    },
                ),
                &[cross_ctx],
            )
            .expect("ctx exists");

        // Per-level classifier predictor (3 levels of point predictions):
        // a side output off the decoder chain.
        g.add(
            Layer::intrinsic(
                format!("{base}.classifier"),
                OpKind::Dense {
                    tokens: cfg.queries,
                    in_features: cfg.d,
                    out_features: 16,
                },
            ),
            &[ffn],
        )
        .expect("ffn exists");
        prev_ffn = Some(ffn);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_context_macs_calibrated() {
        let g = lane_trunk(&LaneConfig::default());
        let gmacs = g.total_macs().as_gmacs();
        // ~3.9 GMAC -> ~122 ms at the 32 GMAC/s linear rate.
        assert!((3.0..4.8).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn context_fraction_scales_dominant_cost() {
        let full = lane_trunk(&LaneConfig::default()).total_macs().as_f64();
        let half = lane_trunk(&LaneConfig::default().with_context_fraction(0.5))
            .total_macs()
            .as_f64();
        let ratio = half / full;
        assert!(
            (0.5..0.62).contains(&ratio),
            "halving context should roughly halve cost, got {ratio:.3}"
        );
    }

    #[test]
    fn has_three_classifiers() {
        let g = lane_trunk(&LaneConfig::default());
        let n = g
            .iter()
            .filter(|(_, l)| l.name().ends_with(".classifier"))
            .count();
        assert_eq!(n, 3);
    }

    #[test]
    #[should_panic(expected = "context fraction")]
    fn zero_fraction_rejected() {
        let _ = LaneConfig::default().with_context_fraction(0.0);
    }

    proptest! {
        /// MACs are monotone in the retained-context fraction.
        #[test]
        fn macs_monotone_in_fraction(a in 0.05f64..1.0, b in 0.05f64..1.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let g_lo = lane_trunk(&LaneConfig::default().with_context_fraction(lo));
            let g_hi = lane_trunk(&LaneConfig::default().with_context_fraction(hi));
            prop_assert!(g_lo.total_macs() <= g_hi.total_macs());
        }
    }
}
