//! Multi-head attention fusion blocks (S_FUSE and T_FUSE).
//!
//! Per the paper (§II-B), each fusion module comprises a QKV projection,
//! an attention stage (two matrix multiplications, `(Q·Kᵀ)·V`) and a
//! feed-forward network. The attention is *windowed* (deformable/local):
//! each grid cell attends to a bounded set of candidate features — this is
//! the only reading consistent with the paper's reported attention
//! latencies, which are far below full quadratic attention (DESIGN.md §1).

use serde::{Deserialize, Serialize};

use npu_tensor::TensorShape;

use crate::graph::Graph;
use crate::layer::Layer;
use crate::op::OpKind;

/// Configuration of one attention fusion module.
///
/// # Examples
///
/// ```
/// use npu_dnn::models::FusionConfig;
///
/// let s = FusionConfig::spatial_default();
/// assert_eq!(s.proj_tokens, 12_800); // 8 cameras x 20x80 tokens
/// let t = FusionConfig::temporal_default();
/// assert_eq!(t.proj_tokens, 19_200); // 12-frame queue x 1600 tokens
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Graph/layer name prefix (`s_fuse` / `t_fuse`).
    pub name: String,
    /// Tokens passed through the QKV projection (source features).
    pub proj_tokens: u64,
    /// Model dimension.
    pub d_model: u64,
    /// Query tokens of the attention stage (BEV grid cells for S_FUSE).
    pub queries: u64,
    /// Keys attended per query (local/deformable window).
    pub window: u64,
    /// Tokens processed by the FFN.
    pub ffn_tokens: u64,
    /// FFN hidden width.
    pub ffn_hidden: u64,
    /// Optional output compression: `(tokens, features)` of a final dense
    /// layer squeezing the fused map into the next stage's input format.
    pub compress: Option<(u64, u64)>,
}

impl FusionConfig {
    /// The paper's S_FUSE: 8 cameras × 1600 tokens projected at d=256,
    /// 200×80 BEV grid queries, FFN over the grid.
    ///
    /// Calibration (DESIGN.md §1): QKV 2.52 GMAC → 78.6 ms, attention
    /// 0.66 GMAC → 20.5 ms, FFN 8.4 GMAC → 262 ms on one 256-PE OS chiplet.
    pub fn spatial_default() -> Self {
        FusionConfig {
            name: "s_fuse".to_string(),
            proj_tokens: 8 * 1600,
            d_model: 256,
            queries: 200 * 80,
            window: 80,
            ffn_tokens: 200 * 80,
            ffn_hidden: 1024,
            compress: Some((1600, 304)),
        }
    }

    /// The paper's T_FUSE: a 12-entry temporal feature queue of 1600-token
    /// maps at d=304 (paper: 300; 304 = 8 heads × 38).
    ///
    /// Calibration: QKV 5.32 GMAC → 166 ms, attention 1.12 GMAC → 35 ms,
    /// FFN 14.2 GMAC → 444 ms on one 256-PE OS chiplet.
    pub fn temporal_default() -> Self {
        FusionConfig {
            name: "t_fuse".to_string(),
            proj_tokens: 12 * 1600,
            d_model: 304,
            queries: 12 * 1600,
            window: 96,
            ffn_tokens: 12 * 1600,
            ffn_hidden: 4 * 304,
            compress: None,
        }
    }
}

/// Builds a fusion module graph: `qkv → score → context → ffn (→ compress)`.
///
/// Layer names are `{name}.qkv`, `{name}.attn.score`, `{name}.attn.ctx`,
/// `{name}.ffn` and optionally `{name}.compress` — the scheduler's sharding
/// rules and the paper's figures refer to these.
pub fn fusion_block(cfg: &FusionConfig) -> Graph {
    let mut g = Graph::new(cfg.name.clone());
    let qkv = g
        .add(
            Layer::intrinsic(
                format!("{}.qkv", cfg.name),
                OpKind::Dense {
                    tokens: cfg.proj_tokens,
                    in_features: cfg.d_model,
                    out_features: 3 * cfg.d_model,
                },
            ),
            &[],
        )
        .expect("first layer");
    let score = g
        .add(
            Layer::intrinsic(
                format!("{}.attn.score", cfg.name),
                OpKind::AttentionScore {
                    queries: cfg.queries,
                    window: cfg.window,
                    dim: cfg.d_model,
                },
            ),
            &[qkv],
        )
        .expect("qkv exists");
    let ctx = g
        .add(
            Layer::intrinsic(
                format!("{}.attn.ctx", cfg.name),
                OpKind::AttentionContext {
                    queries: cfg.queries,
                    window: cfg.window,
                    dim: cfg.d_model,
                },
            ),
            &[score],
        )
        .expect("score exists");
    let ffn = g
        .add(
            Layer::intrinsic(
                format!("{}.ffn", cfg.name),
                OpKind::Ffn {
                    tokens: cfg.ffn_tokens,
                    d_model: cfg.d_model,
                    hidden: cfg.ffn_hidden,
                },
            ),
            &[ctx],
        )
        .expect("ctx exists");
    if let Some((tokens, features)) = cfg.compress {
        g.add(
            Layer::intrinsic(
                format!("{}.compress", cfg.name),
                OpKind::Dense {
                    tokens,
                    in_features: cfg.d_model,
                    out_features: features,
                },
            ),
            &[ffn],
        )
        .expect("ffn exists");
    } else {
        // Emit the fused spatio-temporal grid for the trunks.
        g.add(
            Layer::new(
                format!("{}.out", cfg.name),
                OpKind::Resample,
                TensorShape::nchw(1, cfg.d_model, 20, 80),
            ),
            &[ffn],
        )
        .expect("ffn exists");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_fusion_macs_match_calibration() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let qkv = g.layer(g.find("s_fuse.qkv").unwrap()).macs().as_gmacs();
        assert!((qkv - 2.516).abs() < 0.01, "qkv {qkv}");
        let ffn = g.layer(g.find("s_fuse.ffn").unwrap()).macs().as_gmacs();
        assert!((ffn - 8.389).abs() < 0.01, "ffn {ffn}");
        let attn = g
            .layer(g.find("s_fuse.attn.score").unwrap())
            .macs()
            .as_gmacs()
            + g.layer(g.find("s_fuse.attn.ctx").unwrap())
                .macs()
                .as_gmacs();
        assert!((attn - 0.655).abs() < 0.01, "attn {attn}");
    }

    #[test]
    fn temporal_fusion_macs_match_calibration() {
        let g = fusion_block(&FusionConfig::temporal_default());
        let qkv = g.layer(g.find("t_fuse.qkv").unwrap()).macs().as_gmacs();
        assert!((qkv - 5.32).abs() < 0.02, "qkv {qkv}");
        let ffn = g.layer(g.find("t_fuse.ffn").unwrap()).macs().as_gmacs();
        assert!((ffn - 14.19).abs() < 0.05, "ffn {ffn}");
    }

    #[test]
    fn fusion_is_a_chain() {
        let g = fusion_block(&FusionConfig::spatial_default());
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.len(), 5); // qkv, score, ctx, ffn, compress
    }

    #[test]
    fn temporal_out_is_bev_grid() {
        let g = fusion_block(&FusionConfig::temporal_default());
        let sink = g.sinks()[0];
        let out = g.layer(sink).out();
        assert_eq!((out.h(), out.w(), out.c()), (20, 80, 304));
    }
}
