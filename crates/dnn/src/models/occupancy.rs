//! Occupancy network trunk: spatial deconvolution upsampling tower.
//!
//! Per the paper (§II-B Stage 4), the occupancy trunk predicts continuous
//! occupancy probability and semantics through "4 spatial deconvolution
//! layers with 16× upscaling". Table III ablates 1–4 levels (2×…16×).

use serde::{Deserialize, Serialize};

use npu_tensor::TensorShape;

use crate::graph::Graph;
use crate::layer::Layer;
use crate::op::OpKind;

/// Occupancy trunk configuration.
///
/// # Examples
///
/// ```
/// use npu_dnn::models::OccupancyConfig;
/// let cfg = OccupancyConfig::default();
/// assert_eq!(cfg.levels, 4);
/// assert_eq!(cfg.upscale_factor(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyConfig {
    /// Input BEV grid (from T_FUSE).
    pub in_grid: (u64, u64),
    /// Input channels (T_FUSE model dim).
    pub in_ch: u64,
    /// Deconvolution tower width.
    pub ch: u64,
    /// Number of 2× deconvolution levels (1–4; Table III sweeps this).
    pub levels: u64,
    /// Output channels: occupancy probability + semantic classes.
    pub out_classes: u64,
}

impl Default for OccupancyConfig {
    fn default() -> Self {
        OccupancyConfig {
            in_grid: (20, 80),
            in_ch: 304,
            ch: 128,
            levels: 4,
            out_classes: 17,
        }
    }
}

impl OccupancyConfig {
    /// Returns a copy with a different level count.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 (a tower needs at least one level).
    pub fn with_levels(mut self, levels: u64) -> Self {
        assert!(levels >= 1, "occupancy tower needs at least one level");
        self.levels = levels;
        self
    }

    /// Total spatial upscaling factor (`2^levels`).
    pub fn upscale_factor(&self) -> u64 {
        1 << self.levels
    }
}

/// Builds the occupancy trunk: 1×1 input projection, `levels` 2×
/// deconvolutions, 1×1 prediction head.
pub fn occupancy_trunk(cfg: &OccupancyConfig) -> Graph {
    let mut g = Graph::new("occupancy");
    let (h, w) = cfg.in_grid;
    let mut cur = g
        .add(
            Layer::new(
                "occupancy.in_proj",
                OpKind::Conv2d {
                    in_ch: cfg.in_ch,
                    out_ch: cfg.ch,
                    kernel: (1, 1),
                    stride: 1,
                },
                TensorShape::nchw(1, cfg.ch, h, w),
            ),
            &[],
        )
        .expect("first layer");

    let (mut ch_h, mut ch_w) = (h, w);
    for lvl in 0..cfg.levels {
        ch_h *= 2;
        ch_w *= 2;
        cur = g
            .add(
                Layer::new(
                    format!("occupancy.deconv{}", lvl + 1),
                    OpKind::Deconv2d {
                        in_ch: cfg.ch,
                        out_ch: cfg.ch,
                        kernel: (4, 4),
                        upscale: 2,
                    },
                    TensorShape::nchw(1, cfg.ch, ch_h, ch_w),
                ),
                &[cur],
            )
            .expect("cur exists");
    }

    g.add(
        Layer::new(
            "occupancy.head",
            OpKind::Conv2d {
                in_ch: cfg.ch,
                out_ch: cfg.out_classes,
                kernel: (1, 1),
                stride: 1,
            },
            TensorShape::nchw(1, cfg.out_classes, ch_h, ch_w),
        ),
        &[cur],
    )
    .expect("cur exists");
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tower_reaches_16x() {
        let g = occupancy_trunk(&OccupancyConfig::default());
        let out = g.layer(g.sinks()[0]).out();
        assert_eq!((out.h(), out.w()), (320, 1280));
        assert_eq!(out.c(), 17);
    }

    #[test]
    fn level_costs_quadruple_per_level() {
        // Uniform tower width => each 2x level costs ~4x the previous
        // (the Table III scaling pattern).
        let g = occupancy_trunk(&OccupancyConfig::default());
        let mac = |name: &str| g.layer(g.find(name).unwrap()).macs().as_f64();
        for lvl in 1..4 {
            let ratio = mac(&format!("occupancy.deconv{}", lvl + 1))
                / mac(&format!("occupancy.deconv{lvl}"));
            assert!((ratio - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn last_level_dominates() {
        let g = occupancy_trunk(&OccupancyConfig::default());
        let total = g.total_macs().as_f64();
        let last = g
            .layer(g.find("occupancy.deconv4").unwrap())
            .macs()
            .as_f64();
        let share = last / total;
        assert!(
            (0.6..0.85).contains(&share),
            "paper: final layer ~75% of trunk latency, got {share:.2}"
        );
    }

    #[test]
    fn with_levels_shrinks_tower() {
        let g = occupancy_trunk(&OccupancyConfig::default().with_levels(1));
        let out = g.layer(g.sinks()[0]).out();
        assert_eq!((out.h(), out.w()), (40, 160));
        assert_eq!(g.len(), 3); // proj + 1 deconv + head
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_rejected() {
        let _ = OccupancyConfig::default().with_levels(0);
    }
}
