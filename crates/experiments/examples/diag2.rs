fn main() {
    println!("{}", npu_experiments::table1::run());
    println!("{}", npu_experiments::fig9::run());
}
