//! Tail-latency DSE: the scenario-aware package search re-run under a
//! p99 bound (the serving-style question ISSUE 6 ships).
//!
//! The scenario-aware DSE ([`crate::scenario_dse`]) sizes packages by
//! their *mean* behaviour — the DES steady interval against each
//! family's latency target. But a package that keeps up on average can
//! still blow through the latency budget at the tail: burst arrivals
//! and trace stalls queue frames, and the p99 frame latency is what a
//! safety case actually bounds. This artifact re-runs the same
//! geometry × family grid and asks both questions of every cell:
//!
//! * **mean** — `des_interval <= target` (the scenario-dse criterion);
//! * **tail** — `p99 <= TAIL_SLO_MULTIPLIER x target`, via
//!   [`Constraint::tail_at_most`] over the DES-streamed
//!   [`LatencyQuantiles`]. The multiplier reflects that a frame rides
//!   through a multi-stage pipeline, so even a healthy package holds a
//!   few intervals of latency in flight; families whose queues *ramp*
//!   (latency far beyond any fixed pipeline depth) fail it on every
//!   geometry and are reported as unserveable at the tail.
//!
//! The headline is where the cheapest-feasible package **shifts**: the
//! per-family mean winner vs tail winner, and the envelope-level answer
//! over the families any geometry can serve at the tail. Per-segment
//! drive tails ride along from the same `SimReport::tails` stream.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_mcm::McmPackage;
use npu_pipesim::LatencyQuantiles;
use npu_scenario::{drive_sweep, evaluate_point, Drive, Scenario, ScenarioPoint, SWEEP_FRAMES};
use npu_study::{Axis, Constraint, Grid, Objective, Percentile, Study};
use npu_tensor::Seconds;

use crate::scenario_dse::GEOMETRIES;
use crate::text::{ms, TextTable};

/// The p99 SLO as a multiple of each family's steady-interval latency
/// target: a frame legitimately holds a few pipeline stages' worth of
/// intervals in flight, so the tail budget is a small multiple of the
/// interval target — ramping queues overshoot it on any geometry.
pub const TAIL_SLO_MULTIPLIER: f64 = 4.0;

/// One (scenario family, package) cell judged at the mean and the tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailPoint {
    /// Scenario family name.
    pub scenario: String,
    /// Package name (`os256-WxH`).
    pub package: String,
    /// Chiplets in the package (the cost proxy).
    pub chiplets: u64,
    /// DES-measured steady interval under the family's arrivals.
    pub des_interval: Seconds,
    /// The family's steady-interval latency target.
    pub target: Seconds,
    /// Whether the mean criterion holds (`des_interval <= target`).
    pub mean_met: bool,
    /// DES tail percentiles of the cell's steady-state latency stream.
    pub tails: LatencyQuantiles,
    /// The family's p99 SLO (`TAIL_SLO_MULTIPLIER x target`).
    pub tail_slo: Seconds,
    /// Whether the p99 SLO holds (`p99 <= tail_slo`).
    pub tail_met: bool,
}

/// Per-family cheapest package under each criterion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyWinner {
    /// Scenario family name.
    pub scenario: String,
    /// Cheapest package meeting the mean criterion, if any.
    pub mean_cheapest: Option<String>,
    /// Cheapest package meeting mean AND p99 SLO, if any.
    pub tail_cheapest: Option<String>,
    /// Whether the p99 bound moves (or removes) the winner.
    pub shifted: bool,
}

/// A family no swept geometry serves at the tail, and the closest miss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnserveableFamily {
    /// Scenario family name.
    pub scenario: String,
    /// The family's p99 SLO.
    pub tail_slo: Seconds,
    /// Package with the lowest p99 (the best achievable tail).
    pub best_package: String,
    /// That package's p99.
    pub best_p99: Seconds,
}

/// Per-segment tail percentiles of a simulated drive timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentTails {
    /// Timeline name.
    pub drive: String,
    /// Package name.
    pub package: String,
    /// Scenario family active during the segment.
    pub scenario: String,
    /// Frames that entered the pipeline.
    pub served: usize,
    /// DES mean per-frame latency in steady state.
    pub mean_latency: Seconds,
    /// DES tail percentiles of the segment's latency stream.
    pub tails: LatencyQuantiles,
}

/// The tail-latency DSE result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailsDse {
    /// DES frames simulated per grid point.
    pub frames: usize,
    /// The p99 SLO multiplier over each family's latency target.
    pub slo_multiplier: f64,
    /// Scenario families evaluated (name order as swept).
    pub families: Vec<String>,
    /// Every grid cell, family-major.
    pub points: Vec<TailPoint>,
    /// Per-family winners under the mean and tail criteria.
    pub family_winners: Vec<FamilyWinner>,
    /// Families no swept geometry serves at the tail.
    pub unserveable: Vec<UnserveableFamily>,
    /// Cheapest package serving every family at the mean (the
    /// scenario-dse answer).
    pub cheapest_mean: Option<String>,
    /// Cheapest package serving every *tail-serveable* family at both
    /// the mean and the p99 SLO.
    pub cheapest_tail: Option<String>,
    /// Per-segment tails of the built-in drive timelines.
    pub segments: Vec<SegmentTails>,
}

/// Runs the family × package grid under both criteria, selects the
/// per-family and envelope winners, and collects per-segment drive
/// tails. Deterministic at any `--jobs` count: the grid fans out in
/// input order and every selection folds with first-minimum tie-breaks.
pub fn run() -> TailsDse {
    let families = Scenario::builtin();
    let packages: Vec<McmPackage> = GEOMETRIES
        .iter()
        .map(|&(w, h)| crate::scenario_dse::package(w, h))
        .collect();
    let model = FittedMaestro::new();

    // Family-major grid: each family's package block is contiguous, so
    // the per-family winner folds below are plain `chunks()`.
    let grid = Grid::of(Axis::new("scenario", families.clone()))
        .cross(Axis::new("package", packages.clone()));
    let run = Study::new("tails", grid, &model)
        .run(|(scenario, pkg), model| evaluate_point(scenario, pkg, model, SWEEP_FRAMES));

    let mut points = Vec::with_capacity(run.metrics().len());
    let mut family_winners = Vec::with_capacity(families.len());
    let mut unserveable = Vec::new();
    for (family, block) in families.iter().zip(run.metrics().chunks(packages.len())) {
        let target = family.latency_target();
        let slo = Seconds::new(target.as_secs() * TAIL_SLO_MULTIPLIER);
        // The two feasibility criteria as Study constraints: the mean
        // criterion is scenario-dse's, the tail criterion is the new
        // percentile surface.
        let mean_ok = Constraint::at_most(
            "steady interval within the family target",
            target.as_secs(),
            |p: &ScenarioPoint| p.des_interval.as_secs(),
        );
        let tail_ok = Constraint::tail_at_most(Percentile::P99, slo.as_secs());

        for p in block {
            points.push(TailPoint {
                scenario: p.scenario.clone(),
                package: p.package.clone(),
                chiplets: p.chiplets,
                des_interval: p.des_interval,
                target,
                mean_met: mean_ok.holds(p),
                tails: p.tails,
                tail_slo: slo,
                tail_met: tail_ok.holds(p),
            });
        }

        // First-minimum chiplet folds: cheapest under each criterion.
        let cheapest = |keep: &dyn Fn(&ScenarioPoint) -> bool| {
            block
                .iter()
                .filter(|p| keep(p))
                .fold(None::<&ScenarioPoint>, |best, p| match best {
                    Some(b) if b.chiplets <= p.chiplets => Some(b),
                    _ => Some(p),
                })
                .map(|p| p.package.clone())
        };
        let mean_cheapest = cheapest(&|p| mean_ok.holds(p));
        let tail_cheapest = cheapest(&|p| mean_ok.holds(p) && tail_ok.holds(p));

        if tail_cheapest.is_none() {
            // No geometry serves the tail: report the closest miss,
            // scored by the percentile objective.
            let best_tail = Objective::minimize_tail(Percentile::P99);
            let best = block
                .iter()
                .fold(None::<&ScenarioPoint>, |best, p| match best {
                    Some(b) if best_tail.score(b) <= best_tail.score(p) => Some(b),
                    _ => Some(p),
                })
                .expect("at least one package per family");
            unserveable.push(UnserveableFamily {
                scenario: family.name.clone(),
                tail_slo: slo,
                best_package: best.package.clone(),
                best_p99: best.tails.p99,
            });
        }

        family_winners.push(FamilyWinner {
            scenario: family.name.clone(),
            shifted: tail_cheapest != mean_cheapest,
            mean_cheapest,
            tail_cheapest,
        });
    }

    // Envelope winners: the cheapest package whose every-family column
    // passes. The tail envelope spans only the tail-serveable families —
    // otherwise one ramping family would void the whole question.
    let column = |p_idx: usize| -> Vec<&TailPoint> {
        (0..families.len())
            .map(|f| &points[f * packages.len() + p_idx])
            .collect()
    };
    let envelope = |feasible: &dyn Fn(&TailPoint) -> bool| {
        (0..packages.len())
            .map(column)
            .filter(|col| col.iter().all(|p| feasible(p)))
            .fold(None::<Vec<&TailPoint>>, |best, col| match best {
                Some(b) if b[0].chiplets <= col[0].chiplets => Some(b),
                _ => Some(col),
            })
            .map(|col| col[0].package.clone())
    };
    let serveable: Vec<&str> = family_winners
        .iter()
        .filter(|w| w.tail_cheapest.is_some())
        .map(|w| w.scenario.as_str())
        .collect();
    let cheapest_mean = envelope(&|p| p.mean_met);
    let cheapest_tail =
        envelope(&|p| !serveable.contains(&p.scenario.as_str()) || (p.mean_met && p.tail_met));

    // Per-segment drive tails: the same two reference packages the drive
    // workbench sweeps, each segment's percentiles from its own
    // steady-state stream.
    let drive_packages = [McmPackage::simba_6x6(), McmPackage::dual_npu_12x6()];
    let reconfig = ReconfigModel::default();
    let segments: Vec<SegmentTails> =
        drive_sweep(&Drive::builtin(), &drive_packages, &model, &reconfig)
            .iter()
            .flat_map(|outcome| {
                outcome.segments.iter().map(|seg| SegmentTails {
                    drive: outcome.drive.clone(),
                    package: outcome.package.clone(),
                    scenario: seg.scenario.clone(),
                    served: seg.served,
                    mean_latency: seg.mean_latency,
                    tails: seg.tails,
                })
            })
            .collect();

    TailsDse {
        frames: SWEEP_FRAMES,
        slo_multiplier: TAIL_SLO_MULTIPLIER,
        families: families.iter().map(|s| s.name.clone()).collect(),
        points,
        family_winners,
        unserveable,
        cheapest_mean,
        cheapest_tail,
        segments,
    }
}

impl fmt::Display for TailsDse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let opt = |o: &Option<String>| o.clone().unwrap_or_else(|| "-".into());
        let mut t = TextTable::new(
            format!(
                "Tail-latency DSE - cheapest package at the mean vs under a p99 SLO \
                 ({}x target, {} DES frames)",
                self.slo_multiplier, self.frames
            ),
            &[
                "family",
                "target[ms]",
                "p99 SLO[ms]",
                "mean winner",
                "p99@mean",
                "tail winner",
                "p99@tail",
                "shift",
            ],
        );
        for w in &self.family_winners {
            let p99_of = |package: &Option<String>| {
                package
                    .as_deref()
                    .and_then(|name| {
                        self.points
                            .iter()
                            .find(|p| p.scenario == w.scenario && p.package == name)
                    })
                    .map(|p| ms(p.tails.p99))
                    .unwrap_or_else(|| "-".into())
            };
            let (target, slo) = self
                .points
                .iter()
                .find(|p| p.scenario == w.scenario)
                .map(|p| (p.target, p.tail_slo))
                .expect("every family has points");
            t.row(vec![
                w.scenario.clone(),
                ms(target),
                ms(slo),
                opt(&w.mean_cheapest),
                p99_of(&w.mean_cheapest),
                opt(&w.tail_cheapest),
                p99_of(&w.tail_cheapest),
                if w.shifted { "<<" } else { "" }.to_string(),
            ]);
        }
        t.note(format!(
            "envelope: cheapest at the mean = {}, cheapest at the p99 SLO \
             (over the {} tail-serveable families) = {}",
            opt(&self.cheapest_mean),
            self.families.len() - self.unserveable.len(),
            opt(&self.cheapest_tail),
        ));
        for u in &self.unserveable {
            t.note(format!(
                "{}: unserveable at the tail - queues ramp past the {} ms SLO on \
                 every geometry (best p99 {} ms on {})",
                u.scenario,
                ms(u.tail_slo),
                ms(u.best_p99),
                u.best_package
            ));
        }
        t.fmt(f)?;

        let mut seg = TextTable::new(
            "Drive-segment tails - per-segment p50/p95/p99/p99.9 frame latency [ms]",
            &[
                "drive", "package", "segment", "served", "mean", "p50", "p95", "p99", "p99.9",
            ],
        );
        for s in &self.segments {
            seg.row(vec![
                s.drive.clone(),
                s.package.clone(),
                s.scenario.clone(),
                s.served.to_string(),
                ms(s.mean_latency),
                ms(s.tails.p50),
                ms(s.tails.p95),
                ms(s.tails.p99),
                ms(s.tails.p999),
            ]);
        }
        seg.note(
            "per-segment percentiles stream through the phased DES over each \
             segment's own trimmed steady-state window",
        );
        seg.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;

    /// As expensive as the scenario-dse grid plus the drive sweep; run
    /// once and share across tests.
    fn dse() -> &'static TailsDse {
        static DSE: OnceLock<TailsDse> = OnceLock::new();
        DSE.get_or_init(run)
    }

    #[test]
    fn grid_covers_every_family_package_pair() {
        let dse = dse();
        assert_eq!(dse.points.len(), dse.families.len() * GEOMETRIES.len());
        assert_eq!(dse.family_winners.len(), dse.families.len());
        // Family-major: the first block is all one family.
        let first = &dse.points[0].scenario;
        assert!(dse.points[..GEOMETRIES.len()]
            .iter()
            .all(|p| &p.scenario == first));
    }

    #[test]
    fn the_p99_bound_shifts_the_winner() {
        let dse = dse();
        // The mean criterion reproduces scenario-dse's envelope answer...
        assert_eq!(dse.cheapest_mean.as_deref(), Some("os256-6x6"));
        // ...but the p99 SLO moves the envelope winner up a geometry:
        // the 6x6 rides the trace-replay tail past 4x its target.
        assert_eq!(dse.cheapest_tail.as_deref(), Some("os256-8x6"));
        assert_ne!(dse.cheapest_mean, dse.cheapest_tail);
        // And at least one family's own winner shifts (ISSUE 6
        // acceptance): trace-replay's mean winner is the 5x5, its tail
        // winner the 8x6.
        let trace = dse
            .family_winners
            .iter()
            .find(|w| w.scenario == "trace-replay")
            .expect("trace-replay is built in");
        assert!(trace.shifted, "{trace:?}");
        assert_eq!(trace.mean_cheapest.as_deref(), Some("os256-5x5"));
        assert_eq!(trace.tail_cheapest.as_deref(), Some("os256-8x6"));
    }

    #[test]
    fn unserveable_families_ramp_past_the_slo_everywhere() {
        let dse = dse();
        // The 30 FPS compute-bound families queue without bound (33 ms
        // arrivals vs ~88 ms pipe), so no geometry holds their tail.
        assert!(!dse.unserveable.is_empty());
        for u in &dse.unserveable {
            assert!(u.best_p99 > u.tail_slo, "{}", u.scenario);
            let winner = dse
                .family_winners
                .iter()
                .find(|w| w.scenario == u.scenario)
                .unwrap();
            assert_eq!(winner.tail_cheapest, None, "{}", u.scenario);
        }
        // But the tail-serveable envelope is non-empty: night-low-rate
        // holds its SLO on the paper's own 6x6.
        assert!(dse
            .family_winners
            .iter()
            .any(|w| w.scenario == "night-low-rate"
                && w.tail_cheapest.as_deref() == Some("os256-6x6")));
    }

    #[test]
    fn points_are_internally_consistent() {
        let dse = dse();
        for p in &dse.points {
            assert_eq!(p.mean_met, p.des_interval <= p.target, "{p:?}");
            assert_eq!(p.tail_met, p.tails.p99 <= p.tail_slo, "{p:?}");
            assert!((p.tail_slo.as_secs() - p.target.as_secs() * dse.slo_multiplier).abs() < 1e-12);
            assert!(p.tails.p50 <= p.tails.p99, "{p:?}");
        }
    }

    #[test]
    fn drive_segments_report_tails() {
        let dse = dse();
        // Two drives x two packages, every segment present.
        let expected: usize = Drive::builtin()
            .iter()
            .map(|d| d.segments.len())
            .sum::<usize>()
            * 2;
        assert_eq!(dse.segments.len(), expected);
        for s in &dse.segments {
            assert!(s.served > 0, "{}/{}", s.drive, s.scenario);
            assert!(s.tails.p50 > Seconds::ZERO, "{}/{}", s.drive, s.scenario);
            assert!(s.tails.p99 <= s.tails.p999, "{}/{}", s.drive, s.scenario);
        }
    }

    #[test]
    fn renders_both_formats_from_one_run() {
        let report = dse();
        let text = report.to_string();
        assert!(text.contains("Tail-latency DSE"));
        assert!(text.contains("Drive-segment tails"));
        assert!(text.contains("p99.9"));
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("\"cheapest_tail\""));
        assert!(json.contains("\"p999\""));
        assert!(!json.contains("==="));
    }
}
