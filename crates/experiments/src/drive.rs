//! Drive timeline workbench: the built-in mode-switching timelines
//! simulated end to end on the single- and dual-NPU packages.
//!
//! Each (drive, package) cell compiles every segment with Algorithm 1,
//! prices every boundary re-match (chiplets kept / prestaged / stalled,
//! weights reloaded, staged per-chiplet readiness) and runs the whole
//! timeline as one phased DES pass under **make-before-break**
//! handovers: chiplets that keep their program serve straight across
//! each boundary, idle chiplets prestage over the outgoing tail, and a
//! frame is dropped only when its critical path lands on a chiplet
//! still reloading. This is the online-mode-switching extension of the
//! scenario workbench: steady-state per-segment behaviour *and* the
//! transition costs invisible to independent per-scenario runs
//! (ISSUEs 5, 10).

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_mcm::McmPackage;
use npu_scenario::{drive_sweep, Drive, DriveOutcome};

use crate::text::{ms, TextTable};

/// The drive × package grid results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveGrid {
    /// The reconfiguration model pricing every transition.
    pub reconfig: ReconfigModel,
    /// One outcome per (drive, package) pair, drive-major.
    pub outcomes: Vec<DriveOutcome>,
}

impl DriveGrid {
    /// Outcomes of one timeline across all packages.
    pub fn timeline(&self, name: &str) -> Vec<&DriveOutcome> {
        self.outcomes.iter().filter(|o| o.drive == name).collect()
    }

    /// Total frames dropped across the whole grid.
    pub fn total_dropped(&self) -> usize {
        self.outcomes.iter().map(|o| o.total_dropped).sum()
    }
}

/// Runs the built-in drive timelines on the paper's 6×6 single-NPU
/// package and the 12×6 dual-NPU package.
pub fn run() -> DriveGrid {
    let drives = Drive::builtin();
    let packages = [McmPackage::simba_6x6(), McmPackage::dual_npu_12x6()];
    let model = FittedMaestro::new();
    let reconfig = ReconfigModel::default();
    DriveGrid {
        reconfig,
        outcomes: drive_sweep(&drives, &packages, &model, &reconfig),
    }
}

impl fmt::Display for DriveGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut seg = TextTable::new(
            "Drive timelines - per-segment steady state (phased DES)",
            &[
                "drive",
                "package",
                "segment",
                "t0[s]",
                "offered",
                "dropped",
                "stale[ms]",
                "Pipe[ms]",
                "Pred[ms]",
                "DES[ms]",
                "Lat[ms]",
                "p99[ms]",
                "maxLat[ms]",
            ],
        );
        for o in &self.outcomes {
            for s in &o.segments {
                seg.row(vec![
                    o.drive.clone(),
                    o.package.clone(),
                    s.scenario.clone(),
                    format!("{:.1}", s.start.as_secs()),
                    s.offered.to_string(),
                    s.dropped.to_string(),
                    ms(s.staleness),
                    ms(s.pipe),
                    ms(s.predicted_interval),
                    ms(s.des_interval),
                    ms(s.mean_latency),
                    ms(s.tails.p99),
                    ms(s.max_latency),
                ]);
            }
        }
        seg.note(
            "phases share one drive clock; the compiled schedule is swapped at \
             every segment boundary make-before-break (kept chiplets serve \
             straight across, in-flight frames drain under the old mapping); \
             stale = time from segment start to its first served frame",
        );
        seg.fmt(f)?;

        let mut tr = TextTable::new(
            "Drive timelines - mode-switch re-matching",
            &[
                "drive",
                "package",
                "switch",
                "at[s]",
                "barrier[ms]",
                "stallwin[ms]",
                "saved[ms]",
                "repro",
                "kept",
                "stall",
                "prestg",
                "weights[MiB]",
                "dropped",
            ],
        );
        for o in &self.outcomes {
            for t in &o.transitions {
                tr.row(vec![
                    o.drive.clone(),
                    o.package.clone(),
                    format!("{} -> {}", t.from, t.to),
                    format!("{:.1}", t.at.as_secs()),
                    ms(t.rematch_latency),
                    ms(t.stall_window),
                    ms(t.overlap_saving),
                    t.reprogrammed.to_string(),
                    t.kept.to_string(),
                    t.stalled.to_string(),
                    t.prestaged.to_string(),
                    format!("{:.1}", t.weight_bytes.as_f64() / (1024.0 * 1024.0)),
                    t.dropped.to_string(),
                ]);
            }
        }
        tr.note(format!(
            "barrier = {} control walk + {} per re-programmed chiplet + weight \
             reload at {:.0} GB/s: what a package-wide quiesce would charge. \
             Make-before-break stalls only the `stall` chiplets (busy until the \
             break); `kept` serve across, `prestg` reload over the outgoing \
             tail. saved = barrier latency minus the actual admission stall",
            self.reconfig.base,
            self.reconfig.per_chiplet,
            self.reconfig.reload_bytes_per_sec / 1e9
        ));
        tr.note(
            "a switch that only changes arrival pacing (same compiled workload) \
             re-programs nothing and costs nothing",
        );
        tr.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;

    /// The grid compiles 2 drives x 2 packages x up to 3 segments with
    /// the matcher; run it once and share across tests.
    fn grid() -> &'static DriveGrid {
        static GRID: OnceLock<DriveGrid> = OnceLock::new();
        GRID.get_or_init(run)
    }

    #[test]
    fn grid_covers_every_drive_on_both_packages() {
        let g = grid();
        let drives = Drive::builtin();
        assert_eq!(g.outcomes.len(), drives.len() * 2);
        for d in &drives {
            assert_eq!(g.timeline(&d.name).len(), 2, "{}", d.name);
        }
    }

    #[test]
    fn the_headline_timeline_switches_make_before_break() {
        let g = grid();
        let headline = &g.timeline("cruise-urban-degraded")[0];
        assert_eq!(headline.transitions.len(), 2);
        for t in &headline.transitions {
            assert!(t.reprogrammed > 0, "both switches change the workload");
            // Partial diffs: the surviving chiplets carry perception
            // across the switch, and the stalled reloads hide behind the
            // pipeline's wavefront offset — zero frames dropped where
            // the old barrier model charged the full spin-up window.
            assert!(t.kept > 0);
            assert!(t.stalled > 0);
            assert_eq!(t.dropped, 0);
            assert!(t.overlap_saving > npu_tensor::Seconds::ZERO);
        }
        assert_eq!(headline.total_dropped, 0);
        assert_eq!(headline.total_flushed, 0);
    }

    #[test]
    fn renders_segments_and_transitions() {
        let text = grid().to_string();
        assert!(text.contains("per-segment steady state"));
        assert!(text.contains("mode-switch re-matching"));
        assert!(text.contains("highway-cruise"));
        assert!(text.contains("urban-dense -> degraded-dropout"));
    }
}
