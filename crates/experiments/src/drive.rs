//! Drive timeline workbench: the built-in mode-switching timelines
//! simulated end to end on the single- and dual-NPU packages.
//!
//! Each (drive, package) cell compiles every segment with Algorithm 1,
//! prices every boundary re-match (chiplets re-programmed, weights
//! reloaded, spin-up latency) and runs the whole timeline as one phased
//! DES pass, counting the frames dropped inside each spin-up window.
//! This is the online-mode-switching extension of the scenario
//! workbench: steady-state per-segment behaviour *and* the transition
//! costs invisible to independent per-scenario runs (ISSUE 5).

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_mcm::McmPackage;
use npu_scenario::{drive_sweep, Drive, DriveOutcome};

use crate::text::{ms, TextTable};

/// The drive × package grid results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveGrid {
    /// The reconfiguration model pricing every transition.
    pub reconfig: ReconfigModel,
    /// One outcome per (drive, package) pair, drive-major.
    pub outcomes: Vec<DriveOutcome>,
}

impl DriveGrid {
    /// Outcomes of one timeline across all packages.
    pub fn timeline(&self, name: &str) -> Vec<&DriveOutcome> {
        self.outcomes.iter().filter(|o| o.drive == name).collect()
    }

    /// Total frames dropped across the whole grid.
    pub fn total_dropped(&self) -> usize {
        self.outcomes.iter().map(|o| o.total_dropped).sum()
    }
}

/// Runs the built-in drive timelines on the paper's 6×6 single-NPU
/// package and the 12×6 dual-NPU package.
pub fn run() -> DriveGrid {
    let drives = Drive::builtin();
    let packages = [McmPackage::simba_6x6(), McmPackage::dual_npu_12x6()];
    let model = FittedMaestro::new();
    let reconfig = ReconfigModel::default();
    DriveGrid {
        reconfig,
        outcomes: drive_sweep(&drives, &packages, &model, &reconfig),
    }
}

impl fmt::Display for DriveGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut seg = TextTable::new(
            "Drive timelines - per-segment steady state (phased DES)",
            &[
                "drive",
                "package",
                "segment",
                "t0[s]",
                "offered",
                "dropped",
                "Pipe[ms]",
                "Pred[ms]",
                "DES[ms]",
                "Lat[ms]",
                "p99[ms]",
                "maxLat[ms]",
            ],
        );
        for o in &self.outcomes {
            for s in &o.segments {
                seg.row(vec![
                    o.drive.clone(),
                    o.package.clone(),
                    s.scenario.clone(),
                    format!("{:.1}", s.start.as_secs()),
                    s.offered.to_string(),
                    s.dropped.to_string(),
                    ms(s.pipe),
                    ms(s.predicted_interval),
                    ms(s.des_interval),
                    ms(s.mean_latency),
                    ms(s.tails.p99),
                    ms(s.max_latency),
                ]);
            }
        }
        seg.note(
            "phases share one drive clock; the compiled schedule is swapped at \
             every segment boundary (clean handover: re-programming flushes \
             chiplet queues, in-flight frames drain under the old mapping)",
        );
        seg.fmt(f)?;

        let mut tr = TextTable::new(
            "Drive timelines - mode-switch re-matching",
            &[
                "drive",
                "package",
                "switch",
                "at[s]",
                "re-match[ms]",
                "chiplets",
                "weights[MiB]",
                "dropped",
            ],
        );
        for o in &self.outcomes {
            for t in &o.transitions {
                tr.row(vec![
                    o.drive.clone(),
                    o.package.clone(),
                    format!("{} -> {}", t.from, t.to),
                    format!("{:.1}", t.at.as_secs()),
                    ms(t.rematch_latency),
                    t.reprogrammed.to_string(),
                    format!("{:.1}", t.weight_bytes.as_f64() / (1024.0 * 1024.0)),
                    t.dropped.to_string(),
                ]);
            }
        }
        tr.note(format!(
            "re-match = {} barrier + {} per re-programmed chiplet + weight reload \
             at {:.0} GB/s; frames arriving inside the window are dropped",
            self.reconfig.base,
            self.reconfig.per_chiplet,
            self.reconfig.reload_bytes_per_sec / 1e9
        ));
        tr.note(
            "a switch that only changes arrival pacing (same compiled workload) \
             re-programs nothing and costs nothing",
        );
        tr.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;

    /// The grid compiles 2 drives x 2 packages x up to 3 segments with
    /// the matcher; run it once and share across tests.
    fn grid() -> &'static DriveGrid {
        static GRID: OnceLock<DriveGrid> = OnceLock::new();
        GRID.get_or_init(run)
    }

    #[test]
    fn grid_covers_every_drive_on_both_packages() {
        let g = grid();
        let drives = Drive::builtin();
        assert_eq!(g.outcomes.len(), drives.len() * 2);
        for d in &drives {
            assert_eq!(g.timeline(&d.name).len(), 2, "{}", d.name);
        }
    }

    #[test]
    fn the_headline_timeline_pays_for_its_switches() {
        let g = grid();
        let headline = &g.timeline("cruise-urban-degraded")[0];
        assert_eq!(headline.transitions.len(), 2);
        assert!(
            headline.transitions.iter().all(|t| t.reprogrammed > 0),
            "both switches change the workload"
        );
        assert!(
            headline.total_dropped > 0,
            "mode switching must cost frames on the 6x6"
        );
    }

    #[test]
    fn renders_segments_and_transitions() {
        let text = grid().to_string();
        assert!(text.contains("per-segment steady state"));
        assert!(text.contains("mode-switch re-matching"));
        assert!(text.contains("highway-cruise"));
        assert!(text.contains("urban-dense -> degraded-dropout"));
    }
}
