//! Table II — chiplet arrangements vs monolithic baselines at equal PE
//! budget (9,216 PEs), over the first three (bottleneck) perception
//! stages.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::{PerceptionConfig, StageKind};
use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_sched::{
    baseline_schedule, evaluate, EvalReport, MatcherConfig, Pipelining, Schedule, ThroughputMatcher,
};
use npu_tensor::Dtype;

use crate::text::TextTable;

/// One Table II row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrangementRow {
    /// Hardware arrangement label.
    pub arrangement: String,
    /// Pipelining scheme label.
    pub pipelining: String,
    /// Full evaluation.
    pub report: EvalReport,
}

/// Table II reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// All rows (baselines × pipelining, then the matched 36×256 MCM).
    pub rows: Vec<ArrangementRow>,
}

impl Table2 {
    /// Finds a row.
    pub fn row(&self, arrangement: &str, pipelining: &str) -> Option<&ArrangementRow> {
        self.rows
            .iter()
            .find(|r| r.arrangement == arrangement && r.pipelining == pipelining)
    }

    /// Utilization gain of the MCM over the monolithic baseline
    /// (paper: 2.8×).
    pub fn utilization_gain_vs_monolithic(&self) -> f64 {
        let mcm = self.row("36x256", "matched").expect("mcm row");
        let mono = self.row("1x9216", "stagewise").expect("mono row");
        mcm.report.utilization_used / mono.report.utilization_used
    }

    /// Energy overhead of the MCM vs the monolithic baseline
    /// (paper: +10.9%, from NoP transmission).
    pub fn energy_overhead_vs_monolithic(&self) -> f64 {
        let mcm = self.row("36x256", "matched").expect("mcm row");
        let mono = self.row("1x9216", "stagewise").expect("mono row");
        mcm.report.energy() / mono.report.energy() - 1.0
    }
}

/// Runs all Table II arrangements.
pub fn run() -> Table2 {
    let full = PerceptionConfig::default().build();
    let pipeline = full.bottleneck_stages();
    let model = FittedMaestro::new();
    let mut rows = Vec::new();

    let baselines: [(&str, McmPackage); 3] = [
        ("1x9216", McmPackage::monolithic_9216()),
        ("2x4608", McmPackage::dual_4608()),
        ("4x2304", McmPackage::quad_2304()),
    ];
    for (label, pkg) in &baselines {
        for (pl, pl_label) in [
            (Pipelining::Stagewise, "stagewise"),
            (Pipelining::Layerwise, "layerwise"),
        ] {
            let schedule = baseline_schedule(&pipeline, pkg, pl, &model);
            let report = evaluate(&schedule, pkg, &model, Dtype::Fp16);
            rows.push(ArrangementRow {
                arrangement: label.to_string(),
                pipelining: pl_label.to_string(),
                report,
            });
        }
    }

    // The 36x256 MCM under Algorithm 1, restricted to the first three
    // stages (the trunks quadrant is dropped from the matched schedule).
    let pkg = McmPackage::simba_6x6();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&full, &pkg);
    let three_stage = Schedule {
        stages: outcome
            .schedule
            .stages
            .iter()
            .filter(|s| s.kind != StageKind::Trunks)
            .cloned()
            .collect(),
    };
    let report = evaluate(&three_stage, &pkg, &model, Dtype::Fp16);
    rows.push(ArrangementRow {
        arrangement: "36x256".to_string(),
        pipelining: "matched".to_string(),
        report,
    });

    Table2 { rows }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table II - arrangements at 9,216 PEs (first 3 stages)",
            &[
                "arrangement",
                "pipelining",
                "E2E[s]",
                "Pipe[s]",
                "E[J]",
                "EDP[ms*J]",
                "Util[%]",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.arrangement.clone(),
                r.pipelining.clone(),
                format!("{:.2}", r.report.e2e.as_secs()),
                format!("{:.2}", r.report.pipe.as_secs()),
                format!("{:.2}", r.report.energy().as_joules()),
                format!("{:.0}", r.report.edp().as_millijoule_millis()),
                format!("{:.2}", r.report.utilization_used * 100.0),
            ]);
        }
        t.note(format!(
            "MCM utilization gain over monolithic: {:.2}x (paper: 2.8x)",
            self.utilization_gain_vs_monolithic()
        ));
        t.note(format!(
            "MCM energy overhead vs monolithic: {:+.1}% (paper: +10.9%, NoP)",
            self.energy_overhead_vs_monolithic() * 100.0
        ));
        t.note(
            "paper row references: 1x9216 pipe 1.8 s util 19.11%; 4x2304 \
             stagewise pipe 0.67 s util 31.13%; 36x256 pipe 0.09 s util 54.19%",
        );
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_matches_paper_band() {
        let t = run();
        let mono = t.row("1x9216", "stagewise").unwrap();
        // Paper: E2E = pipe = 1.8 s, utilization 19.11%.
        assert!(
            (1.2..2.2).contains(&mono.report.e2e.as_secs()),
            "{}",
            mono.report.e2e
        );
        assert!(
            (0.12..0.30).contains(&mono.report.utilization_used),
            "{}",
            mono.report.utilization_used
        );
    }

    #[test]
    fn mcm_wins_pipe_and_utilization() {
        let t = run();
        let mcm = t.row("36x256", "matched").unwrap();
        // Paper: 0.09 s pipe.
        assert!(
            (0.075..0.11).contains(&mcm.report.pipe.as_secs()),
            "{}",
            mcm.report.pipe
        );
        for r in &t.rows {
            if r.arrangement != "36x256" {
                assert!(mcm.report.pipe < r.report.pipe, "{}", r.arrangement);
                assert!(
                    mcm.report.utilization_used > r.report.utilization_used,
                    "{}",
                    r.arrangement
                );
            }
        }
        assert!(t.utilization_gain_vs_monolithic() > 1.4);
    }

    #[test]
    fn pipe_improves_with_chip_count() {
        let t = run();
        for pl in ["stagewise", "layerwise"] {
            let p1 = t.row("1x9216", pl).unwrap().report.pipe;
            let p2 = t.row("2x4608", pl).unwrap().report.pipe;
            let p4 = t.row("4x2304", pl).unwrap().report.pipe;
            assert!(p2 <= p1, "{pl}");
            assert!(p4 <= p2, "{pl}");
        }
    }

    #[test]
    fn mcm_pays_nop_energy_overhead() {
        let t = run();
        let overhead = t.energy_overhead_vs_monolithic();
        // Paper: +10.9%. Ours is NoP-driven and positive, same order.
        assert!((0.0..0.25).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn mcm_has_best_edp() {
        let t = run();
        let mcm = t.row("36x256", "matched").unwrap();
        for r in &t.rows {
            if r.arrangement != "36x256" {
                assert!(
                    mcm.report.edp().as_joule_secs() < r.report.edp().as_joule_secs(),
                    "{} {}",
                    r.arrangement,
                    r.pipelining
                );
            }
        }
    }
}
