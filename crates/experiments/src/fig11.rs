//! Fig. 11 — lane trunk latency/energy under context-aware computing.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::models::lane::LaneConfig;
use npu_maestro::{Accelerator, FittedMaestro};
use npu_sched::context::{lane_context_sweep, max_feasible_retention, ContextPoint};
use npu_tensor::Seconds;

use crate::text::{ms, TextTable};

/// Fig. 11 reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11 {
    /// Sweep points (100% → 10% retained context).
    pub points: Vec<ContextPoint>,
    /// The pipelining-latency threshold (dashed line; paper: 82 ms).
    pub constraint: Seconds,
    /// Largest feasible retention percentage (paper: ~60%).
    pub max_feasible_pct: f64,
}

/// Runs the context sweep.
pub fn run() -> Fig11 {
    let model = FittedMaestro::new();
    let acc = Accelerator::shidiannao_like(256);
    let points = lane_context_sweep(&LaneConfig::default(), &model, &acc);
    let constraint = Seconds::from_millis(82.0);
    let max_feasible_pct =
        max_feasible_retention(&points, constraint).expect("low retentions feasible");
    Fig11 {
        points,
        constraint,
        max_feasible_pct,
    }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Fig. 11 - lane trunk under context-aware computing",
            &["context[%]", "lat[ms]", "E[mJ]", "meets 82 ms"],
        );
        for p in &self.points {
            t.row(vec![
                format!("{:.0}", p.retained_pct),
                ms(p.latency),
                format!("{:.2}", p.energy.as_millijoules()),
                (p.latency <= self.constraint).to_string(),
            ]);
        }
        t.note(format!(
            "max feasible retention: {:.0}% (paper: around 60%)",
            self.max_feasible_pct
        ));
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn about_60pct_meets_the_constraint() {
        let r = run();
        assert!(
            (50.0..=75.0).contains(&r.max_feasible_pct),
            "{}",
            r.max_feasible_pct
        );
        // Full context violates it (the paper's motivating observation).
        assert!(r.points[0].latency > r.constraint);
    }

    #[test]
    fn sweep_has_paper_x_axis() {
        let r = run();
        let pcts: Vec<f64> = r.points.iter().map(|p| p.retained_pct).collect();
        assert_eq!(pcts, vec![100.0, 90.0, 75.0, 60.0, 50.0, 40.0, 25.0, 10.0]);
    }
}
