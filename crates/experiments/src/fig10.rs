//! Fig. 10 — Algorithm 1 scaling to two active NPUs (72 chiplets).
//!
//! The paper doubles the package (2 × 6×6 Simba MCMs) and lets the
//! algorithm keep attacking the bottleneck: T_QKV sharding extends 2→4,
//! T_FFN reaches frame granularity (12 chiplets), FE+BFPN splits into two
//! pipeline sub-stages, S_QKV splits in two — halving the pipelining
//! latency to ≈41 ms.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::{PerceptionConfig, StageKind};
use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_sched::{MatchStep, MatcherConfig, ThroughputMatcher};
use npu_tensor::Seconds;

use crate::text::TextTable;

/// Fig. 10 reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// The algorithm's step trace on the 72-chiplet package.
    pub trace: Vec<MatchStep>,
    /// Final pipelining latency (paper: 41.1 ms).
    pub final_pipe: Seconds,
    /// The 36-chiplet reference pipelining latency (paper: ~82-87 ms).
    pub single_npu_pipe: Seconds,
    /// T_FUSE FFN shard count at exhaustion (paper: 12 — one frame per
    /// chiplet).
    pub t_ffn_parts: u64,
    /// T_FUSE QKV shard count (paper: 4).
    pub t_qkv_parts: u64,
    /// S_FUSE QKV shard count (paper: 2).
    pub s_qkv_parts: u64,
    /// Whether FE+BFPN was split into two pipeline sub-stages (paper: yes).
    pub fe_split: bool,
}

/// Runs the minimizing matcher on the dual-NPU package.
pub fn run() -> Fig10 {
    let pipeline = PerceptionConfig::default().build();
    let model = FittedMaestro::new();

    let single = ThroughputMatcher::new(&model, MatcherConfig::default())
        .match_throughput(&pipeline, &McmPackage::simba_6x6());

    let cfg = MatcherConfig {
        allow_fe_split: true,
        ..MatcherConfig::default()
    };
    let dual =
        ThroughputMatcher::new(&model, cfg).minimize(&pipeline, &McmPackage::dual_npu_12x6());

    let parts = |stage: StageKind, layer: &str| -> u64 {
        dual.schedule
            .stage(stage)
            .and_then(|s| {
                s.models[0]
                    .layers
                    .iter()
                    .find(|lp| lp.source.name() == layer)
                    .map(|lp| lp.parts())
            })
            .unwrap_or(0)
    };
    let fe_split = dual
        .schedule
        .stage(StageKind::FeatureExtraction)
        .map(|s| s.models.iter().any(|m| m.chiplets().len() > 1))
        .unwrap_or(false);

    Fig10 {
        final_pipe: dual.report.pipe,
        single_npu_pipe: single.report.pipe,
        t_ffn_parts: parts(StageKind::TemporalFusion, "t_fuse.ffn"),
        t_qkv_parts: parts(StageKind::TemporalFusion, "t_fuse.qkv"),
        s_qkv_parts: parts(StageKind::SpatialFusion, "s_fuse.qkv"),
        fe_split,
        trace: dual.trace,
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Fig. 10 - Algorithm 1 on two NPUs (72 chiplets)",
            &["step", "action", "pipe[ms]", "free chiplets"],
        );
        for (i, s) in self.trace.iter().enumerate() {
            t.row(vec![
                i.to_string(),
                s.description.clone(),
                format!("{:.2}", s.pipe.as_millis()),
                s.chiplets_remaining.to_string(),
            ]);
        }
        t.note(format!(
            "final pipe {} vs single-NPU {} -> {:.2}x (paper: 41.1 ms vs ~82 ms, ~2x)",
            self.final_pipe,
            self.single_npu_pipe,
            self.single_npu_pipe / self.final_pipe
        ));
        t.note(format!(
            "shards: T_QKV x{} (paper 4), T_FFN x{} (paper 12), S_QKV x{} (paper 2), FE split: {}",
            self.t_qkv_parts, self.t_ffn_parts, self.s_qkv_parts, self.fe_split
        ));
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_npu_roughly_halves_pipe() {
        let r = run();
        let speedup = r.single_npu_pipe / r.final_pipe;
        // Paper: 41.1 ms = ~2x the 36-chiplet latency.
        assert!((1.6..2.4).contains(&speedup), "speedup {speedup:.2}");
        assert!(
            (38.0..56.0).contains(&r.final_pipe.as_millis()),
            "final pipe {}",
            r.final_pipe
        );
    }

    #[test]
    fn paper_sharding_moves_are_taken() {
        let r = run();
        assert!(r.fe_split, "FE+BFPN must split into two pipeline stages");
        assert!(r.t_qkv_parts >= 3, "T_QKV extends beyond 2 (paper: 4)");
        assert!(
            r.t_ffn_parts >= 10,
            "T_FFN approaches frame granularity (paper: 12), got {}",
            r.t_ffn_parts
        );
        assert!(r.s_qkv_parts >= 2, "S_QKV splits (paper: 2)");
    }

    #[test]
    fn trace_pipe_is_monotone_after_matching() {
        let r = run();
        let pipes: Vec<f64> = r.trace.iter().map(|s| s.pipe.as_secs()).collect();
        // The minimize phase only accepts improving steps; overall the
        // last trace entry is the minimum.
        let last = *pipes.last().unwrap();
        assert!(last <= pipes[0]);
        assert!((last - r.final_pipe.as_secs()).abs() < 1e-9);
    }
}
