//! Long-timeline drive workbench: the headline cruise → urban → degraded
//! sequence stretched to minute-scale legs, plus a tail-resolution
//! comparison between the short sweep window and the long one.
//!
//! This is the workload class the ISSUE 8 engine rebuild targets: a
//! minutes-long leg holds thousands of frames, but the engine's memory
//! follows the handful of frames actually in flight, so the timeline
//! costs events, not frames. The second table shows why long windows
//! matter statistically too — at `SWEEP_FRAMES` (24) the trimmed window
//! leaves p99 collapsed onto the window maximum; at `TAIL_SWEEP_FRAMES`
//! (512) the upper tails get a real rank of their own.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_mcm::McmPackage;
use npu_scenario::{
    evaluate_point, simulate_drive, Drive, DriveOutcome, Scenario, ScenarioPoint, SWEEP_FRAMES,
    TAIL_SWEEP_FRAMES,
};
use npu_tensor::Seconds;

use crate::text::{ms, TextTable};

/// Seconds per leg of the long timeline: one minute of 30 FPS video per
/// mode (1 800 frames), three modes end to end.
pub const LEG_SECS: f64 = 60.0;

/// The long-timeline results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveLong {
    /// The reconfiguration model pricing the two mode switches.
    pub reconfig: ReconfigModel,
    /// Seconds per leg.
    pub leg: Seconds,
    /// The minute-legged timeline on the paper's 6×6 package.
    pub outcome: DriveOutcome,
    /// Urban-dense steady state at the short (golden) sweep window.
    pub short_window: ScenarioPoint,
    /// The same scenario at the tail-resolving window.
    pub long_window: ScenarioPoint,
}

impl DriveLong {
    /// True when the long window separates p99 from the window maximum —
    /// the resolution the 24-frame window cannot provide.
    pub fn tails_resolved(&self) -> bool {
        self.long_window.tails.p99 < self.long_window.max_latency
    }
}

/// Runs the minute-legged headline timeline on the paper's 6×6 package
/// and re-measures the urban-dense family at both sweep windows.
pub fn run() -> DriveLong {
    let model = FittedMaestro::new();
    let pkg = McmPackage::simba_6x6();
    let reconfig = ReconfigModel::default();
    let leg = Seconds::new(LEG_SECS);
    let drive = Drive::cruise_urban_degraded_scaled(leg);
    let outcome = simulate_drive(&drive, &pkg, &model, &reconfig);
    // The jittered urban family has an actual latency distribution, so
    // window length visibly changes what the upper percentiles resolve.
    let urban = Scenario::builtin()
        .into_iter()
        .find(|s| s.name == "urban-dense")
        .expect("urban-dense is a built-in family");
    let short_window = evaluate_point(&urban, &pkg, &model, SWEEP_FRAMES);
    let long_window = evaluate_point(&urban, &pkg, &model, TAIL_SWEEP_FRAMES);
    DriveLong {
        reconfig,
        leg,
        outcome,
        short_window,
        long_window,
    }
}

impl fmt::Display for DriveLong {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut seg = TextTable::new(
            "Long drive timeline - minute-scale legs (phased DES)",
            &[
                "drive",
                "segment",
                "t0[s]",
                "offered",
                "dropped",
                "DES[ms]",
                "Lat[ms]",
                "p99[ms]",
                "maxLat[ms]",
            ],
        );
        let o = &self.outcome;
        for s in &o.segments {
            seg.row(vec![
                o.drive.clone(),
                s.scenario.clone(),
                format!("{:.1}", s.start.as_secs()),
                s.offered.to_string(),
                s.dropped.to_string(),
                ms(s.des_interval),
                ms(s.mean_latency),
                ms(s.tails.p99),
                ms(s.max_latency),
            ]);
        }
        seg.note(format!(
            "{:.0} s per leg ({} frames end to end) on {}; engine memory \
             follows frames in flight, not frames offered",
            self.leg.as_secs(),
            o.total_offered,
            o.package,
        ));
        seg.fmt(f)?;

        let mut tails = TextTable::new(
            "Window length vs tail resolution (urban-dense, 6x6)",
            &[
                "frames",
                "measured",
                "p50[ms]",
                "p95[ms]",
                "p99[ms]",
                "p99.9[ms]",
                "maxLat[ms]",
            ],
        );
        for (frames, p) in [
            (SWEEP_FRAMES, &self.short_window),
            (TAIL_SWEEP_FRAMES, &self.long_window),
        ] {
            tails.row(vec![
                frames.to_string(),
                p.scenario.clone(),
                ms(p.tails.p50),
                ms(p.tails.p95),
                ms(p.tails.p99),
                ms(p.tails.p999),
                ms(p.max_latency),
            ]);
        }
        tails.note(
            "at 24 frames the trimmed window pins every upper percentile to \
             the window max; 512 frames give p99 a real rank",
        );
        tails.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;

    /// The run compiles three segments with the matcher and pushes a
    /// minute of frames per leg; run once, share across tests.
    fn result() -> &'static DriveLong {
        static RESULT: OnceLock<DriveLong> = OnceLock::new();
        RESULT.get_or_init(run)
    }

    #[test]
    fn minute_legs_offer_minutes_of_frames() {
        let r = result();
        assert_eq!(r.outcome.segments.len(), 3);
        // Three 60 s legs at 30 FPS (cruise/degraded) and jittered urban:
        // thousands of frames end to end, with both switches paid.
        assert!(
            r.outcome.total_offered > 5_000,
            "got {}",
            r.outcome.total_offered
        );
        assert_eq!(r.outcome.transitions.len(), 2);
        assert!((r.outcome.duration.as_secs() - 3.0 * LEG_SECS).abs() < 1e-9);
    }

    #[test]
    fn long_window_resolves_the_tails() {
        let r = result();
        // The short (golden) window cannot separate p99 from the max …
        assert_eq!(
            r.short_window.tails.p99.as_secs().to_bits(),
            r.short_window.max_latency.as_secs().to_bits(),
            "24-frame window: p99 degenerates to the max"
        );
        // … the 512-frame window can.
        assert!(
            r.tails_resolved(),
            "512-frame window: p99 {} must sit below max {}",
            r.long_window.tails.p99,
            r.long_window.max_latency
        );
        assert!(r.long_window.tails.p50 <= r.long_window.tails.p99);
    }

    #[test]
    fn renders_both_tables() {
        let text = result().to_string();
        assert!(text.contains("minute-scale legs"));
        assert!(text.contains("tail resolution"));
        assert!(text.contains("urban-dense"));
    }
}
