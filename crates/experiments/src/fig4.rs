//! Fig. 4 — per-layer affinities toward OS vs WS dataflows.
//!
//! `ΔValue = Value_OS − Value_WS`: negative ⇒ OS-affine, positive ⇒
//! WS-affine. The paper's observations: FE+BFPN trades latency (OS) for
//! energy (WS) on every layer; fusion layers are OS-affine in *both*;
//! trunks are mixed (lane fully OS-skewed, detection/occupancy exploitable).

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::models::detection::detection_head;
use npu_dnn::{OpClass, PerceptionConfig, StageKind};
use npu_maestro::{Accelerator, CostModel, FittedMaestro};

use crate::text::TextTable;

/// Per-layer ΔLatency / ΔEnergy entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityRow {
    /// Workload group (`fe`, `fusion`, `trunks`).
    pub group: String,
    /// Layer name.
    pub layer: String,
    /// Operator class.
    pub class: OpClass,
    /// `lat_OS − lat_WS` in ms (negative = OS faster).
    pub d_latency_ms: f64,
    /// `energy_OS − energy_WS` in mJ (negative = OS more efficient).
    pub d_energy_mj: f64,
}

/// Fig. 4 reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// All per-layer rows.
    pub rows: Vec<AffinityRow>,
}

impl Fig4 {
    /// Rows of one group.
    pub fn group(&self, g: &str) -> Vec<&AffinityRow> {
        self.rows.iter().filter(|r| r.group == g).collect()
    }
}

/// Runs the Fig. 4 sweep.
pub fn run() -> Fig4 {
    let cfg = PerceptionConfig::default();
    let pipeline = cfg.build();
    let model = FittedMaestro::new();
    let os = Accelerator::shidiannao_like(256);
    let ws = Accelerator::nvdla_like(256);

    let mut rows = Vec::new();
    let mut sweep = |group: &str, graph: &npu_dnn::Graph| {
        for (_, layer) in graph.iter() {
            if layer.class() == OpClass::Memory {
                continue; // data movement: identical on both dataflows
            }
            let c_os = model.layer_cost(layer, &os);
            let c_ws = model.layer_cost(layer, &ws);
            rows.push(AffinityRow {
                group: group.to_string(),
                layer: layer.name().to_string(),
                class: layer.class(),
                d_latency_ms: c_os.latency.as_millis() - c_ws.latency.as_millis(),
                d_energy_mj: c_os.energy.as_millijoules() - c_ws.energy.as_millijoules(),
            });
        }
    };

    sweep(
        "fe",
        pipeline.stage(StageKind::FeatureExtraction).models()[0].graph(),
    );
    sweep(
        "fusion",
        pipeline.stage(StageKind::SpatialFusion).models()[0].graph(),
    );
    sweep(
        "fusion",
        pipeline.stage(StageKind::TemporalFusion).models()[0].graph(),
    );
    let trunks = pipeline.stage(StageKind::Trunks);
    sweep("trunks", trunks.models()[0].graph());
    sweep("trunks", trunks.models()[1].graph());
    let det = detection_head("det", &cfg.detection);
    sweep("trunks", &det);

    Fig4 { rows }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Fig. 4 - per-layer OS/WS affinities (negative = OS-affine)",
            &["group", "layer", "class", "dLat[ms]", "dE[mJ]"],
        );
        for r in &self.rows {
            t.row(vec![
                r.group.clone(),
                r.layer.clone(),
                r.class.to_string(),
                format!("{:+.2}", r.d_latency_ms),
                format!("{:+.3}", r.d_energy_mj),
            ]);
        }
        let fusion_os = self
            .rows
            .iter()
            .filter(|r| r.group == "fusion")
            .all(|r| r.d_latency_ms < 0.0 && r.d_energy_mj < 0.0);
        t.note(format!(
            "fusion layers OS-affine in latency AND energy: {fusion_os} (paper: yes)"
        ));
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use npu_tensor::float;

    use super::*;

    #[test]
    fn fe_trades_latency_for_energy() {
        let r = run();
        for row in r.group("fe") {
            assert!(row.d_latency_ms < 0.0, "{} lat", row.layer);
            assert!(row.d_energy_mj > 0.0, "{} energy", row.layer);
        }
    }

    #[test]
    fn fusion_layers_fully_os_affine() {
        let r = run();
        let fusion = r.group("fusion");
        assert!(!fusion.is_empty());
        for row in fusion {
            assert!(row.d_latency_ms < 0.0, "{}", row.layer);
            assert!(row.d_energy_mj < 0.0, "{}", row.layer);
        }
    }

    #[test]
    fn lane_is_os_skewed_but_trunks_expose_tradeoffs() {
        let r = run();
        let trunks = r.group("trunks");
        // Lane (attention) rows: fully OS-affine.
        for row in trunks.iter().filter(|r| r.layer.starts_with("lane")) {
            assert!(
                row.d_latency_ms < 0.0 && row.d_energy_mj < 0.0,
                "{}",
                row.layer
            );
        }
        // Conv-class trunk layers offer the WS energy trade-off.
        let tradeoff = trunks
            .iter()
            .filter(|r| matches!(r.class, OpClass::Conv | OpClass::Deconv))
            .all(|r| r.d_energy_mj > 0.0 && r.d_latency_ms < 0.0);
        assert!(tradeoff);
    }

    #[test]
    fn fusion_bottleneck_is_confined_to_few_layers() {
        // Paper §III-B: fusion bottlenecks are confined to a small number
        // of layers -> the top-2 fusion layers dominate |dLat|.
        let r = run();
        let mut fusion: Vec<f64> = r
            .group("fusion")
            .iter()
            .map(|row| row.d_latency_ms.abs())
            .collect();
        float::total_sort_desc_by_key(&mut fusion, |&d| d);
        let total: f64 = fusion.iter().sum();
        let top2: f64 = fusion.iter().take(2).sum();
        assert!(top2 / total > 0.5, "top2 {:.2} of {:.2}", top2, total);
    }
}
