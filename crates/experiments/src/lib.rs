//! Regeneration of every table and figure in the paper's evaluation.
//!
//! One module per experiment; each exposes a `run()` returning a typed
//! result that renders itself as an aligned text table with the paper's
//! reference values alongside our measured ones. The `repro` binary in
//! `npu-bench` and the criterion benches drive these.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Fig. 3 — per-component OS/WS breakdown | [`fig3`] |
//! | Fig. 4 — per-layer OS/WS affinities | [`fig4`] |
//! | Figs. 5–8 — stage mappings on the 6×6 MCM | [`fig5to8`] |
//! | Fig. 9 — NoP data-movement costs | [`fig9`] |
//! | Fig. 10 — scaling to two NPUs (72 chiplets) | [`fig10`] |
//! | Fig. 11 — context-aware lane computing | [`fig11`] |
//! | Table I — heterogeneous trunk integration | [`table1`] |
//! | Table II — chiplet arrangements vs baselines | [`table2`] |
//! | Table III — occupancy upsampling ablation | [`table3`] |
//! | Ablations (scheduler / dataflow / cost model) | [`ablations`] |
//! | Extension sweeps (scaling, failure injection) | [`ext_sweeps`] |
//! | Scenario workbench (driving workload envelope) | [`scenarios`] |
//! | Scenario-aware package DSE (cheapest feasible package) | [`scenario_dse`] |
//! | Drive timelines (online mode switching, re-match + drops) | [`drive`] |
//! | Long drive timeline (minute-scale legs, tail resolution) | [`drive_long`] |
//! | Tail-latency DSE (p99 SLO vs mean package choice) | [`tails`] |
//! | Fleet serving DSE (multi-tenant package mix, preemption) | [`fleet`] |
//! | Static analysis (determinism & panic-safety lint report) | [`lint`] |
//!
//! # Examples
//!
//! ```
//! let fig3 = npu_experiments::fig3::run();
//! // OS is ~6.85x faster across the perception workloads (paper §III-A).
//! assert!(fig3.os_speedup > 5.0);
//! ```

pub mod ablations;
pub mod drive;
pub mod drive_long;
pub mod ext_sweeps;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5to8;
pub mod fig9;
pub mod fleet;
pub mod lint;
pub mod scenario_dse;
pub mod scenarios;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod tails;
mod text;

pub use text::TextTable;

/// Every experiment rendered one after another (the full reproduction).
///
/// The artifacts are independent, so they are generated concurrently on
/// the `npu-par` worker pool (`repro --jobs N` controls the width) and
/// concatenated in the paper's section order — the rendered report is
/// byte-identical to the serial run.
pub fn run_all() -> String {
    let sections: [fn() -> String; 18] = [
        || fig3::run().to_string(),
        || fig4::run().to_string(),
        || fig5to8::run().to_string(),
        || fig9::run().to_string(),
        || table1::run().to_string(),
        || table2::run().to_string(),
        || fig10::run().to_string(),
        || table3::run().to_string(),
        || fig11::run().to_string(),
        || ablations::run().to_string(),
        || ext_sweeps::run().to_string(),
        || scenarios::run().to_string(),
        || scenario_dse::run().to_string(),
        || drive::run().to_string(),
        || drive_long::run().to_string(),
        || tails::run().to_string(),
        || fleet::run().to_string(),
        || lint::run().to_string(),
    ];
    npu_par::par_map(&sections, |section| section()).concat()
}
