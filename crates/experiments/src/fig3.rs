//! Fig. 3 — latency and energy breakdown per perception component on
//! Shidiannao-like (OS) and NVDLA-like (WS) single 256-PE chiplets.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::models::detection::detection_head;
use npu_dnn::{PerceptionConfig, StageKind};
use npu_maestro::{calib, graph_cost, Accelerator, FittedMaestro};
use npu_tensor::{Joules, Seconds};

use crate::text::{ms, TextTable};

/// One perception component's OS/WS costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentRow {
    /// Component label.
    pub component: String,
    /// Latency on the OS chiplet.
    pub os_latency: Seconds,
    /// Latency on the WS chiplet.
    pub ws_latency: Seconds,
    /// Energy on the OS chiplet.
    pub os_energy: Joules,
    /// Energy on the WS chiplet.
    pub ws_energy: Joules,
}

/// Fig. 3 reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// Per-component rows (FE per camera, fusion stages, trunks).
    pub rows: Vec<ComponentRow>,
    /// Time-weighted OS-over-WS speedup (paper: 6.85×).
    pub os_speedup: f64,
    /// WS energy gain including fusion (paper: 1.2×).
    pub ws_energy_gain: f64,
    /// WS energy gain excluding fusion (paper: 1.55×).
    pub ws_energy_gain_no_fusion: f64,
    /// Latency share of S_FUSE on the OS chiplet (paper: 25–28%).
    pub s_fuse_share: f64,
    /// Latency share of T_FUSE on the OS chiplet (paper: 52–54%).
    pub t_fuse_share: f64,
}

/// Runs the Fig. 3 breakdown.
pub fn run() -> Fig3 {
    let cfg = PerceptionConfig::default();
    let pipeline = cfg.build();
    let model = FittedMaestro::new();
    let os = Accelerator::shidiannao_like(256);
    let ws = Accelerator::nvdla_like(256);

    let mut rows = Vec::new();
    let mut add = |label: &str, graph: &npu_dnn::Graph| {
        let osc = graph_cost(&model, graph, &os);
        let wsc = graph_cost(&model, graph, &ws);
        rows.push(ComponentRow {
            component: label.to_string(),
            os_latency: osc.serial_latency(),
            ws_latency: wsc.serial_latency(),
            os_energy: osc.energy(),
            ws_energy: wsc.energy(),
        });
    };

    // FE+BFPN is reported per camera ("to be multiplied by 8", §III-A).
    add(
        "FE+BFPN (1 cam)",
        pipeline.stage(StageKind::FeatureExtraction).models()[0].graph(),
    );
    add(
        "S_FUSE",
        pipeline.stage(StageKind::SpatialFusion).models()[0].graph(),
    );
    add(
        "T_FUSE",
        pipeline.stage(StageKind::TemporalFusion).models()[0].graph(),
    );
    // Trunks: occupancy + lane + detectors serially on one chiplet.
    let trunk_stage = pipeline.stage(StageKind::Trunks);
    let occ = trunk_stage.models()[0].graph();
    let lane = trunk_stage.models()[1].graph();
    let det = detection_head("det", &cfg.detection);
    let osc: Vec<_> = [occ, lane, &det]
        .iter()
        .map(|g| graph_cost(&model, g, &os))
        .collect();
    let wsc: Vec<_> = [occ, lane, &det]
        .iter()
        .map(|g| graph_cost(&model, g, &ws))
        .collect();
    let dets = cfg.detectors as f64;
    let scale = |i: usize| if i == 2 { dets } else { 1.0 };
    rows.push(ComponentRow {
        component: "TR (trunks)".to_string(),
        os_latency: osc
            .iter()
            .enumerate()
            .map(|(i, c)| c.serial_latency() * scale(i))
            .sum(),
        ws_latency: wsc
            .iter()
            .enumerate()
            .map(|(i, c)| c.serial_latency() * scale(i))
            .sum(),
        os_energy: osc
            .iter()
            .enumerate()
            .map(|(i, c)| c.energy() * scale(i))
            .sum(),
        ws_energy: wsc
            .iter()
            .enumerate()
            .map(|(i, c)| c.energy() * scale(i))
            .sum(),
    });

    let os_total: Seconds = rows.iter().map(|r| r.os_latency).sum();
    let ws_total: Seconds = rows.iter().map(|r| r.ws_latency).sum();
    let os_e: Joules = rows.iter().map(|r| r.os_energy).sum();
    let ws_e: Joules = rows.iter().map(|r| r.ws_energy).sum();
    let no_fusion = |v: &[ComponentRow]| -> (Joules, Joules) {
        let filt: Vec<&ComponentRow> = v.iter().filter(|r| !r.component.contains("FUSE")).collect();
        (
            filt.iter().map(|r| r.os_energy).sum(),
            filt.iter().map(|r| r.ws_energy).sum(),
        )
    };
    let (os_nf, ws_nf) = no_fusion(&rows);

    Fig3 {
        os_speedup: ws_total / os_total,
        ws_energy_gain: os_e / ws_e,
        ws_energy_gain_no_fusion: os_nf / ws_nf,
        s_fuse_share: rows[1].os_latency / os_total,
        t_fuse_share: rows[2].os_latency / os_total,
        rows,
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Fig. 3 - component breakdown on one 256-PE chiplet (OS vs WS)",
            &[
                "component",
                "OS lat[ms]",
                "WS lat[ms]",
                "OS E[mJ]",
                "WS E[mJ]",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.component.clone(),
                ms(r.os_latency),
                ms(r.ws_latency),
                format!("{:.1}", r.os_energy.as_millijoules()),
                format!("{:.1}", r.ws_energy.as_millijoules()),
            ]);
        }
        t.note(format!(
            "OS speedup {:.2}x (paper {:.2}x); WS energy gain {:.2}x (paper {:.1}x), excl. fusion {:.2}x (paper {:.2}x)",
            self.os_speedup,
            calib::PAPER_OS_WS_SPEEDUP,
            self.ws_energy_gain,
            calib::PAPER_WS_ENERGY_GAIN,
            self.ws_energy_gain_no_fusion,
            calib::PAPER_WS_ENERGY_GAIN_NO_FUSION,
        ));
        t.note(format!(
            "fusion latency shares: S_FUSE {:.0}% (paper 25-28%), T_FUSE {:.0}% (paper 52-54%)",
            self.s_fuse_share * 100.0,
            self.t_fuse_share * 100.0
        ));
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_reproduces_paper_shapes() {
        let r = run();
        assert_eq!(r.rows.len(), 4);
        // OS speedup in the paper's band.
        assert!((5.5..8.0).contains(&r.os_speedup), "{}", r.os_speedup);
        // WS energy gains bracket the paper's 1.2x / 1.55x.
        assert!(
            (1.05..1.4).contains(&r.ws_energy_gain),
            "{}",
            r.ws_energy_gain
        );
        assert!(
            (1.35..1.6).contains(&r.ws_energy_gain_no_fusion),
            "{}",
            r.ws_energy_gain_no_fusion
        );
        // Fusion shares.
        assert!((0.22..0.32).contains(&r.s_fuse_share), "{}", r.s_fuse_share);
        assert!((0.46..0.60).contains(&r.t_fuse_share), "{}", r.t_fuse_share);
    }

    #[test]
    fn every_component_is_os_latency_affine() {
        for row in run().rows {
            assert!(row.os_latency < row.ws_latency, "{}", row.component);
        }
    }
}
