//! The `repro lint` artifact: the workspace determinism & panic-safety
//! report, golden-pinned.
//!
//! Runs the [`npu_lint`] rule engine (D001–D006 plus allow hygiene)
//! over every workspace crate's `src/` tree and renders the result in
//! the standard artifact formats — an aligned text table and a typed
//! JSON document. CI gates on the standalone `npu-lint` binary; this
//! artifact exists so the *content* of the report (the rule table, the
//! audited allow inventory, the zero-findings state) is pinned by the
//! golden-file harness like every other artifact: a new hazard or a
//! new suppression shows up as a golden diff, not just a CI failure.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::text::TextTable;

/// One rule of the engine, as reported.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleRow {
    /// Rule code (`D001`...).
    pub code: String,
    /// Kebab-case rule name.
    pub name: String,
    /// Findings that survived allows, workspace-wide.
    pub findings: usize,
    /// Justified allow directives for this rule, workspace-wide.
    pub allows: usize,
}

/// One surviving finding (empty on a clean workspace).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FindingRow {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// One justified, load-bearing allow directive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllowRow {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// The full lint report of the workspace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Source files scanned (every crate's `src/` tree).
    pub files_scanned: usize,
    /// True when `findings` is empty.
    pub clean: bool,
    /// Per-rule finding/allow counts, rule order.
    pub rules: Vec<RuleRow>,
    /// Surviving findings (file, span, message) — empty when clean.
    pub findings: Vec<FindingRow>,
    /// The audited allow inventory.
    pub allows: Vec<AllowRow>,
}

/// Lints the workspace and assembles the artifact.
pub fn run() -> LintReport {
    let report =
        npu_lint::lint_workspace(&npu_lint::workspace_root()).expect("workspace tree readable");
    let rules = npu_lint::RULES
        .iter()
        .map(|r| RuleRow {
            code: r.code.to_string(),
            name: r.name.to_string(),
            findings: report.findings.iter().filter(|f| f.rule == r.code).count(),
            allows: report.allows.iter().filter(|a| a.rule == r.code).count(),
        })
        .collect();
    LintReport {
        files_scanned: report.files.len(),
        clean: report.is_clean(),
        rules,
        findings: report
            .findings
            .iter()
            .map(|f| FindingRow {
                rule: f.rule.to_string(),
                file: f.file.clone(),
                line: f.line,
                col: f.col,
                message: f.message.clone(),
            })
            .collect(),
        allows: report
            .allows
            .iter()
            .map(|a| AllowRow {
                rule: a.rule.clone(),
                file: a.file.clone(),
                line: a.line,
                reason: a.reason.clone(),
            })
            .collect(),
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Static analysis — workspace determinism & panic-safety (npu-lint)",
            &["rule", "name", "findings", "allows"],
        );
        for r in &self.rules {
            t.row(vec![
                r.code.clone(),
                r.name.clone(),
                r.findings.to_string(),
                r.allows.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        for fi in &self.findings {
            writeln!(
                f,
                "FINDING {} {}:{}:{} {}",
                fi.rule, fi.file, fi.line, fi.col, fi.message
            )?;
        }
        for a in &self.allows {
            writeln!(f, "allow {} {}:{} — {}", a.rule, a.file, a.line, a.reason)?;
        }
        writeln!(
            f,
            "{} files scanned; {}",
            self.files_scanned,
            if self.clean {
                "workspace is lint-clean"
            } else {
                "WORKSPACE HAS FINDINGS"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_artifact_is_clean() {
        let r = run();
        assert!(r.clean, "findings: {:?}", r.findings);
        assert!(r.findings.is_empty());
        assert!(
            r.files_scanned > 90,
            "walker lost crates: {}",
            r.files_scanned
        );
    }

    #[test]
    fn rule_counts_are_consistent() {
        let r = run();
        let allows: usize = r.rules.iter().map(|x| x.allows).sum();
        assert_eq!(allows, r.allows.len());
        let findings: usize = r.rules.iter().map(|x| x.findings).sum();
        assert_eq!(findings, r.findings.len());
        // The audited inventory: 5 order-insensitive hash containers +
        // 1 debug env gate (see the workspace_clean meta-test).
        let d001 = r.rules.iter().find(|x| x.code == "D001").unwrap();
        assert_eq!(d001.allows, 5);
        let d005 = r.rules.iter().find(|x| x.code == "D005").unwrap();
        assert_eq!(d005.allows, 1);
    }

    #[test]
    fn text_rendering_names_every_rule() {
        let text = run().to_string();
        for code in ["D001", "D002", "D003", "D004", "D005", "D006"] {
            assert!(text.contains(code), "missing {code}:\n{text}");
        }
        assert!(text.contains("lint-clean"));
    }
}
