//! Scenario-aware package DSE: the cheapest package serving the whole
//! driving envelope (the ROADMAP item ISSUE 4 ships).
//!
//! The paper sizes its 6×6 package against one fixed workload. This
//! artifact asks the fleet question instead: sweeping 256-PE OS package
//! geometries from 4×4 up to the dual-NPU 12×6 against **all** built-in
//! scenario families, which is the cheapest package (fewest chiplets —
//! the silicon-cost proxy) whose DES-measured steady interval meets
//! every family's latency target? This is one [`Study`] query — a
//! package × scenario [`Grid`] with a latency-target [`Constraint`] and
//! a minimize-chiplets selection — where each legacy sweep would have
//! been a sixth bespoke free function.

use serde::{Deserialize, Serialize};

use npu_maestro::{Accelerator, FittedMaestro};
use npu_mcm::McmPackage;
use npu_noc::Mesh2d;
use npu_scenario::{evaluate_point, Scenario, ScenarioPoint, SWEEP_FRAMES};
use npu_study::{Axis, Constraint, Grid, Study, StudyReport};
use npu_tensor::{float, Joules, Seconds};

use crate::text::{ms, TextTable};

/// The swept package geometries, smallest first: 4×4 up to the paper's
/// 6×6 and on to the dual-NPU 12×6.
pub const GEOMETRIES: [(u32, u32); 6] = [(4, 4), (5, 5), (6, 6), (8, 6), (9, 6), (12, 6)];

/// One (package, scenario family) cell of the DSE grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// Package name (`os256-WxH`).
    pub package: String,
    /// Chiplets in the package (the cost proxy).
    pub chiplets: u64,
    /// Scenario family name.
    pub scenario: String,
    /// DES-measured steady interval under the family's arrivals.
    pub des_interval: Seconds,
    /// The family's steady-interval latency target.
    pub target: Seconds,
    /// Whether the target is met (`des_interval <= target`).
    pub met: bool,
}

/// Per-package aggregation across all families.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageVerdict {
    /// Package name.
    pub package: String,
    /// Chiplets in the package.
    pub chiplets: u64,
    /// Families whose latency target the package meets.
    pub families_met: usize,
    /// Whether every family's target is met.
    pub feasible: bool,
    /// The family closest to (or furthest past) its target.
    pub worst_family: String,
    /// `des_interval / target` of the worst family (> 1 = violated).
    pub worst_ratio: f64,
    /// Mean analytic energy per frame across the families.
    pub mean_energy: Joules,
}

/// The scenario-aware DSE result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioDse {
    /// DES frames simulated per grid point.
    pub frames: usize,
    /// Scenario families evaluated (name order as swept).
    pub families: Vec<String>,
    /// Every grid cell, package-major.
    pub points: Vec<DsePoint>,
    /// One verdict per package, smallest package first.
    pub verdicts: Vec<PackageVerdict>,
    /// The cheapest feasible package, if any geometry serves the whole
    /// envelope.
    pub cheapest: Option<String>,
}

/// Builds a `w × h` package of 256-PE OS chiplets (shared with the
/// tail-latency DSE, which re-runs the same geometries under a p99 SLO).
pub(crate) fn package(w: u32, h: u32) -> McmPackage {
    McmPackage::from_fn(format!("os256-{w}x{h}"), Mesh2d::new(w, h), |_| {
        Accelerator::shidiannao_like(256)
    })
}

/// Runs the package × scenario study and selects the cheapest feasible
/// package. Deterministic at any `--jobs` count: the grid fans out in
/// input order and the selection folds with first-minimum tie-breaks.
pub fn run() -> StudyReport<ScenarioDse> {
    let families = Scenario::builtin();
    let packages: Vec<McmPackage> = GEOMETRIES.iter().map(|&(w, h)| package(w, h)).collect();
    let model = FittedMaestro::new();

    // Package-major grid: each package's family block is contiguous, so
    // the per-package fold below is a plain `chunks()`.
    let grid =
        Grid::of(Axis::new("package", packages)).cross(Axis::new("scenario", families.clone()));
    let study = Study::new("scenario-dse", grid, &model);
    let run = study.run(|(pkg, scenario), model| {
        let point = evaluate_point(scenario, pkg, model, SWEEP_FRAMES);
        (point, scenario.latency_target())
    });

    // The feasibility layer: a family is served while the DES steady
    // interval stays within its target.
    let target_met = Constraint::new(
        "steady interval within the family target",
        |(point, target): &(ScenarioPoint, Seconds)| point.des_interval <= *target,
    );
    let met = run.feasible(&[target_met]);

    let points: Vec<DsePoint> = run
        .iter()
        .zip(&met)
        .map(|(((_, scenario), (point, target)), &met)| DsePoint {
            package: point.package.clone(),
            chiplets: point.chiplets,
            scenario: scenario.name.clone(),
            des_interval: point.des_interval,
            target: *target,
            met,
        })
        .collect();

    let verdicts: Vec<PackageVerdict> = points
        .chunks(families.len())
        .zip(run.metrics().chunks(families.len()))
        .map(|(block, metrics)| {
            let worst = float::total_max_by_key(block.iter(), |p| {
                p.des_interval.as_secs() / p.target.as_secs()
            })
            .expect("at least one family per package");
            let energy: f64 = metrics.iter().map(|(p, _)| p.energy.as_joules()).sum();
            PackageVerdict {
                package: block[0].package.clone(),
                chiplets: block[0].chiplets,
                families_met: block.iter().filter(|p| p.met).count(),
                feasible: block.iter().all(|p| p.met),
                worst_family: worst.scenario.clone(),
                worst_ratio: worst.des_interval.as_secs() / worst.target.as_secs(),
                mean_energy: Joules::new(energy / families.len() as f64),
            }
        })
        .collect();

    // Cheapest = fewest chiplets among feasible packages; the strict `<`
    // keeps the first (smallest-geometry) winner on ties.
    let cheapest = verdicts
        .iter()
        .filter(|v| v.feasible)
        .fold(None::<&PackageVerdict>, |best, v| match best {
            Some(b) if b.chiplets <= v.chiplets => Some(b),
            _ => Some(v),
        })
        .map(|v| v.package.clone());

    let result = ScenarioDse {
        frames: SWEEP_FRAMES,
        families: families.iter().map(|s| s.name.clone()).collect(),
        points,
        verdicts,
        cheapest,
    };
    let table = render(&result);
    StudyReport::new(result, table)
}

fn render(dse: &ScenarioDse) -> TextTable {
    let mut t = TextTable::new(
        format!(
            "Scenario-aware DSE - cheapest package serving all {} families ({} DES frames)",
            dse.families.len(),
            dse.frames
        ),
        &[
            "package",
            "chiplets",
            "met",
            "feasible",
            "worst family",
            "DES/target",
            "E[J]",
        ],
    );
    for v in &dse.verdicts {
        t.row(vec![
            v.package.clone(),
            v.chiplets.to_string(),
            format!("{}/{}", v.families_met, dse.families.len()),
            if v.feasible { "yes" } else { "no" }.to_string(),
            v.worst_family.clone(),
            format!("{:.2}", v.worst_ratio),
            format!("{:.2}", v.mean_energy.as_joules()),
        ]);
    }
    match &dse.cheapest {
        Some(name) => t.note(format!(
            "cheapest feasible package: {name} — the smallest geometry whose DES \
             steady interval meets every family's latency target"
        )),
        None => t.note("no swept geometry serves the whole scenario envelope"),
    };
    let worst_target = dse
        .points
        .iter()
        .map(|p| p.target)
        .fold(Seconds::new(0.0), Seconds::max);
    t.note(format!(
        "targets: 100 ms perception floor, relaxed to 1.25x the mean arrival \
         interval for arrival-bound families (max swept target: {} ms)",
        ms(worst_target)
    ));
    t
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;

    /// The grid is the most expensive experiment in the suite (42
    /// match-and-simulate points); run it once and share across tests.
    fn report() -> &'static StudyReport<ScenarioDse> {
        static REPORT: OnceLock<StudyReport<ScenarioDse>> = OnceLock::new();
        REPORT.get_or_init(run)
    }

    #[test]
    fn grid_covers_every_package_family_pair() {
        let dse = report().result();
        assert_eq!(dse.points.len(), GEOMETRIES.len() * dse.families.len());
        assert_eq!(dse.verdicts.len(), GEOMETRIES.len());
        // Package-major: the first block is all one package.
        let first = &dse.points[0].package;
        assert!(dse.points[..dse.families.len()]
            .iter()
            .all(|p| &p.package == first));
    }

    #[test]
    fn the_paper_package_is_the_cheapest_feasible() {
        let dse = report().result();
        // The 4x4 and 5x5 packages miss the 100 ms floor (pipe ~169 ms);
        // the paper's 36-chiplet 6x6 is the first geometry serving the
        // whole envelope — the headline of the scenario-aware DSE.
        assert_eq!(dse.cheapest.as_deref(), Some("os256-6x6"));
        let c6 = dse.verdicts.iter().find(|v| v.package == "os256-6x6");
        assert!(c6.unwrap().feasible);
        assert!(!dse.verdicts[0].feasible, "4x4 must miss the floor");
    }

    #[test]
    fn feasible_verdicts_meet_every_family() {
        let report = report();
        for v in &report.result().verdicts {
            assert_eq!(v.feasible, v.families_met == report.result().families.len());
            assert!(v.worst_ratio.is_finite() && v.worst_ratio > 0.0);
            if v.feasible {
                assert!(v.worst_ratio <= 1.0, "{}: {}", v.package, v.worst_ratio);
            }
        }
    }

    #[test]
    fn renders_both_formats_from_one_run() {
        let report = report();
        let text = report.to_string();
        assert!(text.contains("Scenario-aware DSE"));
        assert!(text.contains("os256-6x6"));
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("\"cheapest\""));
        // JSON carries the typed result, not the table rendering.
        assert!(!json.contains("==="));
    }
}
