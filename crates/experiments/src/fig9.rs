//! Fig. 9 — NoP data-movement latency and energy across the first three
//! perception stages under the matched schedule.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::PerceptionConfig;
use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_sched::{MatcherConfig, ThroughputMatcher};
use npu_tensor::{Joules, Seconds};

use crate::text::TextTable;

/// One Fig. 9 bar: a layer workload's aggregated NoP costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NopRow {
    /// Workload label (paper x-axis).
    pub label: String,
    /// NoP transfer latency.
    pub latency: Seconds,
    /// NoP transfer energy.
    pub energy: Joules,
}

/// Fig. 9 reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9 {
    /// The paper's seven workload bars.
    pub rows: Vec<NopRow>,
    /// Max NoP latency / compute pipelining latency: the paper's
    /// observation (iii) — NoP is orders of magnitude below compute.
    pub nop_to_compute_ratio: f64,
}

/// Runs the matched schedule and aggregates NoP costs per workload group.
pub fn run() -> Fig9 {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);

    /// A Fig. 9 bar: label plus the predicate collecting its layers.
    type Group = (&'static str, fn(&str) -> bool);
    let groups: [Group; 7] = [
        ("FE+BFPN", |n| {
            n.starts_with("fe.") || n.starts_with("bfpn.") || n.starts_with("head.")
        }),
        ("S_QKV_Proj", |n| n == "s_fuse.qkv"),
        ("S_ATTN", |n| n.starts_with("s_fuse.attn")),
        ("S_FFN", |n| n == "s_fuse.ffn" || n == "s_fuse.compress"),
        ("T_QKV_Proj", |n| n == "t_fuse.qkv"),
        ("T_ATTN", |n| n.starts_with("t_fuse.attn")),
        ("T_FFN", |n| n == "t_fuse.ffn" || n == "t_fuse.out"),
    ];

    let rows: Vec<NopRow> = groups
        .iter()
        .map(|(label, pred)| {
            let (lat, e) = outcome
                .report
                .nop_by_layer
                .iter()
                .filter(|(name, _, _)| pred(name))
                .fold((Seconds::ZERO, Joules::ZERO), |acc, (_, l, e)| {
                    (acc.0 + *l, acc.1 + *e)
                });
            NopRow {
                label: label.to_string(),
                latency: lat,
                energy: e,
            }
        })
        .collect();

    let max_nop = rows
        .iter()
        .map(|r| r.latency)
        .fold(Seconds::ZERO, Seconds::max);

    Fig9 {
        nop_to_compute_ratio: max_nop / outcome.report.pipe,
        rows,
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Fig. 9 - NoP data movement per workload (matched 6x6 schedule)",
            &["workload", "NoP lat[us]", "NoP E[uJ]"],
        );
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                format!("{:.1}", r.latency.as_micros()),
                format!("{:.1}", r.energy.as_joules() * 1e6),
            ]);
        }
        t.note(format!(
            "max NoP latency is {:.1e} of the compute pipelining latency \
             (paper: at least two orders of magnitude below compute)",
            self.nop_to_compute_ratio
        ));
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_orders_of_magnitude_below_compute() {
        let r = run();
        assert!(
            r.nop_to_compute_ratio < 0.05,
            "ratio {}",
            r.nop_to_compute_ratio
        );
    }

    #[test]
    fn projection_outputs_dominate_nop() {
        // Paper observation (i): large feature-map outputs (QKV
        // projections) have the high transmission costs; (ii) gathering
        // sharded outputs (FFN) raises traffic.
        let r = run();
        let get = |l: &str| {
            r.rows
                .iter()
                .find(|row| row.label == l)
                .map(|row| row.latency)
                .unwrap()
        };
        assert!(get("T_QKV_Proj") > get("T_ATTN"));
        assert!(get("S_FFN") > get("S_ATTN"));
    }

    #[test]
    fn all_seven_bars_present() {
        assert_eq!(run().rows.len(), 7);
    }
}
