//! Minimal aligned text-table rendering.

use std::fmt;

/// A column-aligned text table with a title.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-text note rendered under the table.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "\n=== {} ===", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:>w$}  ", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  * {n}")?;
        }
        Ok(())
    }
}

/// Formats a millisecond quantity.
pub(crate) fn ms(s: npu_tensor::Seconds) -> String {
    format!("{:.2}", s.as_millis())
}

/// Formats a relative delta as a signed percentage.
pub(crate) fn pct(ours: f64, reference: f64) -> String {
    format!("{:+.1}%", (ours / reference - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo", &["a", "metric"]);
        t.row(vec!["x".into(), "1.0".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("a note"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        TextTable::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn pct_signs() {
        assert_eq!(pct(110.0, 100.0), "+10.0%");
        assert_eq!(pct(90.0, 100.0), "-10.0%");
    }
}
