//! Text rendering helpers.
//!
//! The aligned-table type itself now lives in `npu-study` (it is the
//! `StudyReport` rendering surface); it is re-exported here so every
//! experiment module — and downstream users of
//! `npu_experiments::TextTable` — keep their import paths.

pub use npu_study::TextTable;

/// Formats a millisecond quantity.
pub(crate) fn ms(s: npu_tensor::Seconds) -> String {
    format!("{:.2}", s.as_millis())
}

/// Formats a relative delta as a signed percentage.
pub(crate) fn pct(ours: f64, reference: f64) -> String {
    format!("{:+.1}%", (ours / reference - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_table_renders() {
        let mut t = TextTable::new("Demo", &["a", "metric"]);
        t.row(vec!["x".into(), "1.0".into()]);
        assert!(t.to_string().contains("=== Demo ==="));
    }

    #[test]
    fn pct_signs() {
        assert_eq!(pct(110.0, 100.0), "+10.0%");
        assert_eq!(pct(90.0, 100.0), "-10.0%");
    }
}
