//! Table III — input-scaling effects on the occupancy trunk.
//!
//! Sweeps the deconvolution tower depth (upsampling factor 2×…16×) and
//! reports E2E and layerwise-pipelined latency on one OS chiplet; the
//! paper observes ~4× growth per added level with the final level
//! contributing ~75% of total latency.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::models::occupancy::{occupancy_trunk, OccupancyConfig};
use npu_maestro::{graph_cost, Accelerator, FittedMaestro};
use npu_tensor::Seconds;

use crate::text::{ms, TextTable};

/// One upsampling-factor row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyRow {
    /// Total upsampling factor (2^levels).
    pub factor: u64,
    /// E2E (serial) latency on one chiplet.
    pub e2e: Seconds,
    /// Layerwise pipelining latency (max single layer).
    pub pipe: Seconds,
}

/// Table III reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows for 2×, 4×, 8×, 16×.
    pub rows: Vec<OccupancyRow>,
    /// Share of the final deconvolution level in the 16× E2E latency
    /// (paper: ~75%).
    pub last_level_share: f64,
}

/// Paper Table III: (factor, e2e ms, pipe ms).
pub const PAPER_ROWS: [(u64, f64, f64); 4] = [
    (2, 0.97, 0.97),
    (4, 4.97, 3.99),
    (8, 21.16, 16.18),
    (16, 86.29, 65.13),
];

/// Runs the upsampling sweep.
pub fn run() -> Table3 {
    let model = FittedMaestro::new();
    let os = Accelerator::shidiannao_like(256);
    let mut rows = Vec::new();
    let mut last_level_share = 0.0;

    for levels in 1..=4u64 {
        let cfg = OccupancyConfig::default().with_levels(levels);
        let g = occupancy_trunk(&cfg);
        let cost = graph_cost(&model, &g, &os);
        let pipe = cost
            .per_layer()
            .iter()
            .map(|(_, c)| c.latency)
            .fold(Seconds::ZERO, Seconds::max);
        if levels == 4 {
            let last = g.find("occupancy.deconv4").expect("level 4 present");
            last_level_share =
                cost.layer(last).expect("cost present").latency / cost.serial_latency();
        }
        rows.push(OccupancyRow {
            factor: cfg.upscale_factor(),
            e2e: cost.serial_latency(),
            pipe,
        });
    }

    Table3 {
        rows,
        last_level_share,
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Table III - occupancy trunk upsampling ablation (one OS chiplet)",
            &[
                "factor",
                "E2E[ms]",
                "paper",
                "Pipe[ms]",
                "paper",
                "E2E growth",
            ],
        );
        let mut prev: Option<Seconds> = None;
        for (row, paper) in self.rows.iter().zip(PAPER_ROWS) {
            let growth = prev
                .map(|p| format!("{:.2}x", row.e2e / p))
                .unwrap_or_else(|| "-".to_string());
            prev = Some(row.e2e);
            t.row(vec![
                format!("[{0}X,{0}Y]", row.factor),
                ms(row.e2e),
                format!("{:.2}", paper.1),
                ms(row.pipe),
                format!("{:.2}", paper.2),
                growth,
            ]);
        }
        t.note(format!(
            "final upsampling level share of 16x latency: {:.0}% (paper: ~75%)",
            self.last_level_share * 100.0
        ));
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_roughly_4x_per_level() {
        let t = run();
        for pair in t.rows.windows(2) {
            let ratio = pair[1].e2e / pair[0].e2e;
            assert!((3.0..5.0).contains(&ratio), "ratio {ratio:.2}");
        }
    }

    #[test]
    fn within_paper_band() {
        let t = run();
        for (row, paper) in t.rows.iter().zip(PAPER_ROWS) {
            let rel = (row.e2e.as_millis() / paper.1 - 1.0).abs();
            assert!(
                rel < 0.30,
                "{}x: {} vs paper {}",
                row.factor,
                row.e2e,
                paper.1
            );
        }
    }

    #[test]
    fn last_level_dominates() {
        let t = run();
        assert!(
            (0.6..0.85).contains(&t.last_level_share),
            "{}",
            t.last_level_share
        );
    }

    #[test]
    fn pipe_below_e2e_for_deep_towers() {
        let t = run();
        let deep = t.rows.last().unwrap();
        assert!(deep.pipe < deep.e2e);
    }
}
