//! Scenario workbench: the built-in driving-scenario families evaluated
//! on the single- and dual-NPU packages.
//!
//! Each grid point runs the full stack — compile the scenario to a
//! workload, match it with Algorithm 1, evaluate analytically, then
//! drive the discrete-event simulator with the scenario's own arrival
//! process — and reports the DES-vs-predicted steady-interval agreement.
//! This is the workload-envelope extension of the paper's single
//! steady-state evaluation (ISSUE 3).

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_scenario::{scenario_sweep, Scenario, ScenarioPoint, SWEEP_FRAMES};

use crate::text::{ms, TextTable};

/// The scenario × package grid results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioGrid {
    /// Frames simulated per point.
    pub frames: usize,
    /// One row per (scenario, package) pair, scenario-major.
    pub points: Vec<ScenarioPoint>,
}

impl ScenarioGrid {
    /// Points of one scenario family across all packages.
    pub fn family(&self, name: &str) -> Vec<&ScenarioPoint> {
        self.points.iter().filter(|p| p.scenario == name).collect()
    }

    /// The worst DES-vs-predicted disagreement across the grid.
    pub fn worst_drift(&self) -> f64 {
        self.points.iter().map(|p| p.drift).fold(0.0, f64::max)
    }
}

/// Runs the built-in scenario families on the paper's 6×6 single-NPU
/// package and the 12×6 dual-NPU package.
pub fn run() -> ScenarioGrid {
    let scenarios = Scenario::builtin();
    let packages = [McmPackage::simba_6x6(), McmPackage::dual_npu_12x6()];
    let model = FittedMaestro::new();
    ScenarioGrid {
        frames: SWEEP_FRAMES,
        points: scenario_sweep(&scenarios, &packages, &model, SWEEP_FRAMES),
    }
}

impl fmt::Display for ScenarioGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            format!(
                "Scenario workbench - built-in families x packages ({} DES frames)",
                self.frames
            ),
            &[
                "scenario", "package", "cams", "Pipe[ms]", "Pred[ms]", "DES[ms]", "drift[%]",
                "Lat[ms]", "p99[ms]", "FPS", "Util[%]",
            ],
        );
        for p in &self.points {
            t.row(vec![
                p.scenario.clone(),
                p.package.clone(),
                p.cameras.to_string(),
                ms(p.pipe),
                ms(p.predicted_interval),
                ms(p.des_interval),
                format!("{:+.2}", p.drift * 100.0),
                ms(p.mean_latency),
                ms(p.tails.p99),
                format!("{:.1}", p.throughput_fps),
                format!("{:.1}", p.utilization * 100.0),
            ]);
        }
        t.note(
            "Pred = max(analytic pipe, mean arrival interval): compute-bound \
             families track the pipe, arrival-bound ones the camera rate",
        );
        t.note(
            "drift = |DES / Pred - 1|; the cross-validation suite pins \
             every family within 10% on the 6x6 package",
        );
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_family_on_both_packages() {
        let g = run();
        let families = Scenario::builtin();
        assert_eq!(g.points.len(), families.len() * 2);
        for s in &families {
            assert_eq!(g.family(&s.name).len(), 2, "{}", s.name);
        }
    }

    #[test]
    fn renders_a_row_per_point() {
        let g = run();
        let text = g.to_string();
        assert!(text.contains("Scenario workbench"));
        assert!(text.contains("highway-cruise"));
        assert!(text.contains("burst-relocalization"));
    }
}
