//! Ablation studies on the design choices DESIGN.md calls out.
//!
//! 1. **Scheduler ablation** — Algorithm 1 vs naive longest-processing-
//!    time balancing: how much of the paper's gain is structure-aware
//!    sharding rather than load balancing?
//! 2. **Dataflow ablation** — the OS/WS study extended with the
//!    Eyeriss-like row-stationary dataflow (extension beyond the paper).
//! 3. **Cost-model ablation** — the fitted MAESTRO-calibrated model vs a
//!    first-principles roofline: which paper conclusions depend on
//!    MAESTRO's dataflow serialization effects?

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::{PerceptionConfig, StageKind};
use npu_maestro::{graph_cost, Accelerator, CostModel, FirstPrinciples, FittedMaestro};
use npu_mcm::McmPackage;
use npu_sched::lpt::lpt_schedule;
use npu_sched::{evaluate, MatcherConfig, ThroughputMatcher};
use npu_tensor::{Dtype, Joules, Seconds};

use crate::text::{ms, TextTable};

/// Scheduler-ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerAblation {
    /// Pipe latency under naive LPT balancing.
    pub lpt_pipe: Seconds,
    /// Pipe latency under Algorithm 1.
    pub matched_pipe: Seconds,
    /// Utilization under LPT.
    pub lpt_utilization: f64,
    /// Utilization under Algorithm 1.
    pub matched_utilization: f64,
}

/// Dataflow-ablation row: one perception component on three dataflows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowRow {
    /// Component label.
    pub component: String,
    /// (latency, energy) per dataflow: OS, WS, RS.
    pub os: (Seconds, Joules),
    /// NVDLA-like results.
    pub ws: (Seconds, Joules),
    /// Eyeriss-like results (extension).
    pub rs: (Seconds, Joules),
}

/// Cost-model-ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModelAblation {
    /// Monolithic-over-MCM E2E ratio under the fitted model (paper: ≈3.6x
    /// in favour of the MCM).
    pub fitted_mono_over_mcm: f64,
    /// The same ratio under the first-principles roofline.
    pub roofline_mono_over_mcm: f64,
}

/// All three ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ablations {
    /// Scheduler ablation.
    pub scheduler: SchedulerAblation,
    /// Dataflow ablation rows.
    pub dataflows: Vec<DataflowRow>,
    /// Cost-model ablation.
    pub cost_model: CostModelAblation,
}

/// Runs all ablations.
pub fn run() -> Ablations {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();

    // 1. Scheduler ablation.
    let lpt = evaluate(
        &lpt_schedule(&pipeline, &pkg, &model),
        &pkg,
        &model,
        Dtype::Fp16,
    );
    let matched =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);
    let scheduler = SchedulerAblation {
        lpt_pipe: lpt.pipe,
        matched_pipe: matched.report.pipe,
        lpt_utilization: lpt.utilization_used,
        matched_utilization: matched.report.utilization_used,
    };

    // 2. Dataflow ablation on single 256-PE chiplets.
    let accs = [
        Accelerator::shidiannao_like(256),
        Accelerator::nvdla_like(256),
        Accelerator::eyeriss_like(256),
    ];
    let mut dataflows = Vec::new();
    for (label, graph) in [
        (
            "FE+BFPN (1 cam)",
            pipeline.stage(StageKind::FeatureExtraction).models()[0].graph(),
        ),
        (
            "S_FUSE",
            pipeline.stage(StageKind::SpatialFusion).models()[0].graph(),
        ),
        (
            "T_FUSE",
            pipeline.stage(StageKind::TemporalFusion).models()[0].graph(),
        ),
        (
            "OCUP_TR",
            pipeline.stage(StageKind::Trunks).models()[0].graph(),
        ),
    ] {
        let c: Vec<(Seconds, Joules)> = accs
            .iter()
            .map(|a| {
                let gc = graph_cost(&model, graph, a);
                (gc.serial_latency(), gc.energy())
            })
            .collect();
        dataflows.push(DataflowRow {
            component: label.to_string(),
            os: c[0],
            ws: c[1],
            rs: c[2],
        });
    }

    // 3. Cost-model ablation: monolithic-vs-MCM E2E ratio under both
    // cost models, on the first three stages.
    let three = pipeline.bottleneck_stages();
    let ratio = |m: &dyn CostModel| -> f64 {
        let mono_pkg = McmPackage::monolithic_9216();
        let mono = evaluate(
            &npu_sched::baseline_schedule(&three, &mono_pkg, npu_sched::Pipelining::Stagewise, m),
            &mono_pkg,
            m,
            Dtype::Fp16,
        );
        let mcm =
            ThroughputMatcher::new(m, MatcherConfig::default()).match_throughput(&pipeline, &pkg);
        mono.e2e.as_secs() / mcm.report.e2e.as_secs()
    };
    let cost_model = CostModelAblation {
        fitted_mono_over_mcm: ratio(&model),
        roofline_mono_over_mcm: ratio(&FirstPrinciples::default()),
    };

    Ablations {
        scheduler,
        dataflows,
        cost_model,
    }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Ablation 1 - Algorithm 1 vs naive LPT balancing (6x6 MCM)",
            &["scheduler", "Pipe[ms]", "Util[%]"],
        );
        t.row(vec![
            "LPT (no sharding)".into(),
            ms(self.scheduler.lpt_pipe),
            format!("{:.1}", self.scheduler.lpt_utilization * 100.0),
        ]);
        t.row(vec![
            "Algorithm 1".into(),
            ms(self.scheduler.matched_pipe),
            format!("{:.1}", self.scheduler.matched_utilization * 100.0),
        ]);
        t.note(format!(
            "structure-aware sharding buys {:.1}x pipelining latency over load balancing",
            self.scheduler.lpt_pipe / self.scheduler.matched_pipe
        ));
        t.fmt(f)?;

        let mut t = TextTable::new(
            "Ablation 2 - dataflow extension: OS vs WS vs RS (one 256-PE chiplet)",
            &[
                "component",
                "OS lat[ms]",
                "WS lat[ms]",
                "RS lat[ms]",
                "OS E[mJ]",
                "WS E[mJ]",
                "RS E[mJ]",
            ],
        );
        for r in &self.dataflows {
            t.row(vec![
                r.component.clone(),
                ms(r.os.0),
                ms(r.ws.0),
                ms(r.rs.0),
                format!("{:.1}", r.os.1.as_millijoules()),
                format!("{:.1}", r.ws.1.as_millijoules()),
                format!("{:.1}", r.rs.1.as_millijoules()),
            ]);
        }
        t.note("RS (Eyeriss-like) is an extension beyond the paper: literature-informed profile");
        t.note(
            "extension finding: RS does not starve on token operands and \
             relieves the fusion bottleneck OS suffers, at a conv-latency cost",
        );
        t.fmt(f)?;

        let mut t = TextTable::new(
            "Ablation 3 - cost-model sensitivity (monolithic/MCM E2E ratio)",
            &["cost model", "mono/MCM E2E"],
        );
        t.row(vec![
            "fitted (MAESTRO-calibrated)".into(),
            format!("{:.2}x", self.cost_model.fitted_mono_over_mcm),
        ]);
        t.row(vec![
            "first-principles roofline".into(),
            format!("{:.2}x", self.cost_model.roofline_mono_over_mcm),
        ]);
        t.note(
            "the paper's monolithic disadvantage rests on MAESTRO's dataflow \
             serialization: a pure roofline erases most of it",
        );
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_beats_balancing_by_factors() {
        let a = run();
        let gain = a.scheduler.lpt_pipe / a.scheduler.matched_pipe;
        assert!(gain > 3.0, "gain {gain:.2}");
        assert!(a.scheduler.matched_utilization > a.scheduler.lpt_utilization);
    }

    #[test]
    fn rs_relieves_the_fusion_bottleneck() {
        // Extension finding: the Eyeriss-like row mapping does not starve
        // on token-shaped operands, so it beats the paper's OS choice on
        // the fusion stages (while losing on the conv-heavy FE).
        let a = run();
        let fusion = a
            .dataflows
            .iter()
            .find(|r| r.component == "T_FUSE")
            .unwrap();
        assert!(fusion.rs.0 < fusion.os.0, "RS beats OS on fusion");
        assert!(fusion.os.0 < fusion.ws.0, "OS beats WS on fusion");
        let fe = a
            .dataflows
            .iter()
            .find(|r| r.component.starts_with("FE"))
            .unwrap();
        assert!(fe.os.0 < fe.rs.0, "OS stays fastest on convs");
        assert!(fe.rs.0 < fe.ws.0, "RS between OS and WS on convs");
    }

    #[test]
    fn rs_is_most_energy_efficient_on_convs() {
        let a = run();
        let fe = a
            .dataflows
            .iter()
            .find(|r| r.component.starts_with("FE"))
            .unwrap();
        assert!(fe.rs.1 < fe.os.1, "row reuse beats OS energy on convs");
    }

    #[test]
    fn paper_conclusion_depends_on_fitted_model() {
        let a = run();
        // Under the fitted model the monolith is far slower end to end;
        // under the roofline the gap collapses (or inverts).
        assert!(a.cost_model.fitted_mono_over_mcm > 2.0);
        assert!(
            a.cost_model.roofline_mono_over_mcm < a.cost_model.fitted_mono_over_mcm * 0.5,
            "roofline {} vs fitted {}",
            a.cost_model.roofline_mono_over_mcm,
            a.cost_model.fitted_mono_over_mcm
        );
    }
}
