//! Figs. 5–8 — the throughput-matched mapping of each perception stage
//! onto the 6×6 Simba-like MCM: E2E latency, pipelining latency, energy
//! and EDP per stage, plus the shard configuration Algorithm 1 chose.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::{PerceptionConfig, StageKind};
use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_sched::{MatcherConfig, ThroughputMatcher};
use npu_tensor::{Edp, Joules, Seconds};

use crate::text::{ms, TextTable};

/// Paper reference values for one stage panel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperStageRef {
    /// E2E latency in ms.
    pub e2e_ms: f64,
    /// Pipelining latency in ms.
    pub pipe_ms: f64,
    /// Energy in J.
    pub energy_j: f64,
    /// EDP in ms·J.
    pub edp_msj: f64,
}

/// One stage's measured mapping results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRow {
    /// Stage.
    pub kind: StageKind,
    /// Measured E2E latency.
    pub e2e: Seconds,
    /// Measured pipelining latency.
    pub pipe: Seconds,
    /// Measured energy.
    pub energy: Joules,
    /// Measured EDP.
    pub edp: Edp,
    /// Chiplets used by the stage.
    pub chiplets: usize,
    /// Shard summary, e.g. `t_fuse.qkv x2, t_fuse.ffn x6`.
    pub shards: String,
    /// The paper's figure values.
    pub paper: PaperStageRef,
}

/// Figs. 5–8 reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5to8 {
    /// One row per stage (Fig. 5, 6, 7, 8).
    pub rows: Vec<StageRow>,
    /// Overall matched pipelining latency (paper §V-A: 87 ms; 0.09 s in
    /// Table II).
    pub overall_pipe: Seconds,
}

/// Paper values for Figs. 5–8.
pub fn paper_refs(kind: StageKind) -> PaperStageRef {
    match kind {
        StageKind::FeatureExtraction => PaperStageRef {
            e2e_ms: 82.69,
            pipe_ms: 79.59,
            energy_j: 3.36,
            edp_msj: 267.4,
        },
        StageKind::SpatialFusion => PaperStageRef {
            e2e_ms: 129.1,
            pipe_ms: 78.72,
            energy_j: 0.04,
            edp_msj: 4.63,
        },
        StageKind::TemporalFusion => PaperStageRef {
            e2e_ms: 200.5,
            pipe_ms: 82.16,
            energy_j: 0.07,
            edp_msj: 12.2,
        },
        StageKind::Trunks => PaperStageRef {
            e2e_ms: 91.27,
            pipe_ms: 82.16,
            energy_j: 0.19,
            edp_msj: 16.91,
        },
    }
}

/// Runs Algorithm 1 on the 6×6 MCM and collects the per-stage panels.
pub fn run() -> Fig5to8 {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);

    let rows = outcome
        .report
        .per_stage
        .iter()
        .map(|s| {
            let plan = outcome.schedule.stage(s.kind).expect("stage present");
            let shards: Vec<String> = plan
                .models
                .iter()
                .flat_map(|m| m.layers.iter())
                .filter(|lp| lp.parts() > 1)
                .map(|lp| format!("{} x{}", lp.source.name(), lp.parts()))
                .collect();
            StageRow {
                kind: s.kind,
                e2e: s.e2e,
                pipe: s.pipe,
                energy: s.energy(),
                edp: s.edp(),
                chiplets: plan.chiplets_used().len(),
                shards: shards.join(", "),
                paper: paper_refs(s.kind),
            }
        })
        .collect();

    Fig5to8 {
        rows,
        overall_pipe: outcome.report.pipe,
    }
}

impl fmt::Display for Fig5to8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figs. 5-8 - stage mappings on the 6x6 MCM (measured | paper)",
            &[
                "stage",
                "E2E[ms]",
                "paper",
                "Pipe[ms]",
                "paper",
                "E[J]",
                "paper",
                "EDP[ms*J]",
                "paper",
                "chiplets",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.kind.to_string(),
                ms(r.e2e),
                format!("{:.2}", r.paper.e2e_ms),
                ms(r.pipe),
                format!("{:.2}", r.paper.pipe_ms),
                format!("{:.3}", r.energy.as_joules()),
                format!("{:.2}", r.paper.energy_j),
                format!("{:.1}", r.edp.as_millijoule_millis()),
                format!("{:.1}", r.paper.edp_msj),
                r.chiplets.to_string(),
            ]);
        }
        for r in &self.rows {
            if !r.shards.is_empty() {
                t.note(format!("{}: shards {}", r.kind, r.shards));
            }
        }
        t.note(format!(
            "overall matched pipelining latency: {} (paper: ~87 ms)",
            self.overall_pipe
        ));
        t.note(
            "paper's Fig. 5 energy (3.36 J) is inconsistent with its own Table II \
             total (0.64 J); we calibrate to Table I/II (see EXPERIMENTS.md)",
        );
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_pipes_match_paper_within_10pct() {
        let r = run();
        for row in &r.rows {
            let rel = (row.pipe.as_millis() / row.paper.pipe_ms - 1.0).abs();
            assert!(
                rel < 0.10,
                "{}: pipe {} vs paper {:.2} ms",
                row.kind,
                row.pipe,
                row.paper.pipe_ms
            );
        }
    }

    #[test]
    fn fusion_e2e_within_paper_band() {
        let r = run();
        let s = &r.rows[StageKind::SpatialFusion.index()];
        let t = &r.rows[StageKind::TemporalFusion.index()];
        assert!(
            (s.e2e.as_millis() / s.paper.e2e_ms - 1.0).abs() < 0.35,
            "S_FUSE e2e {}",
            s.e2e
        );
        assert!(
            (t.e2e.as_millis() / t.paper.e2e_ms - 1.0).abs() < 0.10,
            "T_FUSE e2e {}",
            t.e2e
        );
    }

    #[test]
    fn t_fuse_uses_nine_chiplets_like_fig7() {
        let r = run();
        let t = &r.rows[StageKind::TemporalFusion.index()];
        assert!((8..=10).contains(&t.chiplets), "{}", t.chiplets);
        assert!(t.shards.contains("t_fuse.qkv x2"));
        assert!(t.shards.contains("t_fuse.ffn x6"));
    }

    #[test]
    fn overall_pipe_near_87ms() {
        let r = run();
        assert!(
            (80.0..95.0).contains(&r.overall_pipe.as_millis()),
            "{}",
            r.overall_pipe
        );
    }
}
