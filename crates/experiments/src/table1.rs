//! Table I — heterogeneous integration for the MCM trunks.
//!
//! Compares OS-only, WS-only, Het(2) and Het(4) trunk quadrants under the
//! paper's `L_cstr = 85 ms` EDP-scored brute force. The lane trunk runs
//! with 60% retained context, the deployment point §V-C/Fig. 11
//! establishes (full context violates the pipelining constraint).

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::models::detection::detection_head;
use npu_dnn::PerceptionConfig;
use npu_maestro::{graph_cost, Accelerator, FittedMaestro};
use npu_mcm::McmPackage;
use npu_sched::dse::{table1_variants, DseConfig, DseResult};

use crate::text::{ms, pct, TextTable};

/// Table I reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// OS / WS / Het(2) / Het(4) results.
    pub variants: Vec<DseResult>,
    /// DET trunk energy reduction when mapped to WS (paper: −35%).
    pub det_ws_energy_reduction: f64,
}

/// Paper Table I reference rows: (label, e2e ms, pipe ms, energy J, EDP).
pub const PAPER_ROWS: [(&str, f64, f64, f64, f64); 4] = [
    ("OS", 91.2, 87.9, 0.185, 16.89),
    ("WS", 605.7, 605.7, 0.139, 59.35),
    ("Het(2)", 91.3, 71.7, 0.183, 14.38),
    ("Het(4)", 91.3, 71.7, 0.174, 15.1),
];

/// Runs the Table I exploration.
pub fn run() -> Table1 {
    let mut cfg = PerceptionConfig::default();
    cfg.lane = cfg.lane.with_context_fraction(0.6);
    let pipeline = cfg.build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let variants = table1_variants(&pipeline, &pkg, &model, DseConfig::default());

    // DET_TR in isolation: OS vs WS energy.
    let det = detection_head("det", &cfg.detection);
    let os = graph_cost(&model, &det, &Accelerator::shidiannao_like(256)).energy();
    let ws = graph_cost(&model, &det, &Accelerator::nvdla_like(256)).energy();
    let det_ws_energy_reduction = 1.0 - ws / os;

    Table1 {
        variants,
        det_ws_energy_reduction,
    }
}

impl Table1 {
    /// The variant result by label.
    pub fn variant(&self, label: &str) -> Option<&DseResult> {
        self.variants.iter().find(|v| v.variant == label)
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let os = self.variant("OS").expect("OS present");
        let mut t = TextTable::new(
            "Table I - heterogeneous trunk integration (L_cstr = 85 ms)",
            &[
                "metric",
                "OS",
                "WS",
                "Het(2)",
                "Het(4)",
                "d(2)",
                "d(4)",
                "paper d(2)",
                "paper d(4)",
            ],
        );
        let get = |l: &str| self.variant(l).expect("variant present");
        let (h2, h4, ws) = (get("Het(2)"), get("Het(4)"), get("WS"));
        t.row(vec![
            "E2E Lat[ms]".into(),
            ms(os.report.e2e),
            ms(ws.report.e2e),
            ms(h2.report.e2e),
            ms(h4.report.e2e),
            pct(h2.report.e2e.as_secs(), os.report.e2e.as_secs()),
            pct(h4.report.e2e.as_secs(), os.report.e2e.as_secs()),
            "+0.1%".into(),
            "+0.1%".into(),
        ]);
        t.row(vec![
            "Pipe Lat[ms]".into(),
            ms(os.report.pipe),
            ms(ws.report.pipe),
            ms(h2.report.pipe),
            ms(h4.report.pipe),
            pct(h2.report.pipe.as_secs(), os.report.pipe.as_secs()),
            pct(h4.report.pipe.as_secs(), os.report.pipe.as_secs()),
            "-18.4%".into(),
            "-18.4%".into(),
        ]);
        t.row(vec![
            "Energy[J]".into(),
            format!("{:.4}", os.report.energy().as_joules()),
            format!("{:.4}", ws.report.energy().as_joules()),
            format!("{:.4}", h2.report.energy().as_joules()),
            format!("{:.4}", h4.report.energy().as_joules()),
            pct(
                h2.report.energy().as_joules(),
                os.report.energy().as_joules(),
            ),
            pct(
                h4.report.energy().as_joules(),
                os.report.energy().as_joules(),
            ),
            "-1.1%".into(),
            "-6.2%".into(),
        ]);
        t.row(vec![
            "EDP[ms*J]".into(),
            format!("{:.2}", os.report.edp().as_millijoule_millis()),
            format!("{:.2}", ws.report.edp().as_millijoule_millis()),
            format!("{:.2}", h2.report.edp().as_millijoule_millis()),
            format!("{:.2}", h4.report.edp().as_millijoule_millis()),
            pct(
                h2.report.edp().as_joule_secs(),
                os.report.edp().as_joule_secs(),
            ),
            pct(
                h4.report.edp().as_joule_secs(),
                os.report.edp().as_joule_secs(),
            ),
            "-17.4%".into(),
            "-12.0%".into(),
        ]);
        t.note(format!(
            "DET_TR on WS: {:.0}% energy reduction (paper: 35%)",
            self.det_ws_energy_reduction * 100.0
        ));
        t.note(format!(
            "WS-only violates L_cstr by {:.1}x (paper: 605.7 ms vs 85 ms)",
            ws.report.pipe.as_secs() / 0.085
        ));
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_saves_about_35pct_on_ws() {
        let r = run();
        assert!(
            (0.30..0.40).contains(&r.det_ws_energy_reduction),
            "{}",
            r.det_ws_energy_reduction
        );
    }

    #[test]
    fn het_reduces_energy_and_edp_at_unchanged_e2e() {
        let r = run();
        let os = r.variant("OS").unwrap();
        for label in ["Het(2)", "Het(4)"] {
            let het = r.variant(label).unwrap();
            assert!(het.report.energy() < os.report.energy(), "{label} energy");
            assert!(
                het.report.edp().as_joule_secs() <= os.report.edp().as_joule_secs(),
                "{label} EDP"
            );
            let drift = (het.report.e2e / os.report.e2e - 1.0).abs();
            assert!(drift < 0.05, "{label} e2e drift {drift}");
        }
    }

    #[test]
    fn ws_only_matches_paper_factor() {
        let r = run();
        let os = r.variant("OS").unwrap();
        let ws = r.variant("WS").unwrap();
        let factor = ws.report.e2e / os.report.e2e;
        // Paper: 605.7/91.2 = 6.6x.
        assert!((4.0..10.0).contains(&factor), "{factor}");
        assert!(!ws.feasible);
        // WS has the lowest raw energy (paper: 0.139 vs 0.185 J).
        assert!(ws.report.energy() < os.report.energy());
    }
}
