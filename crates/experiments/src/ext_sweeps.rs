//! Extension sweeps beyond the paper's fixed design points.
//!
//! * Chiplet-count scaling: where does throughput matching saturate as
//!   the package grows past the two-NPU configuration?
//! * Failure injection: graceful degradation when chiplets die in the
//!   field — the modularity argument (§I) quantified.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::PerceptionConfig;
use npu_maestro::FittedMaestro;
use npu_sched::sweep::{
    chiplet_count_sweep, failure_sweep, nop_bandwidth_sweep, NopPoint, SweepPoint,
};

use crate::text::{ms, TextTable};

/// Extension-sweep results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtSweeps {
    /// Pipe latency vs chiplet count.
    pub scaling: Vec<SweepPoint>,
    /// Pipe latency vs failed-chiplet count (6×6 base).
    pub failures: Vec<SweepPoint>,
    /// Pipe latency vs NoP link bandwidth (6×6 base).
    pub nop_bandwidth: Vec<NopPoint>,
}

/// Runs all three sweeps.
///
/// The sweeps (and the grid points inside each, via `npu-sched`) fan out
/// on the `npu-par` worker pool; results are deterministic and identical
/// to a serial run at any jobs count.
pub fn run() -> ExtSweeps {
    let pipeline = PerceptionConfig::default().build();
    let model = FittedMaestro::new();
    let (scaling, (failures, nop_bandwidth)) = npu_par::join(
        || {
            chiplet_count_sweep(
                &pipeline,
                &[(3, 3), (4, 4), (5, 5), (6, 6), (9, 6), (12, 6)],
                &model,
            )
        },
        || {
            npu_par::join(
                || failure_sweep(&pipeline, &[0, 3, 6, 9, 12], &model),
                || nop_bandwidth_sweep(&pipeline, &[100.0, 25.0, 10.0, 1.0, 0.1], &model),
            )
        },
    );
    ExtSweeps {
        scaling,
        failures,
        nop_bandwidth,
    }
}

impl fmt::Display for ExtSweeps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Extension - chiplet-count scaling (256-PE OS chiplets)",
            &["chiplets", "Pipe[ms]", "E2E[ms]", "E[J]", "Util[%]", "FPS"],
        );
        for p in &self.scaling {
            t.row(vec![
                p.x.to_string(),
                ms(p.pipe),
                ms(p.e2e),
                format!("{:.2}", p.energy.as_joules()),
                format!("{:.1}", p.utilization * 100.0),
                format!("{:.1}", 1.0 / p.pipe.as_secs()),
            ]);
        }
        t.note("saturation: once every shardable layer hits its cap, chiplets idle");
        t.fmt(f)?;

        let mut t = TextTable::new(
            "Extension - chiplet failure injection (6x6 base package)",
            &["failed", "Pipe[ms]", "E2E[ms]", "Util[%]"],
        );
        for p in &self.failures {
            t.row(vec![
                p.x.to_string(),
                ms(p.pipe),
                ms(p.e2e),
                format!("{:.1}", p.utilization * 100.0),
            ]);
        }
        t.note(
            "degradation is geometry-sensitive, not count-proportional: \
             quadrant fragmentation dominates (see npu-sched::sweep docs)",
        );
        t.fmt(f)?;

        let mut t = TextTable::new(
            "Extension - NoP bandwidth sensitivity (6x6, paper default 100 GB/s)",
            &["GB/s", "Pipe[ms]", "NoP lat share[%]"],
        );
        for p in &self.nop_bandwidth {
            t.row(vec![
                format!("{:.1}", p.bandwidth_gbps),
                ms(p.pipe),
                format!("{:.2}", p.nop_latency_share * 100.0),
            ]);
        }
        t.note(
            "the paper's 'NoP is negligible' conclusion (SIV-D) holds down to \
             ~10 GB/s and collapses below ~1 GB/s",
        );
        t.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_monotone_and_saturates() {
        let s = run();
        for pair in s.scaling.windows(2) {
            assert!(
                pair[1].pipe.as_secs() <= pair[0].pipe.as_secs() * 1.02,
                "{} -> {} chiplets must not slow down",
                pair[0].x,
                pair[1].x
            );
        }
        // Beyond 72 chiplets the FE split is exhausted: the last doubling
        // gains less than the first.
        let first_gain = s.scaling[0].pipe / s.scaling[3].pipe;
        let last_gain = s.scaling[3].pipe / s.scaling[5].pipe;
        assert!(first_gain > last_gain, "{first_gain:.2} vs {last_gain:.2}");
    }

    #[test]
    fn nop_sensitivity_has_a_knee() {
        let s = run();
        let first = &s.nop_bandwidth[0];
        let last = s.nop_bandwidth.last().unwrap();
        assert!(last.pipe > first.pipe);
        assert!(last.nop_latency_share > first.nop_latency_share);
    }

    #[test]
    fn all_failure_points_still_schedule() {
        let s = run();
        for p in &s.failures {
            assert!(p.pipe.as_millis() < 300.0, "k={} pipe {}", p.x, p.pipe);
        }
    }
}
