//! Fleet-scale multi-tenant serving DSE: the `repro fleet` artifact
//! (ISSUE 9).
//!
//! The tail-latency DSE ([`crate::tails`]) sizes one package for one
//! vehicle. This artifact asks the fleet operator's question: given
//! **hundreds** of vehicles — mixed rigs, mixed drive modes, mixed
//! priority classes, each a [`npu_fleet::Tenant`] with its own mean and
//! p99 SLO — which package configuration serves the whole fleet
//! cheapest?
//!
//! Three layers ride on `npu-fleet`:
//!
//! * **Uniform-pool packing** — a seeded [`FleetSpec`] is first-fit
//!   packed onto instances of each candidate geometry
//!   ([`pack_fleet`]); every colocation is admission-verified by one
//!   shared-calendar DES, so an instance only hosts vehicles whose mean
//!   *and* tail SLOs all hold together.
//! * **Package-mix selection** — a [`Study`] sweeps the geometries
//!   under `Objective::minimize` fleet chiplets subject to full
//!   admission and a `Constraint::tail_at_most` cap on the worst
//!   admitted p99; a mixed-configuration pool ([`pack_fleet_mixed`])
//!   is packed alongside for comparison.
//! * **Priority preemption** — a safety-critical vehicle arrives on a
//!   busy instance mid-drive: the mesh re-partitions (best-effort
//!   regions shrink first), every migrating tenant is charged the
//!   `rematch_cost` spin-up and drops the frames arriving during it,
//!   and the per-tenant p99 before/after shows the best-effort victim
//!   degrading while the arriver's SLO holds.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_fleet::{
    os256_package, pack_fleet, pack_fleet_mixed, preemption_event, CoScheduler, FleetSpec,
    MixedPackOutcome, PackingOutcome, TenantPhasesSummary, VehicleProfile,
};
use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_study::{Axis, Constraint, Grid, Objective, Percentile, Study, TailLatency};
use npu_tensor::Seconds;

use crate::text::{ms, TextTable};

/// Vehicles in the sampled fleet.
pub const FLEET_SIZE: usize = 120;

/// The fleet sampling seed.
pub const FLEET_SEED: u64 = 2025;

/// DES frames per admission verification (and per preemption epoch
/// scale; the preemption demo uses [`PREEMPT_FRAMES`] per epoch).
pub const FLEET_FRAMES: usize = 24;

/// Candidate package geometries for the uniform pools, ascending cost.
pub const FLEET_GEOMETRIES: [(u32, u32); 4] = [(4, 4), (5, 5), (6, 6), (8, 6)];

/// Frames per preemption epoch (epoch 1 before the arrival, epoch 2
/// after).
pub const PREEMPT_FRAMES: usize = 48;

/// The preemption arrival instant on the shared calendar (seconds).
pub const PREEMPT_AT: f64 = 6.0;

/// One profile's share of the sampled fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileCount {
    /// Profile name.
    pub profile: String,
    /// Priority label.
    pub priority: String,
    /// Vehicles sampled from this profile.
    pub count: usize,
}

/// Rejections of one profile on one configuration, grouped: vehicles
/// are profile clones, so every clone fails with the same typed reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectSummary {
    /// Profile name.
    pub profile: String,
    /// Priority label.
    pub priority: String,
    /// Vehicles of this profile rejected.
    pub count: usize,
    /// The rendered [`npu_fleet::RejectReason`].
    pub reason: String,
}

/// One uniform-pool configuration's fleet-packing outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfigPoint {
    /// Package configuration name (`os256-WxH`).
    pub config: String,
    /// Chiplets per instance.
    pub chiplets_per_instance: u64,
    /// Instances opened.
    pub instances: usize,
    /// Total fleet silicon (instances × chiplets).
    pub total_chiplets: u64,
    /// Vehicles admitted.
    pub admitted: usize,
    /// Vehicles rejected.
    pub rejected: usize,
    /// Admitted / offered.
    pub admission_rate: f64,
    /// Worst admitted p99 per priority class (ms), in
    /// [`npu_fleet::Priority::ALL`] order; `None` where the class has no admitted
    /// vehicle.
    pub worst_p99_ms_by_class: [Option<f64>; 3],
    /// The fleet's worst admitted p99 (the `tail_at_most` surface).
    pub fleet_p99: Seconds,
    /// Whether the configuration admits the whole fleet within the
    /// tail cap.
    pub feasible: bool,
    /// Rejections grouped by (profile, reason).
    pub rejects: Vec<RejectSummary>,
}

/// How the winning configuration serves one profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileServing {
    /// Profile name.
    pub profile: String,
    /// Priority label.
    pub priority: String,
    /// Vehicles of this profile admitted on the winner.
    pub vehicles: usize,
    /// Worst p99 across those vehicles (ms).
    pub worst_p99_ms: f64,
    /// The profile's p99 bound (ms).
    pub p99_bound_ms: f64,
}

/// The preemption demo: a safety arrival on a busy instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptionDemo {
    /// Package the event runs on.
    pub package: String,
    /// Arrival instant.
    pub at: Seconds,
    /// Frames offered per epoch per tenant.
    pub frames_per_epoch: usize,
    /// Every tenant's trajectory across the event, post-event canonical
    /// order.
    pub tenants: Vec<TenantPhasesSummary>,
}

/// The fleet-serving DSE result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDse {
    /// Vehicles sampled.
    pub fleet_size: usize,
    /// Sampling seed.
    pub seed: u64,
    /// DES frames per admission verification.
    pub frames: usize,
    /// Fleet composition by profile, catalog order.
    pub composition: Vec<ProfileCount>,
    /// Vehicles per priority class, [`npu_fleet::Priority::ALL`] order.
    pub class_counts: [usize; 3],
    /// The fleet-wide tail cap: the loosest per-vehicle p99 bound (the
    /// per-vehicle bounds themselves are enforced during admission).
    pub tail_cap: Seconds,
    /// Every uniform-pool configuration, ascending cost.
    pub configs: Vec<FleetConfigPoint>,
    /// Cheapest configuration admitting the whole fleet within the cap.
    pub cheapest_feasible: Option<String>,
    /// Per-profile serving stats on the winner.
    pub winner_profiles: Vec<ProfileServing>,
    /// The mixed-configuration pool packed over the same geometries.
    pub mixed: MixedPackOutcome,
    /// Mixed-pool chiplets minus winner chiplets (negative: the pool is
    /// cheaper); `None` when no uniform configuration is feasible.
    pub mixed_chiplet_delta: Option<i64>,
    /// The priority-preemption demo.
    pub preemption: PreemptionDemo,
}

/// The profile prefix of a sampled vehicle name (`av-cruise-017` →
/// `av-cruise`).
fn profile_of(name: &str) -> &str {
    name.rsplit_once('-').map_or(name, |(prefix, _)| prefix)
}

/// Runs the fleet DSE: sample, pack every uniform pool, select the
/// cheapest feasible configuration, pack the mixed pool, and simulate
/// the preemption event. Deterministic at any `--jobs` count: the
/// sampler is seeded, packing is canonical-order first-fit, and the
/// Study selection folds with first-minimum tie-breaks.
pub fn run() -> FleetDse {
    let fleet = FleetSpec::sample(FLEET_SIZE, FLEET_SEED);
    let model = FittedMaestro::new();

    // Uniform pools: one first-fit packing per geometry, fanned out on
    // the worker pool with the memoized cost model shared.
    let grid = Grid::of(Axis::new("geometry", FLEET_GEOMETRIES.to_vec()));
    let study = Study::new("fleet", grid, &model).run(|&(w, h), model| {
        pack_fleet(&fleet.vehicles, &os256_package(w, h), model, FLEET_FRAMES)
    });

    // The fleet-wide tail cap is the loosest per-vehicle bound: every
    // admitted vehicle already holds its own (tighter) bound, so the
    // Study constraint asserts the packing surface agrees.
    let tail_cap = Seconds::new(
        fleet
            .vehicles
            .iter()
            .map(|v| v.slo.p99_bound.as_secs())
            .fold(0.0, f64::max),
    );
    let constraints = [
        Constraint::new("every vehicle admitted", |m: &PackingOutcome| {
            m.rejected.is_empty()
        }),
        Constraint::tail_at_most(Percentile::P99, tail_cap.as_secs()),
    ];
    let objective = Objective::minimize("fleet chiplets", |m: &PackingOutcome| {
        m.total_chiplets() as f64
    });
    let winner = study.select(&objective, &constraints);
    let feasible = study.feasible(&constraints);

    let configs: Vec<FleetConfigPoint> = study
        .metrics()
        .iter()
        .zip(&feasible)
        .map(|(m, &ok)| {
            let mut rejects: Vec<RejectSummary> = Vec::new();
            for r in &m.rejected {
                let profile = profile_of(&r.name).to_string();
                let reason = r.reason.to_string();
                match rejects
                    .iter_mut()
                    .find(|g| g.profile == profile && g.reason == reason)
                {
                    Some(group) => group.count += 1,
                    None => rejects.push(RejectSummary {
                        profile,
                        priority: r.priority.clone(),
                        count: 1,
                        reason,
                    }),
                }
            }
            FleetConfigPoint {
                config: m.config.clone(),
                chiplets_per_instance: m.chiplets_per_instance,
                instances: m.instance_count(),
                total_chiplets: m.total_chiplets(),
                admitted: m.admitted(),
                rejected: m.rejected.len(),
                admission_rate: m.admission_rate(),
                worst_p99_ms_by_class: m.worst_p99_ms_by_class(),
                fleet_p99: Seconds::new(m.tail_latency(Percentile::P99)),
                feasible: ok,
                rejects,
            }
        })
        .collect();
    let cheapest_feasible = winner.map(|i| configs[i].config.clone());

    // Per-profile serving stats on the winner.
    let mut winner_profiles: Vec<ProfileServing> = Vec::new();
    if let Some(i) = winner {
        for inst in &study.metrics()[i].instances {
            for t in &inst.tenants {
                let profile = profile_of(&t.name);
                match winner_profiles.iter_mut().find(|p| p.profile == profile) {
                    Some(p) => {
                        p.vehicles += 1;
                        p.worst_p99_ms = p.worst_p99_ms.max(t.p99_ms);
                    }
                    None => winner_profiles.push(ProfileServing {
                        profile: profile.to_string(),
                        priority: t.priority.clone(),
                        vehicles: 1,
                        worst_p99_ms: t.p99_ms,
                        p99_bound_ms: t.p99_bound_ms,
                    }),
                }
            }
        }
    }

    // The mixed pool over the same geometries.
    let mixed = pack_fleet_mixed(&fleet.vehicles, &FLEET_GEOMETRIES, &model, FLEET_FRAMES);
    let mixed_chiplet_delta =
        winner.map(|i| mixed.total_chiplets as i64 - configs[i].total_chiplets as i64);

    // Preemption demo on the tail-DSE's p99 winner geometry: two
    // healthy best-effort miners split the mesh evenly — a colocation
    // admission itself would accept — until a safety-critical cruise
    // stack arrives mid-drive and its boosted weight takes most of
    // their silicon.
    let catalog = VehicleProfile::catalog();
    let profile = |name: &str| {
        catalog
            .iter()
            .find(|p| p.name == name)
            .expect("catalog profile")
    };
    let incumbents = vec![profile("mining").vehicle(1), profile("mining").vehicle(2)];
    let arriving = profile("av-cruise").vehicle(0);
    let pkg = os256_package(8, 6);
    let package = pkg.name().to_string();
    let mut sched = CoScheduler::new(pkg, &model).with_verify_frames(FLEET_FRAMES);
    let event = preemption_event(
        &mut sched,
        &incumbents,
        &arriving,
        PREEMPT_AT,
        PREEMPT_FRAMES,
        &ReconfigModel::default(),
    )
    .expect("the post-event partition exists");
    let bound_of = |name: &str| -> Seconds {
        incumbents
            .iter()
            .chain(std::iter::once(&arriving))
            .find(|t| t.name == name)
            .map(|t| t.slo.p99_bound)
            .expect("event tenant")
    };
    let preemption = PreemptionDemo {
        package,
        at: event.at,
        frames_per_epoch: PREEMPT_FRAMES,
        tenants: event
            .tenants
            .iter()
            .map(|t| TenantPhasesSummary::new(t, bound_of(&t.name)))
            .collect(),
    };

    // Fleet composition, catalog order.
    let composition = catalog
        .iter()
        .map(|p| ProfileCount {
            profile: p.name.to_string(),
            priority: p.priority.label().to_string(),
            count: fleet
                .vehicles
                .iter()
                .filter(|v| profile_of(&v.name) == p.name)
                .count(),
        })
        .collect();

    FleetDse {
        fleet_size: FLEET_SIZE,
        seed: FLEET_SEED,
        frames: FLEET_FRAMES,
        composition,
        class_counts: fleet.class_counts(),
        tail_cap,
        configs,
        cheapest_feasible,
        winner_profiles,
        mixed,
        mixed_chiplet_delta,
        preemption,
    }
}

impl fmt::Display for FleetDse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let opt_ms = |v: Option<f64>| v.map_or_else(|| "-".into(), |x| format!("{x:.2}"));
        let mut t = TextTable::new(
            format!(
                "Fleet package-mix DSE - {} vehicles (seed {}), {} DES frames per admission",
                self.fleet_size, self.seed, self.frames
            ),
            &[
                "config",
                "chiplets",
                "inst",
                "fleet chiplets",
                "admitted",
                "rejected",
                "adm%",
                "p99 safety",
                "p99 standard",
                "p99 best-eff",
                "feasible",
            ],
        );
        for c in &self.configs {
            let [safety, standard, best_effort] = c.worst_p99_ms_by_class;
            t.row(vec![
                c.config.clone(),
                c.chiplets_per_instance.to_string(),
                c.instances.to_string(),
                c.total_chiplets.to_string(),
                c.admitted.to_string(),
                c.rejected.to_string(),
                format!("{:.1}", c.admission_rate * 100.0),
                opt_ms(safety),
                opt_ms(standard),
                opt_ms(best_effort),
                if c.feasible {
                    if Some(&c.config) == self.cheapest_feasible.as_ref() {
                        "yes <<"
                    } else {
                        "yes"
                    }
                } else {
                    "no"
                }
                .to_string(),
            ]);
        }
        let composition = self
            .composition
            .iter()
            .map(|p| format!("{} {} ({})", p.count, p.profile, p.priority))
            .collect::<Vec<_>>()
            .join(", ");
        t.note(format!("fleet: {composition}"));
        t.note(format!(
            "cheapest feasible uniform pool: {} (tail cap {} ms; per-vehicle \
             bounds enforced at admission)",
            self.cheapest_feasible.as_deref().unwrap_or("-"),
            ms(self.tail_cap),
        ));
        for c in self.configs.iter().filter(|c| !c.rejects.is_empty()) {
            for g in &c.rejects {
                t.note(format!(
                    "{}: rejects {} {} - {}",
                    c.config, g.count, g.profile, g.reason
                ));
            }
        }
        let mix = self
            .mixed
            .mix
            .iter()
            .map(|(name, n)| format!("{n}x {name}"))
            .collect::<Vec<_>>()
            .join(" + ");
        t.note(format!(
            "mixed pool: {} admits {}/{} on {} chiplets ({} vs the uniform winner)",
            mix,
            self.mixed.admitted,
            self.fleet_size,
            self.mixed.total_chiplets,
            match self.mixed_chiplet_delta {
                Some(d) if d < 0 => format!("{d}"),
                Some(d) => format!("+{d}"),
                None => "no winner".into(),
            },
        ));
        t.fmt(f)?;

        let mut p = TextTable::new(
            format!(
                "Priority preemption on {} - safety arrival at t={}, \
                 {} frames/epoch",
                self.preemption.package, self.preemption.at, self.preemption.frames_per_epoch
            ),
            &[
                "tenant",
                "class",
                "cols",
                "reprog",
                "stall",
                "stallwin[ms]",
                "p99 before",
                "p99 after",
                "bound",
                "SLO",
                "served",
                "dropped",
                "flushed",
            ],
        );
        for t in &self.preemption.tenants {
            p.row(vec![
                t.name.clone(),
                t.priority.clone(),
                format!("{}->{}", t.columns_before, t.columns_after),
                t.reprogrammed.to_string(),
                t.stalled.to_string(),
                format!("{:.2}", t.stall_window_ms),
                opt_ms(t.p99_before_ms),
                format!("{:.2}", t.p99_after_ms),
                format!("{:.2}", t.p99_bound_ms),
                if t.slo_holds { "ok" } else { "miss" }.to_string(),
                t.served.to_string(),
                t.dropped.to_string(),
                t.flushed.to_string(),
            ]);
        }
        p.note(
            "the arriving safety stack takes its region from the best-effort \
             victim; migrating tenants stall only their re-programmed busy \
             chiplets, drop the frames arriving inside that window, and — \
             when the whole region quiesces — flush the frames in flight at \
             the event",
        );
        p.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use npu_fleet::Priority;

    use super::*;

    /// Hundreds of admission DES runs; run once and share across tests.
    fn dse() -> &'static FleetDse {
        static DSE: OnceLock<FleetDse> = OnceLock::new();
        DSE.get_or_init(run)
    }

    #[test]
    fn fleet_covers_the_required_scale() {
        let dse = dse();
        assert!(dse.fleet_size >= 100, "ISSUE 9 floor: a 100+ vehicle fleet");
        assert!(dse.configs.len() >= 3, "at least three package configs");
        assert_eq!(
            dse.composition.iter().map(|p| p.count).sum::<usize>(),
            dse.fleet_size
        );
        assert!(dse.class_counts.iter().all(|&c| c > 0));
        for c in &dse.configs {
            assert_eq!(c.admitted + c.rejected, dse.fleet_size);
            assert!((0.0..=1.0).contains(&c.admission_rate));
        }
    }

    #[test]
    fn the_cheapest_feasible_configuration_wins() {
        let dse = dse();
        let winner = dse.cheapest_feasible.as_deref().expect("a feasible config");
        let win = dse.configs.iter().find(|c| c.config == winner).unwrap();
        assert!(win.feasible && win.rejected == 0);
        assert!((win.admission_rate - 1.0).abs() < 1e-12);
        // First-minimum: no feasible config is cheaper.
        for c in dse.configs.iter().filter(|c| c.feasible) {
            assert!(c.total_chiplets >= win.total_chiplets, "{}", c.config);
        }
        // And some cheaper geometry is infeasible with typed reasons —
        // the admission-control layer is load-bearing, not decorative.
        let infeasible: Vec<_> = dse.configs.iter().filter(|c| !c.feasible).collect();
        assert!(!infeasible.is_empty());
        for c in &infeasible {
            assert!(!c.rejects.is_empty(), "{} rejects carry reasons", c.config);
            assert_eq!(c.rejects.iter().map(|g| g.count).sum::<usize>(), c.rejected);
        }
    }

    #[test]
    fn the_winner_reports_per_class_tails_within_bounds() {
        let dse = dse();
        let winner = dse.cheapest_feasible.as_deref().expect("a feasible config");
        let win = dse.configs.iter().find(|c| c.config == winner).unwrap();
        for (class, p99) in Priority::ALL.iter().zip(win.worst_p99_ms_by_class) {
            let p99 = p99.unwrap_or_else(|| panic!("{class} has admitted vehicles"));
            assert!(p99 / 1e3 <= dse.tail_cap.as_secs(), "{class}: {p99} ms");
        }
        assert!(win.fleet_p99 <= dse.tail_cap);
        // Every profile is served within its own (tighter) bound.
        assert_eq!(dse.winner_profiles.len(), dse.composition.len());
        for p in &dse.winner_profiles {
            assert!(p.worst_p99_ms <= p.p99_bound_ms, "{}", p.profile);
        }
    }

    #[test]
    fn preemption_degrades_the_victim_but_not_the_safety_arriver() {
        let dse = dse();
        let t = |name: &str| {
            dse.preemption
                .tenants
                .iter()
                .find(|t| t.name.starts_with(name))
                .unwrap_or_else(|| panic!("{name} in the demo"))
        };
        // The safety arriver lands, is served, and holds its p99 SLO.
        let arriver = t("av-cruise");
        assert_eq!(arriver.priority, "safety");
        assert_eq!(arriver.columns_before, 0);
        assert!(arriver.columns_after > 0);
        assert!(arriver.served > 0);
        assert!(arriver.slo_holds, "{arriver:?}");
        // The best-effort victim loses columns and its p99 moves.
        let victim = t("mining");
        assert_eq!(victim.priority, "best-effort");
        assert!(victim.columns_after < victim.columns_before);
        let before = victim.p99_before_ms.expect("victim ran in epoch 1");
        assert!(
            (victim.p99_after_ms - before).abs() > 1e-6,
            "preemption must move the victim's p99 ({before} vs {})",
            victim.p99_after_ms
        );
        // Migrations are charged and frames balance across the event.
        let migrated = dse
            .preemption
            .tenants
            .iter()
            .filter(|t| t.columns_before != t.columns_after);
        for t in migrated {
            assert!(t.transition_ms > 0.0, "{} migrated for free", t.name);
        }
        let dropped: usize = dse.preemption.tenants.iter().map(|t| t.dropped).sum();
        assert!(dropped > 0, "spin-up windows drop frames");
        for t in &dse.preemption.tenants {
            assert_eq!(t.offered, t.served + t.dropped + t.flushed, "{}", t.name);
            assert!(t.stalled <= t.reprogrammed, "{}", t.name);
            assert!(t.stall_window_ms <= t.transition_ms, "{}", t.name);
        }
    }

    #[test]
    fn the_mixed_pool_is_compared_against_the_winner() {
        let dse = dse();
        assert_eq!(dse.mixed.admitted + dse.mixed.rejected, dse.fleet_size);
        assert!(!dse.mixed.mix.is_empty());
        let delta = dse.mixed_chiplet_delta.expect("winner exists");
        let winner = dse.cheapest_feasible.as_deref().unwrap();
        let win = dse.configs.iter().find(|c| c.config == winner).unwrap();
        assert_eq!(
            delta,
            dse.mixed.total_chiplets as i64 - win.total_chiplets as i64
        );
        // The pool admits at least as much as the best uniform config.
        assert!(dse.mixed.admitted >= win.admitted);
    }

    #[test]
    fn renders_both_formats_from_one_run() {
        let dse = dse();
        let text = dse.to_string();
        assert!(text.contains("Fleet package-mix DSE"));
        assert!(text.contains("Priority preemption"));
        assert!(text.contains("cheapest feasible"));
        let json = serde_json::to_string_pretty(dse).expect("serializes");
        assert!(json.contains("\"cheapest_feasible\""));
        assert!(json.contains("\"preemption\""));
        assert!(json.contains("\"mixed\""));
    }
}
