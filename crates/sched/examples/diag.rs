use npu_dnn::{PerceptionConfig, StageKind};
use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_sched::dse::{explore_trunks, DseConfig, TrunkVariant};
use npu_sched::{evaluate, MatcherConfig, ThroughputMatcher};
use npu_tensor::Dtype;

fn main() {
    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let model = FittedMaestro::new();
    let matcher = ThroughputMatcher::new(&model, MatcherConfig::default());

    let init = matcher.initial_schedule(&pipeline, &pkg);
    let r0 = evaluate(&init, &pkg, &model, Dtype::Fp16);
    println!("INITIAL pipe={} e2e={}", r0.pipe, r0.e2e);
    for s in &r0.per_stage {
        println!(
            "  {} pipe={} e2e={} ce={} ne={}",
            s.kind, s.pipe, s.e2e, s.compute_energy, s.nop_energy
        );
    }

    let out = matcher.match_throughput(&pipeline, &pkg);
    println!(
        "\nMATCHED pipe={} e2e={} util={:.3}",
        out.report.pipe, out.report.e2e, out.report.utilization
    );
    for s in &out.report.per_stage {
        println!(
            "  {} pipe={} e2e={} E={}",
            s.kind,
            s.pipe,
            s.e2e,
            s.energy()
        );
    }
    println!("\nTRACE:");
    for t in &out.trace {
        println!(
            "  {} -> pipe {} (free {})",
            t.description, t.pipe, t.chiplets_remaining
        );
    }
    println!("\n{}", out.schedule);

    println!("busy:");
    for (c, b) in &out.report.busy {
        println!("  {c}: {b}");
    }

    for v in [
        TrunkVariant::OsOnly,
        TrunkVariant::WsOnly,
        TrunkVariant::Het(2),
        TrunkVariant::Het(4),
    ] {
        let r = explore_trunks(&pipeline, &pkg, v, &model, DseConfig::default());
        println!(
            "\nDSE {}: pipe={} e2e={} E={} EDP={} feasible={} searched={}",
            r.variant,
            r.report.pipe,
            r.report.e2e,
            r.report.energy(),
            r.report.edp(),
            r.feasible,
            r.configs_searched
        );
    }
    let _ = StageKind::Trunks;
}
