//! Naive longest-processing-time (LPT) scheduler — the ablation baseline
//! for Algorithm 1.
//!
//! LPT ignores the pipeline's stage structure and sharding opportunities:
//! it places whole layers, heaviest first, on the least-loaded chiplet.
//! Comparing it against the throughput matcher quantifies how much of the
//! paper's gain comes from *structure-aware sharding* rather than from
//! mere load balancing (see `npu-experiments::ablations`).

use npu_dnn::PerceptionPipeline;
use npu_maestro::CostModel;
use npu_mcm::{ChipletId, McmPackage};
use npu_tensor::float;

use crate::plan::{LayerPlan, ModelPlan, Schedule, StagePlan};

/// Builds an LPT schedule: whole layers, no sharding, global least-loaded
/// placement.
pub fn lpt_schedule(
    pipeline: &PerceptionPipeline,
    pkg: &McmPackage,
    model: &dyn CostModel,
) -> Schedule {
    let mut load: Vec<(ChipletId, f64)> = pkg.ids().map(|c| (c, 0.0)).collect();

    // Collect every (stage, model-instance, layer) with its cost on the
    // first chiplet's accelerator (homogeneous packages).
    let ref_acc = pkg.chiplet(ChipletId(0)).accelerator();
    struct Item {
        stage: usize,
        model: usize,
        layer: npu_dnn::LayerId,
        time: f64,
    }
    let mut skeleton: Vec<StagePlan> = Vec::new();
    let mut items: Vec<Item> = Vec::new();

    for (si, stage) in pipeline.stages().iter().enumerate() {
        let mut models = Vec::new();
        for sm in stage.models() {
            for inst in 0..sm.instances() {
                let mi = models.len();
                for (id, layer) in sm.graph().iter() {
                    items.push(Item {
                        stage: si,
                        model: mi,
                        layer: id,
                        time: model.layer_cost(layer, ref_acc).latency.as_secs(),
                    });
                }
                models.push(ModelPlan::on_single_chiplet(
                    format!("{}#{inst}", sm.graph().name()),
                    sm.graph().clone(),
                    ChipletId(0),
                ));
            }
        }
        skeleton.push(StagePlan {
            kind: stage.kind(),
            models,
            region: pkg.ids().collect(),
        });
    }

    // Heaviest first onto the least-loaded chiplet.
    float::total_sort_desc_by_key(&mut items, |item| item.time);
    for item in items {
        let (idx, _) = float::total_min_by_key(load.iter().enumerate(), |&(_, &(_, t))| t)
            .expect("non-empty package");
        let chiplet = load[idx].0;
        load[idx].1 += item.time;
        let lp = skeleton[item.stage].models[item.model].layer_plan_mut(item.layer);
        *lp = LayerPlan::single(lp.source.clone(), chiplet);
    }

    Schedule { stages: skeleton }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::throughput_match::{MatcherConfig, ThroughputMatcher};
    use crate::validate::validate_schedule;
    use npu_dnn::PerceptionConfig;
    use npu_maestro::FittedMaestro;
    use npu_tensor::Dtype;

    #[test]
    fn lpt_is_structurally_valid() {
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let s = lpt_schedule(&pipeline, &pkg, &model);
        assert!(validate_schedule(&s, &pkg).is_empty());
        // No sharding anywhere.
        for stage in &s.stages {
            for mp in &stage.models {
                for lp in &mp.layers {
                    assert_eq!(lp.parts(), 1);
                }
            }
        }
    }

    #[test]
    fn throughput_matching_beats_lpt() {
        // The ablation claim: load balancing alone cannot break the
        // T_FUSE FFN bottleneck — only sharding can.
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let lpt = evaluate(
            &lpt_schedule(&pipeline, &pkg, &model),
            &pkg,
            &model,
            Dtype::Fp16,
        );
        let matched = ThroughputMatcher::new(&model, MatcherConfig::default())
            .match_throughput(&pipeline, &pkg);
        assert!(
            matched.report.pipe.as_secs() < lpt.pipe.as_secs() * 0.25,
            "matcher {} vs LPT {}",
            matched.report.pipe,
            lpt.pipe
        );
    }
}
