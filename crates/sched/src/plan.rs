//! Schedule representation: layers → chiplet shards.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::{Graph, Layer, LayerId, StageKind};
use npu_mcm::ChipletId;

/// One shard of a layer placed on a chiplet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardAssignment {
    /// The (possibly sliced) layer to execute.
    pub layer: Layer,
    /// The chiplet executing it.
    pub chiplet: ChipletId,
}

/// The placement of one source layer: one or more shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// The original (unsharded) layer.
    pub source: Layer,
    /// Shards in slice order; always non-empty.
    pub shards: Vec<ShardAssignment>,
}

impl LayerPlan {
    /// Places the whole layer on one chiplet.
    pub fn single(layer: Layer, chiplet: ChipletId) -> Self {
        LayerPlan {
            shards: vec![ShardAssignment {
                layer: layer.clone(),
                chiplet,
            }],
            source: layer,
        }
    }

    /// Number of shards.
    pub fn parts(&self) -> u64 {
        self.shards.len() as u64
    }

    /// Chiplets hosting this layer.
    pub fn chiplets(&self) -> impl Iterator<Item = ChipletId> + '_ {
        self.shards.iter().map(|s| s.chiplet)
    }
}

/// The placement of one model instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPlan {
    /// Instance name, e.g. `fe_bfpn#3`.
    pub name: String,
    /// The model graph (dependencies between the layer plans).
    pub graph: Graph,
    /// One plan per graph layer, in topological (id) order.
    pub layers: Vec<LayerPlan>,
}

impl ModelPlan {
    /// Places every layer of `graph` on `chiplet`.
    pub fn on_single_chiplet(name: impl Into<String>, graph: Graph, chiplet: ChipletId) -> Self {
        let layers = graph
            .iter()
            .map(|(_, l)| LayerPlan::single(l.clone(), chiplet))
            .collect();
        ModelPlan {
            name: name.into(),
            graph,
            layers,
        }
    }

    /// The plan for a layer id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model's graph.
    pub fn layer_plan(&self, id: LayerId) -> &LayerPlan {
        &self.layers[id.index()]
    }

    /// Mutable plan for a layer id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model's graph.
    pub fn layer_plan_mut(&mut self, id: LayerId) -> &mut LayerPlan {
        &mut self.layers[id.index()]
    }

    /// All chiplets this model touches.
    pub fn chiplets(&self) -> BTreeSet<ChipletId> {
        self.layers.iter().flat_map(|lp| lp.chiplets()).collect()
    }
}

/// The placement of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Which stage this is.
    pub kind: StageKind,
    /// Model instance placements.
    pub models: Vec<ModelPlan>,
    /// The chiplet region initially allocated to the stage.
    pub region: Vec<ChipletId>,
}

impl StagePlan {
    /// All chiplets actually used by the stage.
    pub fn chiplets_used(&self) -> BTreeSet<ChipletId> {
        self.models.iter().flat_map(|m| m.chiplets()).collect()
    }
}

/// A complete pipeline schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Stage plans in pipeline order.
    pub stages: Vec<StagePlan>,
}

impl Schedule {
    /// The plan for a stage kind, if present.
    pub fn stage(&self, kind: StageKind) -> Option<&StagePlan> {
        self.stages.iter().find(|s| s.kind == kind)
    }

    /// All chiplets used by any stage.
    pub fn chiplets_used(&self) -> BTreeSet<ChipletId> {
        self.stages.iter().flat_map(|s| s.chiplets_used()).collect()
    }

    /// Total shard count (scheduled work items).
    pub fn items(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|s| &s.models)
            .flat_map(|m| &m.layers)
            .map(|lp| lp.shards.len())
            .sum()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stage in &self.stages {
            writeln!(
                f,
                "{}: {} models, {} chiplets",
                stage.kind,
                stage.models.len(),
                stage.chiplets_used().len()
            )?;
            for m in &stage.models {
                let sharded: Vec<String> = m
                    .layers
                    .iter()
                    .filter(|lp| lp.parts() > 1)
                    .map(|lp| format!("{}x{}", lp.source.name(), lp.parts()))
                    .collect();
                writeln!(
                    f,
                    "  {} on {:?}{}",
                    m.name,
                    m.chiplets().iter().map(|c| c.0).collect::<Vec<_>>(),
                    if sharded.is_empty() {
                        String::new()
                    } else {
                        format!(" [shards: {}]", sharded.join(", "))
                    }
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::models::attention::{fusion_block, FusionConfig};

    #[test]
    fn single_chiplet_model_plan() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let m = ModelPlan::on_single_chiplet("s_fuse", g.clone(), ChipletId(9));
        assert_eq!(m.layers.len(), g.len());
        assert_eq!(m.chiplets().len(), 1);
        for lp in &m.layers {
            assert_eq!(lp.parts(), 1);
        }
    }

    #[test]
    fn schedule_accounting() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let stage = StagePlan {
            kind: StageKind::SpatialFusion,
            models: vec![ModelPlan::on_single_chiplet("s", g, ChipletId(1))],
            region: vec![ChipletId(1), ChipletId(2)],
        };
        let s = Schedule {
            stages: vec![stage],
        };
        assert_eq!(s.items(), 5);
        assert_eq!(s.chiplets_used().len(), 1);
        assert!(s.stage(StageKind::SpatialFusion).is_some());
        assert!(s.stage(StageKind::Trunks).is_none());
        assert!(s.to_string().contains("S_FUSE"));
    }
}
