//! Context-aware lane computing (paper §V-C, Fig. 11).
//!
//! The lane-prediction trunk only processes grid regions deemed relevant;
//! this module sweeps the retained-context fraction and reports the lane
//! trunk's single-chiplet latency and energy, reproducing the Fig. 11
//! trade-off (≈60% retention meets the 82 ms pipelining constraint).

use serde::{Deserialize, Serialize};

use npu_dnn::models::lane::{lane_trunk, LaneConfig};
use npu_maestro::{graph_cost, Accelerator, CostModel};
use npu_tensor::{Joules, Seconds};

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextPoint {
    /// Percent of grid context retained.
    pub retained_pct: f64,
    /// Lane trunk latency on one OS chiplet.
    pub latency: Seconds,
    /// Lane trunk energy.
    pub energy: Joules,
}

/// Sweeps the retained-context fractions of Fig. 11 (100% → 10%).
pub fn lane_context_sweep(
    base: &LaneConfig,
    model: &dyn CostModel,
    acc: &Accelerator,
) -> Vec<ContextPoint> {
    [1.0, 0.9, 0.75, 0.6, 0.5, 0.4, 0.25, 0.1]
        .iter()
        .map(|&f| {
            let graph = lane_trunk(&base.clone().with_context_fraction(f));
            let cost = graph_cost(model, &graph, acc);
            ContextPoint {
                retained_pct: f * 100.0,
                latency: cost.serial_latency(),
                energy: cost.energy(),
            }
        })
        .collect()
}

/// The largest retained fraction whose latency meets `constraint`, if any.
pub fn max_feasible_retention(points: &[ContextPoint], constraint: Seconds) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.latency <= constraint)
        .map(|p| p.retained_pct)
        .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_maestro::FittedMaestro;

    fn sweep() -> Vec<ContextPoint> {
        lane_context_sweep(
            &LaneConfig::default(),
            &FittedMaestro::new(),
            &Accelerator::shidiannao_like(256),
        )
    }

    #[test]
    fn latency_decreases_with_context() {
        let pts = sweep();
        for pair in pts.windows(2) {
            assert!(pair[1].latency <= pair[0].latency);
            assert!(pair[1].energy <= pair[0].energy);
        }
    }

    #[test]
    fn full_context_violates_82ms_and_60pct_meets_it() {
        let pts = sweep();
        let constraint = Seconds::from_millis(82.0);
        assert!(
            pts[0].latency > constraint,
            "full context: {}",
            pts[0].latency
        );
        let feasible = max_feasible_retention(&pts, constraint).unwrap();
        // Paper: "Around 60% computing satisfies the latency constraint."
        assert!(
            (50.0..=75.0).contains(&feasible),
            "feasible retention {feasible}%"
        );
    }
}
