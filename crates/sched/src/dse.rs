//! Trunks design-space exploration with heterogeneous integration
//! (paper §IV-C, Table I).
//!
//! The trunk models (occupancy, lane prediction, detection heads) are
//! diverse: lane prediction is attention-bound (strictly OS-affine), the
//! detection heads are conv-bound (WS-energy-affine), and the occupancy
//! deconvolution tower sits in between. The paper brute-force searches
//! chiplet assignments and Het(k) configurations (k WS chiplets inside the
//! OS trunks quadrant), scoring by
//! `Score = -EDP if no chiplet exceeds L_cstr, else -inf`.
//!
//! The search here works at the paper's granularity — *whole layers/layer
//! groups* move between chiplets (no intra-layer sharding): occupancy may
//! stay intact or dedicate chiplets to its heavy deconvolution levels, the
//! lane trunk spreads its per-level context-K/V projections, detection
//! heads and the light occupancy layers may migrate to WS chiplets.
//!
//! Reproduction note (see EXPERIMENTS.md): our brute force finds a
//! stronger homogeneous-OS reference than the paper's (it isolates the
//! dominant deconvolution level), so the Het(k) gain appears mainly in
//! energy/EDP rather than in pipelining latency; the qualitative Table I
//! conclusions (heterogeneity reduces energy and EDP at unchanged E2E,
//! DET heads save ~35% on WS, WS-only is ~6× slower) all hold.

use serde::{Deserialize, Serialize};

use npu_dnn::{PerceptionPipeline, StageKind};
use npu_maestro::CostModel;
use npu_mcm::hetero::{het_candidates, with_ws_chiplets};
use npu_mcm::{stage_regions, ChipletId, McmPackage};
use npu_study::{Axis, Grid, Study};
use npu_tensor::{float, Dtype, Seconds};

use crate::eval::{evaluate, EvalReport};
use crate::plan::{LayerPlan, ModelPlan, Schedule, StagePlan};

/// DSE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DseConfig {
    /// The pipelining-latency constraint (paper: 85 ms).
    pub latency_constraint: Seconds,
    /// Optional stage end-to-end budget: heterogeneous configurations must
    /// not stretch the trunk stage's critical path (the paper's Table I
    /// keeps E2E within +0.1% of the OS reference).
    pub e2e_budget: Option<Seconds>,
    /// NoP accounting datatype.
    pub dtype: Dtype,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            latency_constraint: Seconds::from_millis(85.0),
            e2e_budget: None,
            dtype: Dtype::Fp16,
        }
    }
}

/// Which trunks-quadrant hardware variant to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrunkVariant {
    /// All nine chiplets OS (the reference configuration).
    OsOnly,
    /// All nine chiplets WS (reported unsharded, as in the paper).
    WsOnly,
    /// `k` WS chiplets integrated into the OS quadrant.
    Het(usize),
}

impl TrunkVariant {
    /// Display label matching Table I's columns.
    pub fn label(self) -> String {
        match self {
            TrunkVariant::OsOnly => "OS".to_string(),
            TrunkVariant::WsOnly => "WS".to_string(),
            TrunkVariant::Het(k) => format!("Het({k})"),
        }
    }
}

/// Result of exploring one variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// Variant explored.
    pub variant: String,
    /// Best-scoring schedule's evaluation.
    pub report: EvalReport,
    /// The winning schedule.
    pub schedule: Schedule,
    /// Whether the latency constraint is met.
    pub feasible: bool,
    /// Number of configurations evaluated.
    pub configs_searched: usize,
}

/// Occupancy-tower placement granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OccSplit {
    /// Whole tower on one chiplet.
    Intact,
    /// The heaviest deconv level gets a dedicated chiplet.
    Deconv4Dedicated,
    /// The two heaviest levels get dedicated chiplets.
    Deconv43Dedicated,
}

/// One point of the search space.
#[derive(Debug, Clone, Copy)]
struct Combo {
    occ_split: OccSplit,
    /// Light occupancy layers (projection, levels 1-2, head) on WS.
    occ_small_ws: bool,
    /// Detection heads on WS chiplets.
    det_ws: bool,
    /// All detection heads grouped on one chiplet.
    det_grouped: bool,
}

/// Explores one trunk variant by brute force and returns the best
/// (minimum-EDP) feasible configuration, or the minimum-pipe configuration
/// if nothing is feasible.
///
/// The search is a one-axis [`Study`] over the combo enumeration: points
/// are scored on the `npu-par` worker pool behind the study's shared
/// memoized cost model, and the winner is picked with the study's
/// first-minimum `argmin_by` — so the winning configuration, including
/// tie-breaks, is bit-identical to the serial search at any jobs count.
pub fn explore_trunks(
    pipeline: &PerceptionPipeline,
    pkg: &McmPackage,
    variant: TrunkVariant,
    model: &dyn CostModel,
    cfg: DseConfig,
) -> DseResult {
    let region = stage_regions(pkg, 4)[3].clone();
    let (het_pkg, ws_ids) = match variant {
        TrunkVariant::OsOnly => (pkg.clone(), Vec::new()),
        TrunkVariant::WsOnly => {
            let ids = region.clone();
            (with_ws_chiplets(pkg, &ids), ids)
        }
        TrunkVariant::Het(k) => {
            let ids = het_candidates(&region, k);
            (with_ws_chiplets(pkg, &ids), ids)
        }
    };
    let os_pool: Vec<ChipletId> = region
        .iter()
        .filter(|c| !ws_ids.contains(c))
        .copied()
        .collect();

    let trunk_stage = pipeline.stage(StageKind::Trunks);

    // Score every combo on the worker pool; each point is independent.
    let run = Study::new(
        "trunk-dse",
        Grid::of(Axis::new("combo", enumerate_combos(variant))),
        model,
    )
    .run(|combo, model| -> Option<(Schedule, EvalReport, bool)> {
        let stage_plan = build_stage_plan(
            trunk_stage,
            combo,
            &os_pool,
            &ws_ids,
            variant,
            model,
            &het_pkg,
        )?;
        let schedule = Schedule {
            stages: vec![stage_plan],
        };
        let report = evaluate(&schedule, &het_pkg, model, cfg.dtype);
        let feasible =
            report.pipe <= cfg.latency_constraint && cfg.e2e_budget.is_none_or(|b| report.e2e <= b);
        Some((schedule, report, feasible))
    });

    let searched = run.metrics().iter().flatten().count();
    // npu-lint: allow(D005) debug tracing gate: prints to stderr only, never affects returned results
    if std::env::var("DSE_DEBUG").is_ok() {
        for (combo, entry) in run.iter() {
            let Some((_, report, feasible)) = entry else {
                continue;
            };
            eprintln!(
                "combo {:?} pipe={:.1}ms e={:.1}mJ feas={}",
                combo,
                report.pipe.as_millis(),
                report.energy().as_millijoules(),
                feasible
            );
        }
    }

    // Feasible configs score by EDP (lower better); infeasible ones by
    // a large penalty plus pipe so the least-bad is kept as fallback.
    // `argmin_by` folds in enumeration order with strict `<`, keeping the
    // first minimum exactly as the old serial loop did.
    let best = run
        .argmin_by(|_, entry| {
            entry.as_ref().map(|(_, report, feasible)| {
                if *feasible {
                    report.edp().as_joule_secs()
                } else {
                    1e6 + report.pipe.as_secs()
                }
            })
        })
        .expect("search space is never empty");
    let (schedule, report, feasible) = run
        .into_metrics()
        .swap_remove(best)
        .expect("winning combo evaluated");
    DseResult {
        variant: variant.label(),
        report,
        schedule,
        feasible,
        configs_searched: searched,
    }
}

/// Explores all four Table I variants.
pub fn table1_variants(
    pipeline: &PerceptionPipeline,
    pkg: &McmPackage,
    model: &dyn CostModel,
    cfg: DseConfig,
) -> Vec<DseResult> {
    // The OS reference sets the E2E budget the heterogeneous variants must
    // respect (paper Table I: E2E drifts by +0.1% only). Each
    // explore_trunks call memoizes its own variant's layer costs; the
    // cross-variant repeats are a few hundred cheap queries, not worth a
    // second cache layer here.
    let os = explore_trunks(pipeline, pkg, TrunkVariant::OsOnly, model, cfg);
    let budget = DseConfig {
        e2e_budget: Some(os.report.e2e * 1.02),
        ..cfg
    };
    let mut out = vec![os];
    for v in [
        TrunkVariant::WsOnly,
        TrunkVariant::Het(2),
        TrunkVariant::Het(4),
    ] {
        out.push(explore_trunks(pipeline, pkg, v, model, budget));
    }
    out
}

fn enumerate_combos(variant: TrunkVariant) -> Vec<Combo> {
    if matches!(variant, TrunkVariant::WsOnly) {
        // The paper reports the WS column as the plain WS mapping: one
        // chiplet per model.
        return vec![Combo {
            occ_split: OccSplit::Intact,
            occ_small_ws: true,
            det_ws: true,
            det_grouped: false,
        }];
    }
    let ws_allowed = !matches!(variant, TrunkVariant::OsOnly);
    let mut combos = Vec::new();
    for occ_split in [
        OccSplit::Intact,
        OccSplit::Deconv4Dedicated,
        OccSplit::Deconv43Dedicated,
    ] {
        for occ_small_ws in [false, true] {
            for det_ws in [false, true] {
                for det_grouped in [false, true] {
                    if (occ_small_ws || det_ws) && !ws_allowed {
                        continue;
                    }
                    combos.push(Combo {
                        occ_split,
                        occ_small_ws,
                        det_ws,
                        det_grouped,
                    });
                }
            }
        }
    }
    combos
}

/// Load-aware placer: assigns work units to the least-busy chiplet of the
/// requested pool, tracking estimated busy time.
struct Packer<'p> {
    os: Vec<(ChipletId, f64)>,
    ws: Vec<(ChipletId, f64)>,
    model: &'p dyn CostModel,
    pkg: &'p McmPackage,
}

impl<'p> Packer<'p> {
    fn new(
        os_pool: &[ChipletId],
        ws_pool: &[ChipletId],
        model: &'p dyn CostModel,
        pkg: &'p McmPackage,
    ) -> Self {
        Packer {
            os: os_pool.iter().map(|&c| (c, 0.0)).collect(),
            ws: ws_pool.iter().map(|&c| (c, 0.0)).collect(),
            model,
            pkg,
        }
    }

    /// Places a group of layers on the least-busy chiplet of the pool.
    fn place(&mut self, layers: &[&npu_dnn::Layer], ws: bool) -> ChipletId {
        let pool = if ws { &mut self.ws } else { &mut self.os };
        let (idx, _) = float::total_min_by_key(pool.iter().enumerate(), |&(_, &(_, t))| t)
            .expect("pool not empty");
        let chiplet = pool[idx].0;
        let acc = self.pkg.chiplet(chiplet).accelerator();
        let time: f64 = layers
            .iter()
            .map(|l| self.model.layer_cost(l, acc).latency.as_secs())
            .sum();
        pool[idx].1 += time;
        chiplet
    }
}

/// Builds a trunk stage plan for one combo, or `None` if the combo needs
/// WS chiplets the variant does not have.
fn build_stage_plan(
    trunk_stage: &npu_dnn::Stage,
    combo: &Combo,
    os_pool: &[ChipletId],
    ws_pool: &[ChipletId],
    variant: TrunkVariant,
    model: &dyn CostModel,
    pkg: &McmPackage,
) -> Option<StagePlan> {
    if (combo.occ_small_ws || combo.det_ws) && ws_pool.is_empty() {
        return None;
    }
    let ws_only = matches!(variant, TrunkVariant::WsOnly);
    if os_pool.is_empty() && !ws_only {
        return None;
    }

    let mut packer = Packer::new(os_pool, ws_pool, model, pkg);
    let mut models = Vec::new();
    let mut det_host: Option<ChipletId> = None;

    for sm in trunk_stage.models() {
        for inst in 0..sm.instances() {
            let graph = sm.graph().clone();
            let name = format!("{}#{inst}", graph.name());
            let is_det = graph.name().starts_with("det");
            let is_lane = graph.name() == "lane";
            let is_occ = graph.name() == "occupancy";

            let all: Vec<&npu_dnn::Layer> = graph.iter().map(|(_, l)| l).collect();

            let layers: Vec<LayerPlan> = if is_det {
                let host = if combo.det_grouped {
                    *det_host.get_or_insert_with(|| packer.place(&all, combo.det_ws || ws_only))
                } else {
                    packer.place(&all, combo.det_ws || ws_only)
                };
                graph
                    .iter()
                    .map(|(_, l)| LayerPlan::single(l.clone(), host))
                    .collect()
            } else if is_lane {
                // Lane host + one chiplet per level's context-K/V
                // projection: the K/V projections dominate and must spread
                // for any feasibility (Fig. 11).
                let kv: Vec<&npu_dnn::Layer> = all
                    .iter()
                    .copied()
                    .filter(|l| l.name().ends_with(".ctx_kv"))
                    .collect();
                let rest: Vec<&npu_dnn::Layer> = all
                    .iter()
                    .copied()
                    .filter(|l| !l.name().ends_with(".ctx_kv"))
                    .collect();
                let host = packer.place(&rest, ws_only);
                let kv_hosts: Vec<ChipletId> = kv
                    .iter()
                    .map(|l| {
                        if ws_only {
                            host
                        } else {
                            packer.place(&[*l], false)
                        }
                    })
                    .collect();
                let mut kv_iter = kv_hosts.into_iter();
                graph
                    .iter()
                    .map(|(_, l)| {
                        if l.name().ends_with(".ctx_kv") && !ws_only {
                            LayerPlan::single(
                                l.clone(),
                                kv_iter.next().expect("one host per kv layer"),
                            )
                        } else {
                            LayerPlan::single(l.clone(), host)
                        }
                    })
                    .collect()
            } else if is_occ {
                let heavy4: Vec<&npu_dnn::Layer> = all
                    .iter()
                    .copied()
                    .filter(|l| l.name() == "occupancy.deconv4")
                    .collect();
                let heavy3: Vec<&npu_dnn::Layer> = all
                    .iter()
                    .copied()
                    .filter(|l| l.name() == "occupancy.deconv3")
                    .collect();
                let (d4_host, d3_host) = match combo.occ_split {
                    _ if ws_only => (None, None),
                    OccSplit::Intact => (None, None),
                    OccSplit::Deconv4Dedicated => (Some(packer.place(&heavy4, false)), None),
                    OccSplit::Deconv43Dedicated => {
                        let d4 = packer.place(&heavy4, false);
                        let d3 = packer.place(&heavy3, false);
                        (Some(d4), Some(d3))
                    }
                };
                // The prediction head stays with the dedicated deconv4
                // chiplet: its full-resolution input (~100 MB) must never
                // cross the NoP.
                let small: Vec<&npu_dnn::Layer> = all
                    .iter()
                    .copied()
                    .filter(|l| {
                        (d4_host.is_none() || l.name() != "occupancy.deconv4")
                            && (d3_host.is_none() || l.name() != "occupancy.deconv3")
                            && (d4_host.is_none() || l.name() != "occupancy.head")
                    })
                    .collect();
                let small_host = packer.place(&small, combo.occ_small_ws || ws_only);
                graph
                    .iter()
                    .map(|(_, l)| {
                        let host = match l.name() {
                            "occupancy.deconv4" => d4_host.unwrap_or(small_host),
                            "occupancy.deconv3" => d3_host.unwrap_or(small_host),
                            "occupancy.head" => d4_host.unwrap_or(small_host),
                            _ => small_host,
                        };
                        LayerPlan::single(l.clone(), host)
                    })
                    .collect()
            } else {
                let host = packer.place(&all, ws_only);
                graph
                    .iter()
                    .map(|(_, l)| LayerPlan::single(l.clone(), host))
                    .collect()
            };

            models.push(ModelPlan {
                name,
                graph,
                layers,
            });
        }
    }

    let mut region: Vec<ChipletId> = os_pool.to_vec();
    region.extend_from_slice(ws_pool);
    Some(StagePlan {
        kind: StageKind::Trunks,
        models,
        region,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::PerceptionConfig;
    use npu_maestro::FittedMaestro;

    fn run(variant: TrunkVariant) -> DseResult {
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        explore_trunks(&pipeline, &pkg, variant, &model, DseConfig::default())
    }

    #[test]
    fn os_only_is_feasible_and_within_band() {
        let r = run(TrunkVariant::OsOnly);
        assert!(r.feasible, "pipe {}", r.report.pipe);
        // Paper Table I: OS pipe 87.9 ms; our stronger reference isolates
        // the dominant deconv level and lands lower, still same decade.
        assert!(
            (40.0..90.0).contains(&r.report.pipe.as_millis()),
            "pipe {}",
            r.report.pipe
        );
        assert!(r.configs_searched >= 6);
    }

    #[test]
    fn ws_only_violates_constraint_badly() {
        let os = run(TrunkVariant::OsOnly);
        let ws = run(TrunkVariant::WsOnly);
        assert!(!ws.feasible);
        let ratio = ws.report.e2e / os.report.e2e;
        // Paper: 605.7 / 91.2 ≈ 6.6x.
        assert!((4.0..12.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn het_variants_beat_os_on_energy_and_edp() {
        // table1_variants applies the paper's E2E-neutrality budget.
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let all = table1_variants(&pipeline, &pkg, &model, DseConfig::default());
        let get = |l: &str| all.iter().find(|v| v.variant == l).unwrap();
        let (os, het2, het4) = (get("OS"), get("Het(2)"), get("Het(4)"));
        assert!(het2.feasible && het4.feasible);
        // Paper Table I: Het configurations reduce energy (-1.1%/-6.2%)
        // and EDP at essentially unchanged E2E.
        assert!(het2.report.energy() < os.report.energy());
        assert!(het4.report.energy() < os.report.energy());
        assert!(het4.report.energy() <= het2.report.energy());
        assert!(het2.report.edp().as_joule_secs() <= os.report.edp().as_joule_secs());
        let e2e_drift = (het4.report.e2e / os.report.e2e - 1.0).abs();
        assert!(e2e_drift < 0.05, "e2e drift {e2e_drift:.3}");
    }

    #[test]
    fn ws_only_has_lowest_raw_energy() {
        // Paper Table I: WS energy 0.139 J vs OS 0.185 J.
        let os = run(TrunkVariant::OsOnly);
        let ws = run(TrunkVariant::WsOnly);
        let ratio = os.report.energy() / ws.report.energy();
        assert!((1.1..1.8).contains(&ratio), "ratio {ratio:.2}");
    }
}
