//! Design-space sweeps beyond the paper's fixed configurations.
//!
//! * [`chiplet_count_sweep`] — pipelining latency / utilization / energy
//!   as the package grows from a handful of chiplets to two full NPUs:
//!   where does throughput matching saturate?
//! * [`failure_sweep`] — chiplet failure injection: disable `k` chiplets
//!   and re-run Algorithm 1 on the degraded package, measuring graceful
//!   degradation (the modularity argument for chiplets in §I).
//!
//! Every sweep is a thin wrapper over the unified [`Study`] query
//! surface (`npu-study`): one [`Axis`] per swept quantity, cartesian
//! expansion in deterministic input order, execution fanned out on the
//! `npu-par` worker pool behind a shared
//! [`MemoCostModel`](npu_maestro::MemoCostModel); results come back in
//! input order and are bit-identical to a serial run at any jobs count
//! (pin with `npu_par::with_jobs`). Caching is deliberately two-layer:
//! the study's shared cache computes each distinct cost once *across*
//! points, while the matcher's internal per-point cache (see
//! `ThroughputMatcher::new`) absorbs the repeated hits *within* one
//! match — the small double-store on first sight of an entry is the
//! price of sharing safely.

use serde::{Deserialize, Serialize};

use npu_dnn::PerceptionPipeline;
use npu_maestro::{Accelerator, CostModel};
use npu_mcm::McmPackage;
use npu_noc::{LinkParams, Mesh2d};
use npu_study::{Axis, Grid, Study};
use npu_tensor::{Joules, Seconds};

use crate::throughput_match::{MatcherConfig, ThroughputMatcher};

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Swept quantity (chiplet count / failed count).
    pub x: u64,
    /// Matched pipelining latency.
    pub pipe: Seconds,
    /// End-to-end latency.
    pub e2e: Seconds,
    /// Energy per frame.
    pub energy: Joules,
    /// PE utilization over used chiplets.
    pub utilization: f64,
}

/// Builds a `w × h` package of 256-PE OS chiplets.
fn package(w: u32, h: u32) -> McmPackage {
    McmPackage::from_fn(format!("sweep-{w}x{h}"), Mesh2d::new(w, h), |_| {
        Accelerator::shidiannao_like(256)
    })
}

/// Sweeps mesh sizes (each point is `w × h` chiplets of 256 PEs) and
/// matches the pipeline on each.
pub fn chiplet_count_sweep(
    pipeline: &PerceptionPipeline,
    meshes: &[(u32, u32)],
    model: &dyn CostModel,
) -> Vec<SweepPoint> {
    Study::new(
        "chiplet-count",
        Grid::of(Axis::new("mesh", meshes.to_vec())),
        model,
    )
    .run(|&(w, h), model| {
        let pkg = package(w, h);
        let cfg = MatcherConfig {
            allow_fe_split: true,
            ..MatcherConfig::default()
        };
        let outcome = ThroughputMatcher::new(model, cfg).minimize(pipeline, &pkg);
        SweepPoint {
            x: (w * h) as u64,
            pipe: outcome.report.pipe,
            e2e: outcome.report.e2e,
            energy: outcome.report.energy(),
            utilization: outcome.report.utilization_used,
        }
    })
    .into_metrics()
}

/// Failure injection: re-schedules the pipeline on a 6×6 package with the
/// last `k` chiplets disabled (for each `k` in `failed`), modelling field
/// failures of individual chiplets.
///
/// Disabled chiplets are modelled by shrinking the mesh region the
/// scheduler may use: a 6×6 package with `k` failures keeps `36 - k`
/// chiplets.
pub fn failure_sweep(
    pipeline: &PerceptionPipeline,
    failed: &[u64],
    model: &dyn CostModel,
) -> Vec<SweepPoint> {
    Study::new(
        "failure-injection",
        Grid::of(Axis::new("failed", failed.to_vec())),
        model,
    )
    .run(|&k, model| {
        // Remove whole trailing rows/chiplets by rebuilding a smaller
        // mesh: 36 - k chiplets arranged as close to 6x6 as possible.
        let keep = 36u64.saturating_sub(k).max(4);
        let w = 6u32;
        let h = keep.div_ceil(u64::from(w)) as u32;
        let pkg = package(w, h.max(1));
        let outcome = ThroughputMatcher::new(model, MatcherConfig::default())
            .match_throughput(pipeline, &pkg);
        SweepPoint {
            x: k,
            pipe: outcome.report.pipe,
            e2e: outcome.report.e2e,
            energy: outcome.report.energy(),
            utilization: outcome.report.utilization_used,
        }
    })
    .into_metrics()
}

/// One NoP-bandwidth sensitivity point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NopPoint {
    /// Per-chiplet link bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Matched pipelining latency at this bandwidth.
    pub pipe: Seconds,
    /// Aggregate NoP transfer latency as a share of the total per-frame
    /// chiplet busy time (grows as the link starves).
    pub nop_latency_share: f64,
}

/// Sweeps the NoP link bandwidth on the 6×6 package and re-matches the
/// pipeline at each point — probing where the paper's "NoP overheads are
/// two orders of magnitude below compute" conclusion (§IV-D) stops
/// holding.
pub fn nop_bandwidth_sweep(
    pipeline: &PerceptionPipeline,
    bandwidths_gbps: &[f64],
    model: &dyn CostModel,
) -> Vec<NopPoint> {
    // NoP transfer costs depend on the link parameters, not on
    // `CostModel::layer_cost`, so one layer-cost cache is sound across
    // the bandwidth grid.
    Study::new(
        "nop-bandwidth",
        Grid::of(Axis::new("bandwidth_gbps", bandwidths_gbps.to_vec())),
        model,
    )
    .run(|&gbps, model| {
        let link = LinkParams {
            bandwidth_bytes_per_sec: gbps * 1e9,
            ..LinkParams::simba_28nm()
        };
        let pkg = McmPackage::simba_6x6().with_link(link);
        let outcome = ThroughputMatcher::new(model, MatcherConfig::default())
            .match_throughput(pipeline, &pkg);
        let nop_total: f64 = outcome
            .report
            .nop_by_layer
            .iter()
            .map(|(_, l, _)| l.as_secs())
            .sum();
        let busy_total: f64 = outcome.report.busy.iter().map(|(_, b)| b.as_secs()).sum();
        NopPoint {
            bandwidth_gbps: gbps,
            pipe: outcome.report.pipe,
            nop_latency_share: nop_total / busy_total,
        }
    })
    .into_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::PerceptionConfig;
    use npu_maestro::FittedMaestro;

    #[test]
    fn pipe_improves_then_saturates_with_chiplets() {
        let pipeline = PerceptionConfig::default().build();
        let model = FittedMaestro::new();
        let points = chiplet_count_sweep(&pipeline, &[(4, 4), (6, 6), (12, 6)], &model);
        assert_eq!(points.len(), 3);
        // More chiplets never hurt.
        assert!(points[1].pipe <= points[0].pipe);
        assert!(points[2].pipe <= points[1].pipe);
        // The 72-chiplet point roughly halves the 36-chiplet latency
        // (paper Fig. 10), but gains saturate: far from another 2x of the
        // per-chiplet ideal.
        let gain = points[1].pipe / points[2].pipe;
        assert!((1.5..2.5).contains(&gain), "gain {gain:.2}");
    }

    #[test]
    fn nop_conclusion_holds_until_bandwidth_collapses() {
        let pipeline = PerceptionConfig::default().build();
        let model = FittedMaestro::new();
        let pts = nop_bandwidth_sweep(&pipeline, &[100.0, 10.0, 1.0, 0.1], &model);
        // At the paper's 100 GB/s the pipe is compute-bound (~88 ms).
        assert!(
            (80.0..95.0).contains(&pts[0].pipe.as_millis()),
            "{}",
            pts[0].pipe
        );
        // A 10x bandwidth cut barely moves the pipe (the paper's claim).
        let drift = pts[1].pipe / pts[0].pipe;
        assert!(drift < 1.1, "10 GB/s drift {drift:.3}");
        // At 0.1 GB/s the NoP dominates and the conclusion breaks.
        assert!(
            pts[3].pipe.as_secs() > pts[0].pipe.as_secs() * 1.5,
            "0.1 GB/s pipe {}",
            pts[3].pipe
        );
        // Pipe latency is monotone in falling bandwidth, within greedy
        // noise (lower NoP costs can steer the matcher differently).
        for pair in pts.windows(2) {
            assert!(pair[1].pipe.as_secs() >= pair[0].pipe.as_secs() * 0.95);
        }
        // The NoP latency share explodes as the link starves.
        assert!(pts[0].nop_latency_share < 0.05);
        assert!(pts[3].nop_latency_share > 10.0 * pts[0].nop_latency_share);
    }

    #[test]
    fn failures_degrade_gracefully() {
        let pipeline = PerceptionConfig::default().build();
        let model = FittedMaestro::new();
        let points = failure_sweep(&pipeline, &[0, 6, 12], &model);
        // Any failure degrades the pipe vs the healthy package. Note the
        // degradation is NOT monotone in the failure count: quadrant
        // geometry matters more than raw chiplet count (a 6x5 split
        // fragments the FE region worse than 6x4 does) — a real fragility
        // of quadrant-based initial allocation worth knowing about.
        assert!(points[1].pipe.as_secs() > points[0].pipe.as_secs());
        assert!(points[2].pipe.as_secs() > points[0].pipe.as_secs());
        // A third of the package lost degrades throughput by at most ~2.5x
        // (the FE quadrant shrinks below the 8 concurrent instances and
        // cameras start time-sharing chiplets) — the pipeline still runs,
        // the modularity argument of §I.
        for p in &points[1..] {
            let degradation = p.pipe / points[0].pipe;
            assert!(
                (1.0..2.6).contains(&degradation),
                "k={}: degradation {degradation:.2}",
                p.x
            );
        }
    }
}
