//! Algorithm 1: nested greedy throughput matching.
//!
//! The paper schedules the perception pipeline by (1) allocating a chiplet
//! quadrant per stage, (2) choosing the FE+BFPN latency as the base
//! pipelining latency, (3) repeatedly sharding the bottleneck layer of any
//! stage whose pipelining latency exceeds the base (outer loop over
//! stages, inner loop over layers), re-allocating surplus chiplets along
//! the way, until pipelining latencies match or sharding is exhausted.
//!
//! Two modes are provided:
//!
//! * [`ThroughputMatcher::match_throughput`] — match every stage to the
//!   FE+BFPN base latency (the 6×6 study, Figs. 5–8).
//! * [`ThroughputMatcher::minimize`] — keep attacking the global
//!   bottleneck while spare chiplets remain, including splitting the
//!   FE+BFPN into two pipeline sub-stages (the 72-chiplet study, Fig. 10).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use npu_dnn::{LayerId, OpClass, PerceptionPipeline, StageKind};
use npu_maestro::{CostModel, MemoCostModel};
use npu_mcm::{stage_regions, ChipletId, McmPackage};
use npu_tensor::{float, Dtype, Seconds};

use crate::eval::{evaluate, EvalReport};
use crate::plan::{LayerPlan, ModelPlan, Schedule, ShardAssignment, StagePlan};
use crate::shard::{shard_cap, shard_layer};

/// Semantic shard caps per stage (beyond the intrinsic token caps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardCaps {
    /// S_FUSE layers split at camera granularity (8 feature sets).
    pub s_fuse: u64,
    /// T_FUSE layers split at temporal-frame granularity (12 frames).
    pub t_fuse: u64,
    /// Trunk layers split at spatial-block granularity.
    pub trunks: u64,
}

impl Default for ShardCaps {
    fn default() -> Self {
        ShardCaps {
            s_fuse: 8,
            t_fuse: 12,
            trunks: 4,
        }
    }
}

/// Matcher configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Tolerance over the base latency (`pipe ≤ base × (1 + tolerance)`).
    pub tolerance: f64,
    /// Semantic shard caps.
    pub caps: ShardCaps,
    /// Allow splitting FE+BFPN models into two pipeline sub-stages
    /// (enabled for the two-NPU study).
    pub allow_fe_split: bool,
    /// Iteration guard.
    pub max_steps: usize,
    /// NoP accounting datatype.
    pub dtype: Dtype,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            tolerance: 0.05,
            caps: ShardCaps::default(),
            allow_fe_split: false,
            max_steps: 128,
            dtype: Dtype::Fp16,
        }
    }
}

/// One step of the matching trace (Fig. 10's annotations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchStep {
    /// Human-readable action, e.g. `shard t_fuse.ffn -> 6`.
    pub description: String,
    /// Pipelining latency after the step.
    pub pipe: Seconds,
    /// Free (unused) chiplets after the step.
    pub chiplets_remaining: usize,
}

/// The matcher's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchOutcome {
    /// The final schedule.
    pub schedule: Schedule,
    /// Its evaluation.
    pub report: EvalReport,
    /// The step-by-step trace.
    pub trace: Vec<MatchStep>,
}

/// Algorithm 1 implementation.
pub struct ThroughputMatcher<'m> {
    /// The caller's model behind a memoization cache: the matcher
    /// re-evaluates the full schedule after every sharding step, so the
    /// same `(accelerator, layer)` costs repeat hundreds of times per
    /// match. The cache is bit-transparent (see [`MemoCostModel`]).
    model: MemoCostModel<'m>,
    cfg: MatcherConfig,
}

impl<'m> ThroughputMatcher<'m> {
    /// Creates a matcher over a cost model.
    pub fn new(model: &'m dyn CostModel, cfg: MatcherConfig) -> Self {
        ThroughputMatcher {
            model: MemoCostModel::with_dtype(model, cfg.dtype),
            cfg,
        }
    }

    /// Initial allocation (Algorithm 1 line 2): one region per stage; FE
    /// instances one-per-chiplet, fusion stages one layer per chiplet,
    /// trunk models one per chiplet.
    pub fn initial_schedule(&self, pipeline: &PerceptionPipeline, pkg: &McmPackage) -> Schedule {
        let regions = stage_regions(pkg, pipeline.stages().len());
        let stages = pipeline
            .stages()
            .iter()
            .zip(&regions)
            .map(|(stage, region)| {
                let mut models = Vec::new();
                let mut slot = 0usize;
                for sm in stage.models() {
                    for inst in 0..sm.instances() {
                        let name = format!("{}#{inst}", sm.graph().name());
                        let plan = match stage.kind() {
                            StageKind::SpatialFusion | StageKind::TemporalFusion => {
                                // Heavy (linear-class) layers get their own
                                // chiplet; attention and data-movement
                                // layers share one auxiliary chiplet, as in
                                // the paper's Figs. 6-7 layouts.
                                let mut aux: Option<ChipletId> = None;
                                let layers = sm
                                    .graph()
                                    .iter()
                                    .map(|(_, l)| {
                                        let heavy = matches!(l.class(), OpClass::Linear);
                                        let chiplet = if heavy {
                                            let c = region[slot % region.len()];
                                            slot += 1;
                                            c
                                        } else {
                                            *aux.get_or_insert_with(|| {
                                                let c = region[slot % region.len()];
                                                slot += 1;
                                                c
                                            })
                                        };
                                        LayerPlan::single(l.clone(), chiplet)
                                    })
                                    .collect();
                                ModelPlan {
                                    name,
                                    graph: sm.graph().clone(),
                                    layers,
                                }
                            }
                            _ => {
                                // Model-per-chiplet.
                                let c = region[slot % region.len()];
                                slot += 1;
                                ModelPlan::on_single_chiplet(name, sm.graph().clone(), c)
                            }
                        };
                        models.push(plan);
                    }
                }
                StagePlan {
                    kind: stage.kind(),
                    models,
                    region: region.clone(),
                }
            })
            .collect();
        Schedule { stages }
    }

    /// Runs the base-matching mode: every stage's pipelining latency is
    /// brought within tolerance of the FE+BFPN base latency, then surplus
    /// region chiplets absorb further shards of the longest layers.
    pub fn match_throughput(
        &self,
        pipeline: &PerceptionPipeline,
        pkg: &McmPackage,
    ) -> MatchOutcome {
        self.match_throughput_core(pipeline, pkg, true)
    }

    /// Base matching with surplus absorption optional (the minimizing mode
    /// replaces absorption with improvement-gated sharding).
    fn match_throughput_core(
        &self,
        pipeline: &PerceptionPipeline,
        pkg: &McmPackage,
        absorb: bool,
    ) -> MatchOutcome {
        let mut schedule = self.initial_schedule(pipeline, pkg);
        let mut trace = Vec::new();
        let mut report = evaluate(&schedule, pkg, &self.model, self.cfg.dtype);
        trace.push(MatchStep {
            description: "initial quadrant allocation".to_string(),
            pipe: report.pipe,
            chiplets_remaining: self.free_chiplets(&schedule, pkg).len(),
        });

        let mut exhausted: BTreeSet<(usize, usize, LayerId)> = BTreeSet::new();
        for _ in 0..self.cfg.max_steps {
            let base = self.base_latency(&report);
            let limit = base * (1.0 + self.cfg.tolerance);

            // Outer loop: worst bottleneck stage above the base latency.
            let Some(si) = float::total_max_by_key(
                report.per_stage.iter().enumerate().filter(|(i, s)| {
                    schedule.stages[*i].kind != StageKind::FeatureExtraction && s.pipe > limit
                }),
                |(_, s)| s.pipe.as_secs(),
            )
            .map(|(i, _)| i) else {
                break;
            };

            // Inner loop: shard the longest shardable layer of the stage.
            match self.shard_step(&mut schedule, pkg, si, false, &mut exhausted) {
                Some(desc) => {
                    report = evaluate(&schedule, pkg, &self.model, self.cfg.dtype);
                    trace.push(MatchStep {
                        description: desc,
                        pipe: report.pipe,
                        chiplets_remaining: self.free_chiplets(&schedule, pkg).len(),
                    });
                }
                None => break, // sharding exhausted everywhere
            }
        }

        // Surplus absorption: spend remaining free chiplets on deeper
        // shards of each stage's already-sharded layers, in pipeline order
        // (the paper's extra S_FUSE FFN sharding steps: 4-fold, then
        // 8-fold using the FE quadrant's spare chiplet).
        let absorb_stages = if absorb { schedule.stages.len() } else { 0 };
        for si in 0..absorb_stages {
            if schedule.stages[si].kind == StageKind::FeatureExtraction {
                continue;
            }
            for _ in 0..self.cfg.max_steps {
                if self.free_chiplets(&schedule, pkg).is_empty() {
                    break;
                }
                let Some(desc) =
                    self.shard_step(&mut schedule, pkg, si, true, &mut BTreeSet::new())
                else {
                    break;
                };
                report = evaluate(&schedule, pkg, &self.model, self.cfg.dtype);
                trace.push(MatchStep {
                    description: format!("surplus: {desc}"),
                    pipe: report.pipe,
                    chiplets_remaining: self.free_chiplets(&schedule, pkg).len(),
                });
            }
        }

        report = evaluate(&schedule, pkg, &self.model, self.cfg.dtype);
        MatchOutcome {
            schedule,
            report,
            trace,
        }
    }

    /// Runs the minimizing mode (two-NPU study): first match to base, then
    /// keep attacking the global bottleneck chiplet — sharding its longest
    /// layer or splitting FE+BFPN into two pipeline sub-stages — while the
    /// pipelining latency improves.
    pub fn minimize(&self, pipeline: &PerceptionPipeline, pkg: &McmPackage) -> MatchOutcome {
        let MatchOutcome {
            mut schedule,
            mut report,
            mut trace,
        } = self.match_throughput_core(pipeline, pkg, false);

        for _ in 0..self.cfg.max_steps {
            let old_pipe = report.pipe;
            let mut improved = false;

            // Try every stage in descending bottleneck order; within a
            // stage, shard_step's exhaustion set walks its layers. Accept
            // the first step that strictly improves the global pipe.
            let mut order: Vec<usize> = (0..schedule.stages.len()).collect();
            float::total_sort_desc_by_key(&mut order, |&si| report.per_stage[si].pipe.as_secs());

            'stages: for si in order {
                if schedule.stages[si].kind == StageKind::FeatureExtraction {
                    if self.cfg.allow_fe_split {
                        let backup = schedule.clone();
                        if self.split_fe(&mut schedule, pkg) {
                            let new_report = evaluate(&schedule, pkg, &self.model, self.cfg.dtype);
                            if new_report.pipe.as_secs() < old_pipe.as_secs() * 0.999 {
                                report = new_report;
                                trace.push(MatchStep {
                                    description: "split FE+BFPN into two pipeline sub-stages"
                                        .to_string(),
                                    pipe: report.pipe,
                                    chiplets_remaining: self.free_chiplets(&schedule, pkg).len(),
                                });
                                improved = true;
                                break 'stages;
                            }
                            schedule = backup;
                        }
                    }
                    continue;
                }
                // Walk the stage's shardable layers, longest first, until
                // one improves the pipe.
                let mut skip: BTreeSet<(usize, usize, LayerId)> = BTreeSet::new();
                loop {
                    let backup = schedule.clone();
                    let Some(desc) = self.shard_step(&mut schedule, pkg, si, false, &mut skip)
                    else {
                        break;
                    };
                    let new_report = evaluate(&schedule, pkg, &self.model, self.cfg.dtype);
                    if new_report.pipe.as_secs() < old_pipe.as_secs() * 0.999 {
                        report = new_report;
                        trace.push(MatchStep {
                            description: desc,
                            pipe: report.pipe,
                            chiplets_remaining: self.free_chiplets(&schedule, pkg).len(),
                        });
                        improved = true;
                        break 'stages;
                    }
                    // Revert and mark this target as tried.
                    if let Some((mi, target)) = last_target(&backup, &schedule, si) {
                        skip.insert((si, mi, target));
                    } else {
                        schedule = backup;
                        break;
                    }
                    schedule = backup;
                }
            }
            if !improved {
                break;
            }
        }

        report = evaluate(&schedule, pkg, &self.model, self.cfg.dtype);
        MatchOutcome {
            schedule,
            report,
            trace,
        }
    }

    /// The base pipelining latency: the FE stage's pipe latency, or the
    /// minimum stage pipe if the pipeline has no FE stage.
    fn base_latency(&self, report: &EvalReport) -> Seconds {
        report
            .per_stage
            .iter()
            .find(|s| s.kind == StageKind::FeatureExtraction)
            .map(|s| s.pipe)
            .unwrap_or_else(|| {
                report
                    .per_stage
                    .iter()
                    .map(|s| s.pipe)
                    .fold(Seconds::new(f64::MAX), Seconds::min)
            })
    }

    /// Free chiplets: present in the package but hosting no work.
    fn free_chiplets(&self, schedule: &Schedule, pkg: &McmPackage) -> Vec<ChipletId> {
        let used = schedule.chiplets_used();
        pkg.ids().filter(|c| !used.contains(c)).collect()
    }

    /// Semantic shard cap for a layer of a stage.
    fn cap_for(&self, kind: StageKind, layer: &npu_dnn::Layer) -> u64 {
        let semantic = match kind {
            StageKind::FeatureExtraction => 1,
            StageKind::SpatialFusion => self.cfg.caps.s_fuse,
            StageKind::TemporalFusion => self.cfg.caps.t_fuse,
            StageKind::Trunks => self.cfg.caps.trunks,
        };
        semantic.min(shard_cap(layer))
    }

    /// One inner-loop step: shard the longest shardable layer of stage
    /// `si` one level deeper and re-place its shards on the least busy
    /// available chiplets. With `only_sharded`, restricts targets to
    /// layers that are already sharded (the surplus-absorption rule).
    /// Returns a step description, or `None` if the stage has nothing
    /// left to shard.
    fn shard_step(
        &self,
        schedule: &mut Schedule,
        pkg: &McmPackage,
        si: usize,
        only_sharded: bool,
        exhausted: &mut BTreeSet<(usize, usize, LayerId)>,
    ) -> Option<String> {
        let kind = schedule.stages[si].kind;

        // Candidate (model, layer) pairs that can still be sharded: the
        // filters are cheap and stay serial.
        let tried: &BTreeSet<(usize, usize, LayerId)> = exhausted;
        let candidates: Vec<(usize, LayerId, u64)> = schedule.stages[si]
            .models
            .iter()
            .enumerate()
            .flat_map(|(mi, mp)| {
                mp.graph.iter().filter_map(move |(id, _)| {
                    if tried.contains(&(si, mi, id)) {
                        return None;
                    }
                    let lp = mp.layer_plan(id);
                    if lp.source.class() == OpClass::Memory {
                        return None;
                    }
                    if only_sharded && lp.parts() == 1 {
                        return None;
                    }
                    let cap = self.cap_for(kind, &lp.source);
                    if lp.parts() >= cap {
                        return None;
                    }
                    Some((mi, id, lp.parts() + 1))
                })
            })
            .collect();

        // Score candidates by their current worst per-shard time. Scoring
        // is pure and per-candidate independent, so very large stages fan
        // out on the worker pool. The threshold is deliberately high:
        // per-candidate work is microseconds (mostly memo-cache hits),
        // shard_step runs once per match step — often nested inside a
        // sweep-level par_map — and spawning scoped threads that often
        // would cost more than it saves and oversubscribe the host. All
        // paper-scale stages (< 100 candidate layers) stay serial. The
        // fold below walks input order with a strict `>`, so the chosen
        // target is identical to the serial loop's at any jobs count.
        let stage = &schedule.stages[si];
        let times: Vec<Seconds> = npu_par::par_map_threshold(&candidates, 256, |&(mi, id, _)| {
            stage.models[mi]
                .layer_plan(id)
                .shards
                .iter()
                .map(|s| {
                    self.model
                        .layer_cost(&s.layer, pkg.chiplet(s.chiplet).accelerator())
                        .latency
                })
                .fold(Seconds::ZERO, Seconds::max)
        });
        let mut best: Option<(usize, LayerId, Seconds, u64)> = None;
        for (&(mi, id, parts), &shard_time) in candidates.iter().zip(&times) {
            if best
                .as_ref()
                .map(|&(_, _, t, _)| shard_time > t)
                .unwrap_or(true)
            {
                best = Some((mi, id, shard_time, parts));
            }
        }
        let (mi, id, _, parts) = best?;

        // Busy map excluding the target layer's current shards.
        let report = evaluate(schedule, pkg, &self.model, self.cfg.dtype);
        let mut busy: std::collections::BTreeMap<ChipletId, Seconds> =
            report.busy.iter().copied().collect();
        {
            let lp = schedule.stages[si].models[mi].layer_plan(id);
            for s in &lp.shards {
                let t = self
                    .model
                    .layer_cost(&s.layer, pkg.chiplet(s.chiplet).accelerator())
                    .latency;
                if let Some(b) = busy.get_mut(&s.chiplet) {
                    *b = Seconds::new((b.as_secs() - t.as_secs()).max(0.0));
                }
            }
        }

        // Available chiplets: the stage's region plus globally free ones,
        // ordered by projected load (10 ms buckets) with a preference for
        // staying in the stage's own quadrant (NoP locality, Figs. 6-7).
        let shard_time_est = {
            let lp = schedule.stages[si].models[mi].layer_plan(id);
            let ref_acc = pkg.chiplet(schedule.stages[si].region[0]).accelerator();
            self.model.layer_cost(&lp.source, ref_acc).latency / parts as f64
        };
        let used = schedule.chiplets_used();
        let region = schedule.stages[si].region.clone();
        let mut available: Vec<ChipletId> = region.clone();
        available.extend(pkg.ids().filter(|c| !used.contains(c)));
        available.sort();
        available.dedup();
        available.sort_by_key(|c| {
            let b = busy.get(c).copied().unwrap_or(Seconds::ZERO) + shard_time_est;
            let bucket = (b.as_millis() / 10.0) as u64;
            (bucket, !region.contains(c), b.as_micros() as u64)
        });

        let mp = &mut schedule.stages[si].models[mi];
        let source = mp.layer_plan(id).source.clone();
        let Ok(shards) = shard_layer(&source, parts) else {
            exhausted.insert((si, mi, id));
            return self.shard_step(schedule, pkg, si, only_sharded, exhausted);
        };
        let assignments: Vec<ShardAssignment> = shards
            .into_iter()
            .enumerate()
            .map(|(i, layer)| ShardAssignment {
                layer,
                chiplet: available[i % available.len()],
            })
            .collect();
        *mp.layer_plan_mut(id) = LayerPlan {
            source,
            shards: assignments,
        };
        let name = mp.layer_plan(id).source.name().to_string();
        Some(format!("shard {kind} {name} -> {parts}"))
    }

    /// Splits every FE model into two pipeline sub-stages at the cut
    /// balancing the halves, placing the suffix on a free chiplet.
    /// Returns false if there are not enough free chiplets.
    fn split_fe(&self, schedule: &mut Schedule, pkg: &McmPackage) -> bool {
        let Some(si) = schedule
            .stages
            .iter()
            .position(|s| s.kind == StageKind::FeatureExtraction)
        else {
            return false;
        };
        let free = self.free_chiplets(schedule, pkg);
        let n_models = schedule.stages[si].models.len();
        if free.len() < n_models {
            return false;
        }

        for (mi, fresh) in (0..n_models).zip(free) {
            let mp = &mut schedule.stages[si].models[mi];
            // Already split?
            if mp.chiplets().len() > 1 {
                return false;
            }
            let times: Vec<f64> = mp
                .layers
                .iter()
                .map(|lp| {
                    lp.shards
                        .iter()
                        .map(|s| {
                            self.model
                                .layer_cost(&s.layer, pkg.chiplet(s.chiplet).accelerator())
                                .latency
                                .as_secs()
                        })
                        .sum()
                })
                .collect();
            // Cut minimizing the larger pipeline half.
            let total: f64 = times.iter().sum();
            let mut acc = 0.0;
            let mut cut = 0;
            let mut best = f64::MAX;
            for (i, t) in times.iter().enumerate() {
                acc += t;
                let worst_half = acc.max(total - acc);
                if worst_half < best {
                    best = worst_half;
                    cut = i;
                }
            }
            for (i, lp) in mp.layers.iter_mut().enumerate() {
                if i > cut {
                    for s in &mut lp.shards {
                        s.chiplet = fresh;
                    }
                }
            }
        }
        true
    }
}

/// Finds the (model, layer) whose shard count differs between two versions
/// of a stage plan — used by the minimizing loop to mark tried targets.
fn last_target(before: &Schedule, after: &Schedule, si: usize) -> Option<(usize, LayerId)> {
    let (b, a) = (&before.stages[si], &after.stages[si]);
    for (mi, (mb, ma)) in b.models.iter().zip(&a.models).enumerate() {
        for (id, _) in mb.graph.iter() {
            if mb.layer_plan(id).parts() != ma.layer_plan(id).parts() {
                return Some((mi, id));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::PerceptionConfig;
    use npu_maestro::FittedMaestro;

    fn matched() -> MatchOutcome {
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg)
    }

    #[test]
    fn matched_pipe_is_near_fe_base() {
        let out = matched();
        let fe = out.report.stage(StageKind::FeatureExtraction).unwrap().pipe;
        // Paper: ~87 ms overall pipe for the 36-chiplet solution.
        assert!(
            out.report.pipe.as_secs() <= fe.as_secs() * 1.12,
            "pipe {} vs base {}",
            out.report.pipe,
            fe
        );
        assert!((75.0..100.0).contains(&out.report.pipe.as_millis()));
    }

    #[test]
    fn fusion_stages_get_sharded_as_in_figs_6_and_7() {
        let out = matched();
        let t = out.schedule.stage(StageKind::TemporalFusion).unwrap();
        let ffn = t.models[0]
            .layers
            .iter()
            .find(|lp| lp.source.name() == "t_fuse.ffn")
            .unwrap();
        assert!(
            (5..=8).contains(&(ffn.parts() as i32)),
            "paper shards T_FUSE FFN over 6 chiplets, got {}",
            ffn.parts()
        );
        let qkv = t.models[0]
            .layers
            .iter()
            .find(|lp| lp.source.name() == "t_fuse.qkv")
            .unwrap();
        assert_eq!(qkv.parts(), 2, "paper shards T_FUSE QKV over 2 chiplets");
    }

    #[test]
    fn budget_never_exceeded() {
        let out = matched();
        assert!(out.schedule.chiplets_used().len() <= 36);
    }

    #[test]
    fn trace_is_monotonically_improving_overall() {
        let out = matched();
        assert!(out.trace.len() > 3);
        let first = out.trace.first().unwrap().pipe;
        let last = out.trace.last().unwrap().pipe;
        assert!(last <= first);
    }
}
