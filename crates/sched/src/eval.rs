//! Analytical pipeline evaluation of a [`Schedule`].
//!
//! Computes the paper's four reporting metrics for any schedule:
//!
//! * **E2E latency** — one frame's path through all stages: per stage the
//!   maximum over models of the critical path through (sharded) layers,
//!   including NoP gathers, bounded below by per-chiplet serialization.
//! * **Pipelining latency** — the steady-state frame interval: the
//!   maximum per-chiplet busy time per frame (compute + input transfer
//!   serialization).
//! * **Energy** — compute energy plus NoP transmission energy.
//! * **Utilization** — time-weighted active PEs over all package PEs per
//!   pipelining window.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_dnn::StageKind;
use npu_maestro::CostModel;
use npu_mcm::{ChipletId, McmPackage};
use npu_noc::TransferCost;
use npu_tensor::{Bytes, Dtype, Edp, Joules, Seconds};

use crate::plan::Schedule;

/// Per-stage evaluation results (the paper's Figs. 5–8 panels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage kind.
    pub kind: StageKind,
    /// Steady-state pipelining latency of the stage (max busy among its
    /// chiplets).
    pub pipe: Seconds,
    /// One frame's end-to-end time through the stage.
    pub e2e: Seconds,
    /// Compute energy per frame.
    pub compute_energy: Joules,
    /// NoP energy per frame.
    pub nop_energy: Joules,
}

impl StageReport {
    /// Total stage energy.
    pub fn energy(&self) -> Joules {
        self.compute_energy + self.nop_energy
    }

    /// Stage EDP (pipe × energy), as reported in Figs. 5–8.
    pub fn edp(&self) -> Edp {
        self.pipe * self.energy()
    }
}

/// Full-schedule evaluation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// One frame's end-to-end latency through all stages.
    pub e2e: Seconds,
    /// Steady-state pipelining latency (max chiplet busy per frame).
    pub pipe: Seconds,
    /// Compute energy per frame.
    pub compute_energy: Joules,
    /// NoP energy per frame.
    pub nop_energy: Joules,
    /// Time-weighted active-PE fraction per pipelining window, over all
    /// package PEs.
    pub utilization: f64,
    /// Same, but over the PEs of chiplets that host work (the paper's
    /// "utilization across all chiplets' PEs" for the allocated stages).
    pub utilization_used: f64,
    /// Per-stage breakdown.
    pub per_stage: Vec<StageReport>,
    /// Per-chiplet busy time per frame (used chiplets only, ordered).
    pub busy: Vec<(ChipletId, Seconds)>,
    /// NoP cost aggregated by source layer name (Fig. 9 series).
    pub nop_by_layer: Vec<(String, Seconds, Joules)>,
}

impl EvalReport {
    /// Total energy per frame.
    pub fn energy(&self) -> Joules {
        self.compute_energy + self.nop_energy
    }

    /// Energy-delay product (pipe × energy).
    pub fn edp(&self) -> Edp {
        self.pipe * self.energy()
    }

    /// Sustained throughput in frames/second.
    pub fn throughput_fps(&self) -> f64 {
        if self.pipe.is_zero() {
            0.0
        } else {
            1.0 / self.pipe.as_secs()
        }
    }

    /// The stage report of a kind.
    pub fn stage(&self, kind: StageKind) -> Option<&StageReport> {
        self.per_stage.iter().find(|s| s.kind == kind)
    }
}

/// Rough input volume of a source layer (sensor ingress): reduction extent
/// × input spatial extent.
fn input_bytes_estimate(layer: &npu_dnn::Layer, dtype: Dtype) -> Bytes {
    let d = layer.dims();
    let elems = d.c * (d.y * d.stride) * (d.x * d.stride);
    dtype.sized(elems)
}

fn slice_bytes(b: Bytes, parts: u64) -> Bytes {
    Bytes::new(b.as_u64().div_ceil(parts))
}

/// Evaluates a schedule on a package under a cost model.
///
/// `dtype` sets the NoP accounting width for feature maps (paper: 2 B per
/// element).
pub fn evaluate(
    schedule: &Schedule,
    pkg: &McmPackage,
    model: &dyn CostModel,
    dtype: Dtype,
) -> EvalReport {
    let link = pkg.link();
    let mut busy: BTreeMap<ChipletId, Seconds> = BTreeMap::new();
    let mut stage_busy: Vec<BTreeMap<ChipletId, Seconds>> = Vec::new();
    let mut nop_by_layer: BTreeMap<String, (Seconds, Joules)> = BTreeMap::new();
    let mut active_weighted = 0.0_f64; // PE-seconds
    let mut per_stage_partial: Vec<(StageKind, Seconds, Joules, Joules)> = Vec::new();

    // Chiplets emitting the previous stage's outputs (with the producing
    // layer's name for NoP attribution); empty = DRAM ingress.
    let mut prev_exits: Vec<(ChipletId, Bytes, String)> = Vec::new();

    for stage in &schedule.stages {
        let mut local_busy: BTreeMap<ChipletId, Seconds> = BTreeMap::new();
        let mut compute_energy = Joules::ZERO;
        let mut nop_energy = Joules::ZERO;
        let mut exits: Vec<(ChipletId, Bytes, String)> = Vec::new();
        let mut stage_path = Seconds::ZERO;

        for mp in &stage.models {
            let mut path: Vec<Seconds> = vec![Seconds::ZERO; mp.graph.len()];
            for (id, _) in mp.graph.iter() {
                let lp = mp.layer_plan(id);
                let parts = lp.parts();
                let preds = mp.graph.preds(id);
                let mut layer_time = Seconds::ZERO;

                for shard in &lp.shards {
                    let acc = pkg.chiplet(shard.chiplet).accelerator();
                    let cost = model.layer_cost(&shard.layer, acc);

                    // Input transfers for this shard: one store-and-forward
                    // move per producing shard, attributed to the producer
                    // (the paper's Fig. 9 charges a layer for shipping its
                    // output feature map).
                    let mut srcs: Vec<(String, Bytes, u64)> = Vec::new();
                    if preds.is_empty() {
                        if prev_exits.is_empty() {
                            let bytes = slice_bytes(input_bytes_estimate(&lp.source, dtype), parts);
                            srcs.push((
                                lp.source.name().to_string(),
                                bytes,
                                pkg.dram_hops(shard.chiplet),
                            ));
                        } else {
                            for (c, b, label) in &prev_exits {
                                srcs.push((
                                    label.clone(),
                                    slice_bytes(*b, parts),
                                    pkg.hops(*c, shard.chiplet),
                                ));
                            }
                        }
                    } else {
                        for &p in preds {
                            let pred_name = mp.layer_plan(p).source.name().to_string();
                            for ps in &mp.layer_plan(p).shards {
                                srcs.push((
                                    pred_name.clone(),
                                    slice_bytes(ps.layer.output_bytes(dtype), parts),
                                    pkg.hops(ps.chiplet, shard.chiplet),
                                ));
                            }
                        }
                    }
                    let mut transfer = TransferCost::ZERO;
                    for (label, bytes, hops) in srcs {
                        let t = TransferCost::unicast(bytes, hops, link);
                        let entry = nop_by_layer
                            .entry(label)
                            .or_insert((Seconds::ZERO, Joules::ZERO));
                        entry.0 += t.latency;
                        entry.1 += t.energy;
                        transfer = transfer + t;
                    }

                    let shard_time = cost.latency + transfer.latency;
                    *busy.entry(shard.chiplet).or_insert(Seconds::ZERO) += shard_time;
                    *local_busy.entry(shard.chiplet).or_insert(Seconds::ZERO) += shard_time;
                    compute_energy += cost.energy;
                    nop_energy += transfer.energy;
                    active_weighted += cost.active_pes * cost.latency.as_secs();
                    layer_time = layer_time.max(shard_time);
                }

                let pred_path = preds
                    .iter()
                    .map(|&p| path[p.index()])
                    .fold(Seconds::ZERO, Seconds::max);
                path[id.index()] = pred_path + layer_time;
            }

            let model_path = path.iter().copied().fold(Seconds::ZERO, Seconds::max);
            stage_path = stage_path.max(model_path);

            for sink in mp.graph.sinks() {
                for shard in &mp.layer_plan(sink).shards {
                    exits.push((
                        shard.chiplet,
                        shard.layer.output_bytes(dtype),
                        mp.layer_plan(sink).source.name().to_string(),
                    ));
                }
            }
        }

        // Stage E2E: parallel-model path, bounded by serialization on any
        // chiplet the stage shares (e.g. 8 FE models on one monolithic
        // accelerator execute back to back).
        let local_max = local_busy
            .values()
            .copied()
            .fold(Seconds::ZERO, Seconds::max);
        let stage_e2e = stage_path.max(local_max);
        per_stage_partial.push((stage.kind, stage_e2e, compute_energy, nop_energy));
        stage_busy.push(local_busy);
        prev_exits = exits;
    }

    // Stage pipe latencies come from *global* chiplet busy times: a chiplet
    // shared between stages must fit all its work in one frame interval.
    let per_stage: Vec<StageReport> = per_stage_partial
        .iter()
        .zip(&stage_busy)
        .map(|(&(kind, e2e, ce, ne), local)| {
            let pipe = local
                .keys()
                .map(|c| busy[c])
                .fold(Seconds::ZERO, Seconds::max);
            StageReport {
                kind,
                pipe,
                e2e,
                compute_energy: ce,
                nop_energy: ne,
            }
        })
        .collect();

    let pipe = busy.values().copied().fold(Seconds::ZERO, Seconds::max);
    let e2e: Seconds = per_stage.iter().map(|s| s.e2e).sum();
    let compute_energy: Joules = per_stage.iter().map(|s| s.compute_energy).sum();
    let nop_energy: Joules = per_stage.iter().map(|s| s.nop_energy).sum();
    let used_pes: u64 = busy
        .keys()
        .map(|&c| pkg.chiplet(c).accelerator().array().pes())
        .sum();
    let utilization = if pipe.is_zero() {
        0.0
    } else {
        active_weighted / (pkg.total_pes() as f64 * pipe.as_secs())
    };
    let utilization_used = if pipe.is_zero() || used_pes == 0 {
        0.0
    } else {
        active_weighted / (used_pes as f64 * pipe.as_secs())
    };

    EvalReport {
        e2e,
        pipe,
        compute_energy,
        nop_energy,
        utilization,
        utilization_used,
        per_stage,
        busy: busy.into_iter().collect(),
        nop_by_layer: nop_by_layer
            .into_iter()
            .map(|(k, (l, e))| (k, l, e))
            .collect(),
    }
}

/// One schedulable work unit for discrete-event simulation: a layer shard
/// with its chiplet, duration (compute + input transfer) and dependencies
/// on other items of the same frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimItem {
    /// `stage/model/layer#shard` label.
    pub name: String,
    /// Executing chiplet.
    pub chiplet: ChipletId,
    /// Service time (compute + input transfer serialization).
    pub duration: Seconds,
    /// Indices of items this one waits for (same frame).
    pub deps: Vec<usize>,
}

/// Flattens a schedule into dependency-ordered work items, using the same
/// cost accounting as [`evaluate`]. Items are indexed in topological order
/// (dependencies always point to lower indices).
pub fn flatten_items(
    schedule: &Schedule,
    pkg: &McmPackage,
    model: &dyn CostModel,
    dtype: Dtype,
) -> Vec<SimItem> {
    let link = pkg.link();
    let mut items: Vec<SimItem> = Vec::new();
    // Item indices of the previous stage's sink shards.
    let mut prev_exit_items: Vec<usize> = Vec::new();
    let mut prev_exits: Vec<(ChipletId, Bytes)> = Vec::new();

    for stage in &schedule.stages {
        let mut exits: Vec<(ChipletId, Bytes)> = Vec::new();
        let mut exit_items: Vec<usize> = Vec::new();

        for mp in &stage.models {
            // Per-layer item index ranges for dependency wiring.
            let mut layer_items: Vec<Vec<usize>> = Vec::with_capacity(mp.graph.len());
            for (id, _) in mp.graph.iter() {
                let lp = mp.layer_plan(id);
                let parts = lp.parts();
                let preds = mp.graph.preds(id);
                let mut this_layer = Vec::with_capacity(lp.shards.len());
                for (shard_i, shard) in lp.shards.iter().enumerate() {
                    let acc = pkg.chiplet(shard.chiplet).accelerator();
                    let cost = model.layer_cost(&shard.layer, acc);
                    let transfer = if preds.is_empty() {
                        if prev_exits.is_empty() {
                            let bytes = slice_bytes(input_bytes_estimate(&lp.source, dtype), parts);
                            TransferCost::unicast(bytes, pkg.dram_hops(shard.chiplet), link)
                        } else {
                            let srcs: Vec<(Bytes, u64)> = prev_exits
                                .iter()
                                .map(|&(c, b)| (slice_bytes(b, parts), pkg.hops(c, shard.chiplet)))
                                .collect();
                            TransferCost::gather(&srcs, link)
                        }
                    } else {
                        let srcs: Vec<(Bytes, u64)> = preds
                            .iter()
                            .flat_map(|&p| mp.layer_plan(p).shards.iter())
                            .map(|ps| {
                                (
                                    slice_bytes(ps.layer.output_bytes(dtype), parts),
                                    pkg.hops(ps.chiplet, shard.chiplet),
                                )
                            })
                            .collect();
                        TransferCost::gather(&srcs, link)
                    };
                    let deps: Vec<usize> = if preds.is_empty() {
                        prev_exit_items.clone()
                    } else {
                        preds
                            .iter()
                            .flat_map(|&p| layer_items[p.index()].iter().copied())
                            .collect()
                    };
                    let idx = items.len();
                    items.push(SimItem {
                        name: format!(
                            "{}/{}/{}#{}",
                            stage.kind,
                            mp.name,
                            lp.source.name(),
                            shard_i
                        ),
                        chiplet: shard.chiplet,
                        duration: cost.latency + transfer.latency,
                        deps,
                    });
                    this_layer.push(idx);
                }
                layer_items.push(this_layer);
            }
            for sink in mp.graph.sinks() {
                for (i, shard) in mp.layer_plan(sink).shards.iter().enumerate() {
                    exits.push((shard.chiplet, shard.layer.output_bytes(dtype)));
                    exit_items.push(layer_items[sink.index()][i]);
                }
            }
        }
        prev_exits = exits;
        prev_exit_items = exit_items;
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ModelPlan, StagePlan};
    use npu_dnn::models::attention::{fusion_block, FusionConfig};
    use npu_dnn::StageKind;
    use npu_maestro::FittedMaestro;

    fn single_stage_schedule(chiplet: u32) -> Schedule {
        let g = fusion_block(&FusionConfig::spatial_default());
        Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![ModelPlan::on_single_chiplet(
                    "s_fuse",
                    g,
                    ChipletId(chiplet),
                )],
                region: vec![ChipletId(chiplet)],
            }],
        }
    }

    #[test]
    fn single_chiplet_stage_pipe_equals_e2e_compute() {
        let pkg = McmPackage::simba_6x6();
        let r = evaluate(
            &single_stage_schedule(9),
            &pkg,
            &FittedMaestro::new(),
            Dtype::Fp16,
        );
        // One chiplet serializes everything: pipe == e2e.
        assert!((r.pipe.as_millis() - r.e2e.as_millis()).abs() < 1e-9);
        // Roughly qkv + attn + ffn + compress ≈ 365 ms.
        assert!((330.0..400.0).contains(&r.pipe.as_millis()), "{}", r.pipe);
        assert_eq!(r.busy.len(), 1);
    }

    #[test]
    fn utilization_is_between_zero_and_one() {
        let pkg = McmPackage::simba_6x6();
        let r = evaluate(
            &single_stage_schedule(0),
            &pkg,
            &FittedMaestro::new(),
            Dtype::Fp16,
        );
        assert!(r.utilization > 0.0 && r.utilization < 1.0);
    }

    #[test]
    fn nop_energy_positive_with_dram_ingress() {
        let pkg = McmPackage::simba_6x6();
        let r = evaluate(
            &single_stage_schedule(35),
            &pkg,
            &FittedMaestro::new(),
            Dtype::Fp16,
        );
        assert!(r.nop_energy > Joules::ZERO);
        // NoP stays far below compute (paper §IV-D (iii)); the farthest
        // chiplet from the DRAM port is the worst case.
        assert!(r.nop_energy.as_joules() < 0.05 * r.compute_energy.as_joules());
    }

    #[test]
    fn flatten_matches_schedule_items() {
        let pkg = McmPackage::simba_6x6();
        let s = single_stage_schedule(4);
        let items = flatten_items(&s, &pkg, &FittedMaestro::new(), Dtype::Fp16);
        assert_eq!(items.len(), s.items());
        // Dependencies always point backwards (topological order).
        for (i, item) in items.iter().enumerate() {
            for &d in &item.deps {
                assert!(d < i);
            }
        }
        // Total duration equals the single chiplet's busy time.
        let total: Seconds = items.iter().map(|i| i.duration).sum();
        let r = evaluate(&s, &pkg, &FittedMaestro::new(), Dtype::Fp16);
        assert!((total.as_secs() - r.pipe.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_inverse_pipe() {
        let pkg = McmPackage::simba_6x6();
        let r = evaluate(
            &single_stage_schedule(3),
            &pkg,
            &FittedMaestro::new(),
            Dtype::Fp16,
        );
        assert!((r.throughput_fps() - 1.0 / r.pipe.as_secs()).abs() < 1e-9);
    }
}
