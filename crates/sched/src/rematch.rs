//! Region re-matching between two schedules: what an online mode switch
//! costs.
//!
//! When a drive transitions between operating modes (cruise → urban →
//! degraded), the matcher produces a *different* schedule for the new
//! workload, and the package must migrate from the old mapping to the
//! new one while frames keep arriving. This module computes the diff
//! between two schedules at chiplet granularity — which chiplets keep
//! their program, which must be re-programmed, how many weight bytes the
//! re-programmed ones reload — and prices the transition with
//! [`ReconfigModel`]. The resulting latency
//! is the mapping spin-up window `npu-pipesim`'s phased engine charges,
//! during which arriving frames are dropped.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_dnn::Layer;
use npu_maestro::ReconfigModel;
use npu_mcm::ChipletId;
use npu_tensor::{Bytes, Dtype, Seconds};

use crate::plan::Schedule;

/// The priced diff between an outgoing and an incoming schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RematchOutcome {
    /// Chiplets whose program changes (new shard set, or newly enlisted).
    /// Chiplets that fall idle in the new mapping simply power down and
    /// cost nothing.
    pub reprogrammed: Vec<ChipletId>,
    /// Weight bytes the re-programmed chiplets reload in total.
    pub weight_bytes: Bytes,
    /// The transition's spin-up latency under the reconfiguration model.
    pub latency: Seconds,
}

impl RematchOutcome {
    /// Whether the transition changes nothing (identical mappings).
    pub fn is_noop(&self) -> bool {
        self.reprogrammed.is_empty()
    }
}

/// Prices the transition from `old` to `new`.
///
/// A chiplet counts as re-programmed when the **set** of shards the
/// schedule assigns to it — identified by stage kind, model instance,
/// source layer and shard slice — differs between the two schedules.
/// The comparison is content-based: a chiplet that keeps exactly its
/// region contents costs nothing even if the incoming schedule lists the
/// same shards in a different order or under different slice indices
/// (before ISSUE 9 such a chiplet was charged a full weight reload).
/// Re-matching a schedule onto itself is a no-op with zero latency,
/// which is what makes a single-segment drive bit-identical to its
/// standalone scenario run.
///
/// # Examples
///
/// ```
/// use npu_dnn::PerceptionConfig;
/// use npu_maestro::{FittedMaestro, ReconfigModel};
/// use npu_mcm::McmPackage;
/// use npu_sched::rematch::rematch_cost;
/// use npu_sched::{MatcherConfig, ThroughputMatcher};
/// use npu_tensor::Dtype;
///
/// let pkg = McmPackage::simba_6x6();
/// let model = FittedMaestro::new();
/// let matcher = ThroughputMatcher::new(&model, MatcherConfig::default());
/// let cruise = matcher.match_throughput(&PerceptionConfig::default().build(), &pkg);
/// let noop = rematch_cost(
///     &cruise.schedule,
///     &cruise.schedule,
///     &ReconfigModel::default(),
///     Dtype::Fp16,
/// );
/// assert!(noop.is_noop() && noop.latency.is_zero());
/// ```
pub fn rematch_cost(
    old: &Schedule,
    new: &Schedule,
    model: &ReconfigModel,
    dtype: Dtype,
) -> RematchOutcome {
    let before = chiplet_programs(old);
    let after = chiplet_programs(new);

    let mut reprogrammed = Vec::new();
    let mut weight_bytes = Bytes::ZERO;
    for (chiplet, program) in &after {
        if before.get(chiplet) == Some(program) {
            continue;
        }
        reprogrammed.push(*chiplet);
        weight_bytes += program
            .iter()
            .map(|(_, layer)| layer.weight_bytes(dtype))
            .sum::<Bytes>();
    }

    let latency = model.transition_latency(reprogrammed.len(), weight_bytes);
    RematchOutcome {
        reprogrammed,
        weight_bytes,
        latency,
    }
}

/// The program a schedule loads onto each chiplet: its shards as a
/// canonically ordered multiset, labelled `stage/model/layer` and paired
/// with the (sliced) layer so a re-slice of the same layer still reads
/// as a change. The sort makes the comparison order-insensitive — two
/// schedules assigning the same shard contents to a chiplet compare
/// equal no matter how stage iteration or slice indexing lists them, so
/// only genuine content changes are charged a weight reload.
fn chiplet_programs(s: &Schedule) -> BTreeMap<ChipletId, Vec<(String, Layer)>> {
    let mut programs: BTreeMap<ChipletId, Vec<(String, Layer)>> = BTreeMap::new();
    for stage in &s.stages {
        for mp in &stage.models {
            for lp in &mp.layers {
                for shard in &lp.shards {
                    programs.entry(shard.chiplet).or_default().push((
                        format!("{}/{}/{}", stage.kind, mp.name, lp.source.name()),
                        shard.layer.clone(),
                    ));
                }
            }
        }
    }
    for program in programs.values_mut() {
        // Same-label entries (several slices of one layer on one
        // chiplet) tie-break on the sliced layer's debug rendering: a
        // deterministic, content-complete total order.
        program.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| format!("{:?}", a.1).cmp(&format!("{:?}", b.1)))
        });
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::PerceptionConfig;
    use npu_maestro::FittedMaestro;

    use crate::throughput_match::{MatcherConfig, ThroughputMatcher};

    fn matched(cameras: u64, detectors: u64) -> Schedule {
        let cfg = PerceptionConfig {
            cameras,
            detectors,
            ..PerceptionConfig::default()
        };
        let pkg = npu_mcm::McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        ThroughputMatcher::new(&model, MatcherConfig::default())
            .match_throughput(&cfg.build(), &pkg)
            .schedule
    }

    #[test]
    fn identical_schedules_are_a_noop() {
        let s = matched(8, 3);
        let out = rematch_cost(&s, &s, &ReconfigModel::default(), Dtype::Fp16);
        assert!(out.is_noop());
        assert_eq!(out.weight_bytes, Bytes::ZERO);
        assert!(out.latency.is_zero());
    }

    #[test]
    fn workload_change_reprograms_chiplets_and_costs_time() {
        let cruise = matched(8, 3);
        let urban = matched(8, 4);
        let out = rematch_cost(&cruise, &urban, &ReconfigModel::default(), Dtype::Fp16);
        assert!(!out.is_noop(), "an extra detector must change the mapping");
        assert!(out.weight_bytes > Bytes::ZERO);
        assert!(out.latency > Seconds::ZERO);
        // The transition back is priced from the cruise program set: also
        // a real change, not necessarily the same size.
        let back = rematch_cost(&urban, &cruise, &ReconfigModel::default(), Dtype::Fp16);
        assert!(!back.is_noop());
    }

    /// The pre-ISSUE-9 diff: shards in schedule order, labelled with
    /// their slice index. Used to pin the regression — the content-set
    /// diff must never charge more than this ordered diff did.
    fn ordered_programs(s: &Schedule) -> BTreeMap<ChipletId, Vec<(String, Layer)>> {
        let mut programs: BTreeMap<ChipletId, Vec<(String, Layer)>> = BTreeMap::new();
        for stage in &s.stages {
            for mp in &stage.models {
                for lp in &mp.layers {
                    for (i, shard) in lp.shards.iter().enumerate() {
                        programs.entry(shard.chiplet).or_default().push((
                            format!("{}/{}/{}#{i}", stage.kind, mp.name, lp.source.name()),
                            shard.layer.clone(),
                        ));
                    }
                }
            }
        }
        programs
    }

    fn ordered_rematch_cost(
        old: &Schedule,
        new: &Schedule,
        model: &ReconfigModel,
        dtype: Dtype,
    ) -> RematchOutcome {
        let before = ordered_programs(old);
        let after = ordered_programs(new);
        let mut reprogrammed = Vec::new();
        let mut weight_bytes = Bytes::ZERO;
        for (chiplet, program) in &after {
            if before.get(chiplet) == Some(program) {
                continue;
            }
            reprogrammed.push(*chiplet);
            weight_bytes += program
                .iter()
                .map(|(_, layer)| layer.weight_bytes(dtype))
                .sum::<Bytes>();
        }
        let latency = model.transition_latency(reprogrammed.len(), weight_bytes);
        RematchOutcome {
            reprogrammed,
            weight_bytes,
            latency,
        }
    }

    /// Reorders a schedule's internals without changing any chiplet's
    /// assigned contents: models within each stage reversed, shards
    /// within each layer plan reversed.
    fn permuted(s: &Schedule) -> Schedule {
        let mut p = s.clone();
        for stage in &mut p.stages {
            stage.models.reverse();
            for mp in &mut stage.models {
                for lp in &mut mp.layers {
                    lp.shards.reverse();
                }
            }
        }
        p
    }

    #[test]
    fn content_preserving_permutation_is_a_noop() {
        let s = matched(8, 3);
        let p = permuted(&s);
        let out = rematch_cost(&s, &p, &ReconfigModel::default(), Dtype::Fp16);
        assert!(
            out.is_noop(),
            "reordered-but-identical chiplet contents must cost nothing, got {:?}",
            out.reprogrammed
        );
        assert!(out.latency.is_zero());
        // The old ordered+indexed diff charged this permutation a real
        // reload — exactly the bug the content-set diff fixes.
        let old = ordered_rematch_cost(&s, &p, &ReconfigModel::default(), Dtype::Fp16);
        assert!(
            !old.is_noop(),
            "test permutation must be visible to the old ordered diff"
        );
        assert!(old.latency > Seconds::ZERO);
    }

    #[test]
    fn content_diff_never_exceeds_ordered_diff_on_drive_boundaries() {
        // The builtin cruise→urban→degraded drive's mode boundaries on
        // the paper package: the content-set diff must charge at most
        // what the old ordered diff did, chiplet-for-chiplet.
        let cruise = matched(8, 3);
        let urban = matched(8, 4);
        let degraded = matched(5, 3);
        let model = ReconfigModel::default();
        for (a, b) in [(&cruise, &urban), (&urban, &degraded)] {
            let new = rematch_cost(a, b, &model, Dtype::Fp16);
            let old = ordered_rematch_cost(a, b, &model, Dtype::Fp16);
            assert!(
                new.reprogrammed.len() <= old.reprogrammed.len(),
                "content diff reprograms {} chiplets, ordered diff {}",
                new.reprogrammed.len(),
                old.reprogrammed.len()
            );
            assert!(new.weight_bytes <= old.weight_bytes);
            assert!(new.latency <= old.latency);
            // Every chiplet the content diff charges, the ordered diff
            // charged too (the fix only removes false positives).
            assert!(new
                .reprogrammed
                .iter()
                .all(|c| old.reprogrammed.contains(c)));
        }
    }

    #[test]
    fn cost_is_deterministic_and_ordered() {
        let a = matched(8, 3);
        let b = matched(5, 3);
        let x = rematch_cost(&a, &b, &ReconfigModel::default(), Dtype::Fp16);
        let y = rematch_cost(&a, &b, &ReconfigModel::default(), Dtype::Fp16);
        assert_eq!(x, y);
        // BTreeMap iteration: chiplets come back sorted.
        assert!(x.reprogrammed.windows(2).all(|w| w[0] < w[1]));
    }
}
