//! Region re-matching between two schedules: what an online mode switch
//! costs.
//!
//! When a drive transitions between operating modes (cruise → urban →
//! degraded), the matcher produces a *different* schedule for the new
//! workload, and the package must migrate from the old mapping to the
//! new one while frames keep arriving. This module computes the diff
//! between two schedules at chiplet granularity — which chiplets keep
//! their program, which must be re-programmed, how many weight bytes the
//! re-programmed ones reload — and prices the transition with
//! [`ReconfigModel`].
//!
//! The outcome carries two prices for the same diff. `latency` is the
//! legacy package-wide barrier (everything waits for the slowest
//! reload), kept as the pessimistic reference. `readiness` is the
//! make-before-break schedule: chiplets that keep their program
//! ([`RematchOutcome::kept`]) never stop serving, re-programmed chiplets
//! that were idle in the outgoing mapping ([`RematchOutcome::prestaged`])
//! are loaded over the idle west-edge port cycles of the outgoing
//! schedule's tail and are ready at the switch instant, and only the
//! re-programmed chiplets that were busy until the break
//! (`readiness`) pay a staged post-switch spin-up. `npu-pipesim`'s
//! phased engine turns that schedule into a per-chiplet admission gate
//! instead of a package-wide drop window.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use npu_dnn::Layer;
use npu_maestro::ReconfigModel;
use npu_mcm::ChipletId;
use npu_tensor::{Bytes, Dtype, Seconds};

use crate::plan::Schedule;

/// The priced diff between an outgoing and an incoming schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RematchOutcome {
    /// Chiplets whose program changes (new shard set, or newly enlisted).
    /// Chiplets that fall idle in the new mapping simply power down and
    /// cost nothing.
    pub reprogrammed: Vec<ChipletId>,
    /// Incoming chiplets whose program is unchanged: they keep serving
    /// across the boundary and their in-flight frames survive.
    pub kept: Vec<ChipletId>,
    /// Re-programmed chiplets that sat idle in the outgoing package
    /// state: their control walk and weight reload overlap the outgoing
    /// schedule's tail (the west-edge ports are idle between frames), so
    /// they are ready the instant the mapping switches.
    pub prestaged: Vec<ChipletId>,
    /// Staged post-switch readiness of the re-programmed chiplets that
    /// served the outgoing mapping until the break (ascending chiplet
    /// order — the control-plane walk order). Offsets are relative to
    /// the switch instant; the last entry of a diff with no prestaged
    /// chiplets is bit-identical to the scalar `latency`.
    pub readiness: Vec<(ChipletId, Seconds)>,
    /// Weight bytes the re-programmed chiplets reload in total.
    pub weight_bytes: Bytes,
    /// The transition's spin-up latency under the package-wide barrier
    /// model: every chiplet waits for the full control walk and reload.
    /// Kept as the pessimistic reference the make-before-break schedule
    /// is measured against.
    pub latency: Seconds,
}

impl RematchOutcome {
    /// Whether the transition changes nothing (identical mappings).
    pub fn is_noop(&self) -> bool {
        self.reprogrammed.is_empty()
    }

    /// Whether the diff leaves no serving pipeline across the boundary:
    /// every incoming chiplet is re-programmed out of a busy state, so
    /// the package quiesces and the old single-`ready_at` barrier
    /// semantics apply exactly.
    pub fn is_full_barrier(&self) -> bool {
        !self.reprogrammed.is_empty() && self.kept.is_empty() && self.prestaged.is_empty()
    }

    /// Number of chiplets that stall across the switch (re-programmed
    /// while busy in the outgoing mapping).
    pub fn stalled(&self) -> usize {
        self.readiness.len()
    }

    /// The post-switch spin-up window: how long after the switch the
    /// last stalled chiplet comes back online. Zero when nothing stalls;
    /// equal to `latency` when nothing could be prestaged.
    pub fn stall_window(&self) -> Seconds {
        self.readiness
            .iter()
            .map(|&(_, r)| r)
            .fold(Seconds::ZERO, |a, b| if b > a { b } else { a })
    }
}

/// Prices the transition from `old` to `new`.
///
/// A chiplet counts as re-programmed when the **set** of shards the
/// schedule assigns to it — identified by stage kind, model instance,
/// source layer and shard slice — differs between the two schedules.
/// The comparison is content-based: a chiplet that keeps exactly its
/// region contents costs nothing even if the incoming schedule lists the
/// same shards in a different order or under different slice indices
/// (before ISSUE 9 such a chiplet was charged a full weight reload).
/// Re-matching a schedule onto itself is a no-op with zero latency,
/// which is what makes a single-segment drive bit-identical to its
/// standalone scenario run.
///
/// # Examples
///
/// ```
/// use npu_dnn::PerceptionConfig;
/// use npu_maestro::{FittedMaestro, ReconfigModel};
/// use npu_mcm::McmPackage;
/// use npu_sched::rematch::rematch_cost;
/// use npu_sched::{MatcherConfig, ThroughputMatcher};
/// use npu_tensor::Dtype;
///
/// let pkg = McmPackage::simba_6x6();
/// let model = FittedMaestro::new();
/// let matcher = ThroughputMatcher::new(&model, MatcherConfig::default());
/// let cruise = matcher.match_throughput(&PerceptionConfig::default().build(), &pkg);
/// let noop = rematch_cost(
///     &cruise.schedule,
///     &cruise.schedule,
///     &ReconfigModel::default(),
///     Dtype::Fp16,
/// );
/// assert!(noop.is_noop() && noop.latency.is_zero());
/// ```
pub fn rematch_cost(
    old: &Schedule,
    new: &Schedule,
    model: &ReconfigModel,
    dtype: Dtype,
) -> RematchOutcome {
    rematch_cost_against(old, new, &BTreeSet::new(), model, dtype)
}

/// [`rematch_cost`] with extra outgoing-side occupancy.
///
/// `also_occupied` lists chiplets that are busy in the outgoing package
/// state beyond `old`'s own footprint — co-tenants' regions in a
/// multi-tenant colocation, for example. A re-programmed chiplet only
/// prestages over the outgoing tail if nothing at all runs on it before
/// the switch; a chiplet handed over from another tenant stalls exactly
/// like one re-programmed in place.
pub fn rematch_cost_against(
    old: &Schedule,
    new: &Schedule,
    also_occupied: &BTreeSet<ChipletId>,
    model: &ReconfigModel,
    dtype: Dtype,
) -> RematchOutcome {
    let before = chiplet_programs(old);
    let after = chiplet_programs(new);

    let mut reprogrammed = Vec::new();
    let mut kept = Vec::new();
    let mut prestaged = Vec::new();
    let mut stalled_reloads: Vec<(ChipletId, Bytes)> = Vec::new();
    let mut weight_bytes = Bytes::ZERO;
    for (chiplet, program) in &after {
        if before.get(chiplet) == Some(program) {
            kept.push(*chiplet);
            continue;
        }
        reprogrammed.push(*chiplet);
        let bytes = program
            .iter()
            .map(|(_, layer)| layer.weight_bytes(dtype))
            .sum::<Bytes>();
        weight_bytes += bytes;
        if before.contains_key(chiplet) || also_occupied.contains(chiplet) {
            stalled_reloads.push((*chiplet, bytes));
        } else {
            prestaged.push(*chiplet);
        }
    }

    let staged = model.readiness_schedule(
        &stalled_reloads
            .iter()
            .map(|&(_, bytes)| bytes)
            .collect::<Vec<_>>(),
    );
    let readiness = stalled_reloads
        .iter()
        .map(|&(chiplet, _)| chiplet)
        .zip(staged)
        .collect();

    let latency = model.transition_latency(reprogrammed.len(), weight_bytes);
    RematchOutcome {
        reprogrammed,
        kept,
        prestaged,
        readiness,
        weight_bytes,
        latency,
    }
}

/// The set of chiplets a schedule occupies (hosts at least one shard).
///
/// Feed the union over a colocation's placements to
/// [`rematch_cost_against`] so a chiplet handed over between tenants is
/// priced as a stalling reload, not a free prestage.
pub fn occupied_chiplets(s: &Schedule) -> BTreeSet<ChipletId> {
    chiplet_programs(s).keys().copied().collect()
}

/// The program a schedule loads onto each chiplet: its shards as a
/// canonically ordered multiset, labelled `stage/model/layer` and paired
/// with the (sliced) layer so a re-slice of the same layer still reads
/// as a change. The sort makes the comparison order-insensitive — two
/// schedules assigning the same shard contents to a chiplet compare
/// equal no matter how stage iteration or slice indexing lists them, so
/// only genuine content changes are charged a weight reload.
fn chiplet_programs(s: &Schedule) -> BTreeMap<ChipletId, Vec<(String, Layer)>> {
    let mut programs: BTreeMap<ChipletId, Vec<(String, Layer)>> = BTreeMap::new();
    for stage in &s.stages {
        for mp in &stage.models {
            for lp in &mp.layers {
                for shard in &lp.shards {
                    programs.entry(shard.chiplet).or_default().push((
                        format!("{}/{}/{}", stage.kind, mp.name, lp.source.name()),
                        shard.layer.clone(),
                    ));
                }
            }
        }
    }
    for program in programs.values_mut() {
        // Same-label entries (several slices of one layer on one
        // chiplet) tie-break on the sliced layer's debug rendering: a
        // deterministic, content-complete total order.
        program.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| format!("{:?}", a.1).cmp(&format!("{:?}", b.1)))
        });
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_dnn::PerceptionConfig;
    use npu_maestro::FittedMaestro;

    use crate::throughput_match::{MatcherConfig, ThroughputMatcher};

    fn matched(cameras: u64, detectors: u64) -> Schedule {
        let cfg = PerceptionConfig {
            cameras,
            detectors,
            ..PerceptionConfig::default()
        };
        let pkg = npu_mcm::McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        ThroughputMatcher::new(&model, MatcherConfig::default())
            .match_throughput(&cfg.build(), &pkg)
            .schedule
    }

    #[test]
    fn identical_schedules_are_a_noop() {
        let s = matched(8, 3);
        let out = rematch_cost(&s, &s, &ReconfigModel::default(), Dtype::Fp16);
        assert!(out.is_noop());
        assert_eq!(out.weight_bytes, Bytes::ZERO);
        assert!(out.latency.is_zero());
    }

    #[test]
    fn workload_change_reprograms_chiplets_and_costs_time() {
        let cruise = matched(8, 3);
        let urban = matched(8, 4);
        let out = rematch_cost(&cruise, &urban, &ReconfigModel::default(), Dtype::Fp16);
        assert!(!out.is_noop(), "an extra detector must change the mapping");
        assert!(out.weight_bytes > Bytes::ZERO);
        assert!(out.latency > Seconds::ZERO);
        // The transition back is priced from the cruise program set: also
        // a real change, not necessarily the same size.
        let back = rematch_cost(&urban, &cruise, &ReconfigModel::default(), Dtype::Fp16);
        assert!(!back.is_noop());
    }

    /// The pre-ISSUE-9 diff: shards in schedule order, labelled with
    /// their slice index. Used to pin the regression — the content-set
    /// diff must never charge more than this ordered diff did.
    fn ordered_programs(s: &Schedule) -> BTreeMap<ChipletId, Vec<(String, Layer)>> {
        let mut programs: BTreeMap<ChipletId, Vec<(String, Layer)>> = BTreeMap::new();
        for stage in &s.stages {
            for mp in &stage.models {
                for lp in &mp.layers {
                    for (i, shard) in lp.shards.iter().enumerate() {
                        programs.entry(shard.chiplet).or_default().push((
                            format!("{}/{}/{}#{i}", stage.kind, mp.name, lp.source.name()),
                            shard.layer.clone(),
                        ));
                    }
                }
            }
        }
        programs
    }

    fn ordered_rematch_cost(
        old: &Schedule,
        new: &Schedule,
        model: &ReconfigModel,
        dtype: Dtype,
    ) -> RematchOutcome {
        let before = ordered_programs(old);
        let after = ordered_programs(new);
        let mut reprogrammed = Vec::new();
        let mut weight_bytes = Bytes::ZERO;
        for (chiplet, program) in &after {
            if before.get(chiplet) == Some(program) {
                continue;
            }
            reprogrammed.push(*chiplet);
            weight_bytes += program
                .iter()
                .map(|(_, layer)| layer.weight_bytes(dtype))
                .sum::<Bytes>();
        }
        let latency = model.transition_latency(reprogrammed.len(), weight_bytes);
        RematchOutcome {
            reprogrammed,
            kept: Vec::new(),
            prestaged: Vec::new(),
            readiness: Vec::new(),
            weight_bytes,
            latency,
        }
    }

    /// Reorders a schedule's internals without changing any chiplet's
    /// assigned contents: models within each stage reversed, shards
    /// within each layer plan reversed.
    fn permuted(s: &Schedule) -> Schedule {
        let mut p = s.clone();
        for stage in &mut p.stages {
            stage.models.reverse();
            for mp in &mut stage.models {
                for lp in &mut mp.layers {
                    lp.shards.reverse();
                }
            }
        }
        p
    }

    #[test]
    fn content_preserving_permutation_is_a_noop() {
        let s = matched(8, 3);
        let p = permuted(&s);
        let out = rematch_cost(&s, &p, &ReconfigModel::default(), Dtype::Fp16);
        assert!(
            out.is_noop(),
            "reordered-but-identical chiplet contents must cost nothing, got {:?}",
            out.reprogrammed
        );
        assert!(out.latency.is_zero());
        // The old ordered+indexed diff charged this permutation a real
        // reload — exactly the bug the content-set diff fixes.
        let old = ordered_rematch_cost(&s, &p, &ReconfigModel::default(), Dtype::Fp16);
        assert!(
            !old.is_noop(),
            "test permutation must be visible to the old ordered diff"
        );
        assert!(old.latency > Seconds::ZERO);
    }

    #[test]
    fn content_diff_never_exceeds_ordered_diff_on_drive_boundaries() {
        // The builtin cruise→urban→degraded drive's mode boundaries on
        // the paper package: the content-set diff must charge at most
        // what the old ordered diff did, chiplet-for-chiplet.
        let cruise = matched(8, 3);
        let urban = matched(8, 4);
        let degraded = matched(5, 3);
        let model = ReconfigModel::default();
        for (a, b) in [(&cruise, &urban), (&urban, &degraded)] {
            let new = rematch_cost(a, b, &model, Dtype::Fp16);
            let old = ordered_rematch_cost(a, b, &model, Dtype::Fp16);
            assert!(
                new.reprogrammed.len() <= old.reprogrammed.len(),
                "content diff reprograms {} chiplets, ordered diff {}",
                new.reprogrammed.len(),
                old.reprogrammed.len()
            );
            assert!(new.weight_bytes <= old.weight_bytes);
            assert!(new.latency <= old.latency);
            // Every chiplet the content diff charges, the ordered diff
            // charged too (the fix only removes false positives).
            assert!(new
                .reprogrammed
                .iter()
                .all(|c| old.reprogrammed.contains(c)));
        }
    }

    #[test]
    fn cost_is_deterministic_and_ordered() {
        let a = matched(8, 3);
        let b = matched(5, 3);
        let x = rematch_cost(&a, &b, &ReconfigModel::default(), Dtype::Fp16);
        let y = rematch_cost(&a, &b, &ReconfigModel::default(), Dtype::Fp16);
        assert_eq!(x, y);
        // BTreeMap iteration: chiplets come back sorted.
        assert!(x.reprogrammed.windows(2).all(|w| w[0] < w[1]));
        assert!(x.kept.windows(2).all(|w| w[0] < w[1]));
        assert!(x.readiness.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn classification_partitions_the_incoming_chiplets() {
        let cruise = matched(8, 3);
        let urban = matched(8, 4);
        let out = rematch_cost(&cruise, &urban, &ReconfigModel::default(), Dtype::Fp16);
        // kept ∪ reprogrammed = incoming chiplet set, disjoint.
        let incoming = chiplet_programs(&urban).len();
        assert_eq!(out.kept.len() + out.reprogrammed.len(), incoming);
        assert!(out.kept.iter().all(|c| !out.reprogrammed.contains(c)));
        // prestaged ∪ stalled = reprogrammed, disjoint.
        let stalled: Vec<ChipletId> = out.readiness.iter().map(|&(c, _)| c).collect();
        assert_eq!(out.prestaged.len() + stalled.len(), out.reprogrammed.len());
        assert!(out
            .reprogrammed
            .iter()
            .all(|c| out.prestaged.contains(c) ^ stalled.contains(c)));
        // Readiness offsets are strictly increasing along the control
        // walk and never exceed the barrier latency.
        assert!(out.readiness.windows(2).all(|w| w[0].1 < w[1].1));
        assert!(out.stall_window() <= out.latency);
    }

    #[test]
    fn full_reprogram_readiness_is_bit_identical_to_the_barrier() {
        // Diff against an empty-but-occupying outgoing state: every
        // incoming chiplet is re-programmed while busy, so the diff
        // degenerates to the old package-wide barrier and the staged
        // schedule's last stage lands on the scalar latency exactly.
        let urban = matched(8, 4);
        let cruise = matched(8, 3);
        let occupied: BTreeSet<ChipletId> = chiplet_programs(&urban).keys().copied().collect();
        let empty = Schedule { stages: Vec::new() };
        let out = rematch_cost_against(
            &empty,
            &urban,
            &occupied,
            &ReconfigModel::default(),
            Dtype::Fp16,
        );
        assert!(out.is_full_barrier());
        assert!(out.kept.is_empty() && out.prestaged.is_empty());
        assert_eq!(out.stalled(), out.reprogrammed.len());
        assert_eq!(
            out.stall_window().as_secs().to_bits(),
            out.latency.as_secs().to_bits()
        );
        // A partial diff is not a full barrier.
        let partial = rematch_cost(&cruise, &urban, &ReconfigModel::default(), Dtype::Fp16);
        assert!(!partial.is_full_barrier());
        assert!(!partial.kept.is_empty());
    }

    #[test]
    fn idle_chiplets_prestage_over_the_outgoing_tail() {
        // With no outgoing occupancy at all, a newly enlisted chiplet is
        // programmed during the old schedule's tail: ready at the switch.
        let urban = matched(8, 4);
        let empty = Schedule { stages: Vec::new() };
        let out = rematch_cost(&empty, &urban, &ReconfigModel::default(), Dtype::Fp16);
        assert!(!out.is_noop());
        assert_eq!(out.prestaged.len(), out.reprogrammed.len());
        assert!(out.readiness.is_empty());
        assert!(out.stall_window().is_zero());
        // The pessimistic barrier reference still prices the full reload.
        assert!(out.latency > Seconds::ZERO);
    }
}
