//! Data-parallel layer sharding.
//!
//! The paper alleviates bottleneck layers by sharding them across chiplets
//! (§IV-B): the S_FUSE FFN is replicated four-fold "each processing
//! features from two FE+BFPNs", the T_FUSE FFN is distributed over up to
//! 12 chiplets — "sharding is exhausted … as each temporal frame is
//! processed independently on a separate chiplet".
//!
//! Sharding is data-parallel over the token / output-row axis: each shard
//! holds a full copy of the weights (replication) and processes a slice of
//! the tokens, so per-shard MACs divide ~evenly and a gather reassembles
//! the output.

use std::error::Error;
use std::fmt;

use npu_dnn::{Layer, OpKind};
use npu_tensor::TensorShape;

/// Error produced by [`shard_layer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Requested more parts than the layer's shardable extent.
    TooManyParts {
        /// The layer name.
        layer: String,
        /// Requested part count.
        requested: u64,
        /// Maximum supported parts.
        cap: u64,
    },
    /// `parts` was zero.
    ZeroParts,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::TooManyParts {
                layer,
                requested,
                cap,
            } => write!(
                f,
                "layer `{layer}` cannot be split into {requested} parts (cap {cap})"
            ),
            ShardError::ZeroParts => write!(f, "cannot shard into zero parts"),
        }
    }
}

impl Error for ShardError {}

/// The intrinsic maximum shard count of a layer: its token / output-row
/// extent. The scheduler additionally applies semantic caps (e.g. one
/// temporal frame per chiplet).
pub fn shard_cap(layer: &Layer) -> u64 {
    match layer.op() {
        OpKind::Dense { tokens, .. } | OpKind::Ffn { tokens, .. } => tokens,
        OpKind::AttentionScore { queries, .. } | OpKind::AttentionContext { queries, .. } => {
            queries
        }
        _ => layer.out().h(),
    }
}

/// Splits a layer into `parts` data-parallel shards.
///
/// Shards are named `{name}#i/n`. Per-shard MAC counts differ by at most
/// one token/row slice.
///
/// # Errors
///
/// Returns [`ShardError::TooManyParts`] if `parts` exceeds [`shard_cap`],
/// and [`ShardError::ZeroParts`] for `parts == 0`.
pub fn shard_layer(layer: &Layer, parts: u64) -> Result<Vec<Layer>, ShardError> {
    if parts == 0 {
        return Err(ShardError::ZeroParts);
    }
    if parts == 1 {
        return Ok(vec![layer.clone()]);
    }
    let cap = shard_cap(layer);
    if parts > cap {
        return Err(ShardError::TooManyParts {
            layer: layer.name().to_string(),
            requested: parts,
            cap,
        });
    }

    let slices = layer.out().split_h(parts);
    debug_assert_eq!(slices.len() as u64, parts);

    let out = layer.out();
    let shards = slices
        .iter()
        .scan(0u64, |_acc, &h| Some(h))
        .enumerate()
        .map(|(i, slice_h)| {
            let name = format!("{}#{}/{}", layer.name(), i + 1, parts);
            let op = resize_op(layer.op(), slice_h, out.h());
            let shape = TensorShape::nchw(out.n(), out.c(), slice_h, out.w());
            Layer::new(name, op, shape)
        })
        .collect();
    Ok(shards)
}

/// Scales the token/row extent of an op to a shard slice.
fn resize_op(op: OpKind, slice_h: u64, full_h: u64) -> OpKind {
    debug_assert!(slice_h <= full_h);
    match op {
        OpKind::Dense {
            in_features,
            out_features,
            ..
        } => OpKind::Dense {
            tokens: slice_h,
            in_features,
            out_features,
        },
        OpKind::Ffn {
            d_model, hidden, ..
        } => OpKind::Ffn {
            tokens: slice_h,
            d_model,
            hidden,
        },
        OpKind::AttentionScore { window, dim, .. } => OpKind::AttentionScore {
            queries: slice_h,
            window,
            dim,
        },
        OpKind::AttentionContext { window, dim, .. } => OpKind::AttentionContext {
            queries: slice_h,
            window,
            dim,
        },
        // Spatial and memory ops shard over output rows; their op
        // parameters are independent of the row extent (the shard's output
        // shape carries the slice).
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_tensor::MacCount;
    use proptest::prelude::*;

    fn ffn() -> Layer {
        Layer::intrinsic(
            "t_fuse.ffn",
            OpKind::Ffn {
                tokens: 19_200,
                d_model: 304,
                hidden: 1216,
            },
        )
    }

    fn conv() -> Layer {
        Layer::new(
            "deconv4",
            OpKind::Deconv2d {
                in_ch: 128,
                out_ch: 128,
                kernel: (4, 4),
                upscale: 2,
            },
            TensorShape::nchw(1, 128, 320, 1280),
        )
    }

    #[test]
    fn shards_partition_macs() {
        for parts in [2, 3, 6, 12] {
            let shards = shard_layer(&ffn(), parts).unwrap();
            assert_eq!(shards.len(), parts as usize);
            let total: MacCount = shards.iter().map(Layer::macs).sum();
            assert_eq!(total, ffn().macs(), "parts={parts}");
        }
    }

    #[test]
    fn twelve_way_ffn_split_gives_frame_granularity() {
        // 19,200 tokens / 12 = 1,600 tokens: exactly one temporal frame
        // per chiplet, the paper's exhaustion point.
        let shards = shard_layer(&ffn(), 12).unwrap();
        for s in &shards {
            assert_eq!(s.out().h(), 1600);
        }
    }

    #[test]
    fn spatial_shard_splits_rows() {
        let shards = shard_layer(&conv(), 4).unwrap();
        let rows: u64 = shards.iter().map(|s| s.out().h()).sum();
        assert_eq!(rows, 320);
        let total: MacCount = shards.iter().map(Layer::macs).sum();
        assert_eq!(total, conv().macs());
    }

    #[test]
    fn single_part_is_identity() {
        let shards = shard_layer(&ffn(), 1).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], ffn());
    }

    #[test]
    fn zero_parts_rejected() {
        assert_eq!(shard_layer(&ffn(), 0).unwrap_err(), ShardError::ZeroParts);
    }

    #[test]
    fn over_cap_rejected() {
        let tiny = Layer::intrinsic(
            "t",
            OpKind::Dense {
                tokens: 4,
                in_features: 8,
                out_features: 8,
            },
        );
        let err = shard_layer(&tiny, 5).unwrap_err();
        assert!(matches!(err, ShardError::TooManyParts { cap: 4, .. }));
        assert!(err.to_string().contains("cap 4"));
    }

    #[test]
    fn shard_names_are_indexed() {
        let shards = shard_layer(&ffn(), 3).unwrap();
        assert_eq!(shards[0].name(), "t_fuse.ffn#1/3");
        assert_eq!(shards[2].name(), "t_fuse.ffn#3/3");
    }

    proptest! {
        /// Sharding always conserves MACs and balances within one slice.
        #[test]
        fn conservation(tokens in 2u64..30_000, parts in 1u64..32) {
            let l = Layer::intrinsic("x", OpKind::Dense {
                tokens, in_features: 64, out_features: 64,
            });
            let parts = parts.min(shard_cap(&l));
            let shards = shard_layer(&l, parts).unwrap();
            let total: MacCount = shards.iter().map(Layer::macs).sum();
            prop_assert_eq!(total, l.macs());
            let min = shards.iter().map(|s| s.macs().as_u64()).min().unwrap();
            let max = shards.iter().map(|s| s.macs().as_u64()).max().unwrap();
            prop_assert!(max - min <= 64 * 64, "unbalanced: {min} vs {max}");
        }
    }
}
