//! Scheduling perception workloads onto multi-chiplet NPUs.
//!
//! This crate implements the paper's scheduling methodology:
//!
//! * [`shard`] — data-parallel layer sharding (token / frame / spatial
//!   splits) with validity caps.
//! * [`plan`] — the schedule representation: every layer of every model
//!   instance mapped to one or more chiplets.
//! * [`eval`] — the analytical pipeline evaluator: per-chiplet busy time,
//!   stage and end-to-end latency, compute + NoP energy, EDP and PE
//!   utilization.
//! * [`throughput_match`] — **Algorithm 1**, the nested greedy throughput
//!   matcher: allocate quadrants, find bottleneck stages, shard bottleneck
//!   layers, re-allocate surplus chiplets, repeat until the pipelining
//!   latencies match the FE+BFPN base latency.
//! * [`baseline`] — the Table II baselines (1/2/4 monolithic chips,
//!   stagewise and layerwise pipelining).
//! * [`dse`] — brute-force trunks design-space exploration with
//!   heterogeneous OS/WS integration (Table I).
//! * [`context`] — context-aware lane computing sweep (Fig. 11).
//! * [`rematch`] — the priced diff between two matched schedules: which
//!   chiplets an online mode switch re-programs, and the resulting
//!   mapping spin-up latency (`npu-scenario`'s drive timelines charge it
//!   at every segment boundary).
//!
//! # Examples
//!
//! ```
//! use npu_dnn::PerceptionConfig;
//! use npu_maestro::FittedMaestro;
//! use npu_mcm::McmPackage;
//! use npu_sched::{MatcherConfig, ThroughputMatcher};
//!
//! let pipeline = PerceptionConfig::default().build();
//! let pkg = McmPackage::simba_6x6();
//! let model = FittedMaestro::new();
//! let matcher = ThroughputMatcher::new(&model, MatcherConfig::default());
//! let outcome = matcher.match_throughput(&pipeline, &pkg);
//! // The matched pipeline sustains ~12 FPS (pipe latency ~85 ms).
//! assert!(outcome.report.pipe.as_millis() < 100.0);
//! ```

pub mod baseline;
pub mod context;
pub mod dse;
pub mod eval;
pub mod gantt;
pub mod lpt;
pub mod plan;
pub mod rematch;
pub mod shard;
pub mod sweep;
pub mod throughput_match;
pub mod validate;

pub use baseline::{baseline_schedule, Pipelining};
pub use eval::{evaluate, flatten_items, EvalReport, SimItem, StageReport};
pub use plan::{LayerPlan, ModelPlan, Schedule, ShardAssignment, StagePlan};
pub use rematch::{occupied_chiplets, rematch_cost, rematch_cost_against, RematchOutcome};
pub use shard::{shard_cap, shard_layer, ShardError};
pub use throughput_match::{MatchOutcome, MatchStep, MatcherConfig, ThroughputMatcher};
pub use validate::{validate_schedule, ScheduleError};
