//! Schedule validation.
//!
//! A [`Schedule`] produced by any of the schedulers (or deserialized from
//! disk) must satisfy structural invariants before evaluation results mean
//! anything. The matcher and DSE are tested against this validator.

use std::error::Error;
use std::fmt;

use npu_mcm::McmPackage;
use npu_tensor::MacCount;

use crate::plan::Schedule;
use crate::shard::shard_cap;

/// A structural violation in a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A stage plan's layer list does not match its graph.
    LayerCountMismatch {
        /// Model instance name.
        model: String,
        /// Graph layer count.
        graph_layers: usize,
        /// Plan layer count.
        plan_layers: usize,
    },
    /// A layer plan has no shards.
    EmptyLayerPlan {
        /// Model instance name.
        model: String,
        /// Layer name.
        layer: String,
    },
    /// A layer's shards do not conserve its MAC count.
    MacMismatch {
        /// Model instance name.
        model: String,
        /// Layer name.
        layer: String,
        /// Source MACs.
        expected: MacCount,
        /// Summed shard MACs.
        actual: MacCount,
    },
    /// A layer is sharded beyond its intrinsic cap.
    OverSharded {
        /// Model instance name.
        model: String,
        /// Layer name.
        layer: String,
        /// Shard count.
        parts: u64,
        /// Intrinsic cap.
        cap: u64,
    },
    /// A shard references a chiplet outside the package.
    UnknownChiplet {
        /// Model instance name.
        model: String,
        /// Layer name.
        layer: String,
        /// The offending chiplet index.
        chiplet: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::LayerCountMismatch {
                model,
                graph_layers,
                plan_layers,
            } => write!(
                f,
                "{model}: plan has {plan_layers} layers for a {graph_layers}-layer graph"
            ),
            ScheduleError::EmptyLayerPlan { model, layer } => {
                write!(f, "{model}/{layer}: no shards")
            }
            ScheduleError::MacMismatch {
                model,
                layer,
                expected,
                actual,
            } => write!(
                f,
                "{model}/{layer}: shards sum to {actual}, layer needs {expected}"
            ),
            ScheduleError::OverSharded {
                model,
                layer,
                parts,
                cap,
            } => write!(f, "{model}/{layer}: {parts} shards exceed cap {cap}"),
            ScheduleError::UnknownChiplet {
                model,
                layer,
                chiplet,
            } => write!(f, "{model}/{layer}: chiplet c{chiplet} not in package"),
        }
    }
}

impl Error for ScheduleError {}

/// Validates a schedule against a package; returns all violations.
pub fn validate_schedule(schedule: &Schedule, pkg: &McmPackage) -> Vec<ScheduleError> {
    let mut errors = Vec::new();
    for stage in &schedule.stages {
        for mp in &stage.models {
            if mp.layers.len() != mp.graph.len() {
                errors.push(ScheduleError::LayerCountMismatch {
                    model: mp.name.clone(),
                    graph_layers: mp.graph.len(),
                    plan_layers: mp.layers.len(),
                });
                continue;
            }
            for lp in &mp.layers {
                if lp.shards.is_empty() {
                    errors.push(ScheduleError::EmptyLayerPlan {
                        model: mp.name.clone(),
                        layer: lp.source.name().to_string(),
                    });
                    continue;
                }
                let cap = shard_cap(&lp.source);
                if lp.parts() > cap {
                    errors.push(ScheduleError::OverSharded {
                        model: mp.name.clone(),
                        layer: lp.source.name().to_string(),
                        parts: lp.parts(),
                        cap,
                    });
                }
                let total: MacCount = lp.shards.iter().map(|s| s.layer.macs()).sum();
                if total != lp.source.macs() {
                    errors.push(ScheduleError::MacMismatch {
                        model: mp.name.clone(),
                        layer: lp.source.name().to_string(),
                        expected: lp.source.macs(),
                        actual: total,
                    });
                }
                for s in &lp.shards {
                    if s.chiplet.index() >= pkg.len() {
                        errors.push(ScheduleError::UnknownChiplet {
                            model: mp.name.clone(),
                            layer: lp.source.name().to_string(),
                            chiplet: s.chiplet.0,
                        });
                    }
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{LayerPlan, ModelPlan, ShardAssignment, StagePlan};
    use crate::throughput_match::{MatcherConfig, ThroughputMatcher};
    use npu_dnn::models::attention::{fusion_block, FusionConfig};
    use npu_dnn::{PerceptionConfig, StageKind};
    use npu_maestro::FittedMaestro;
    use npu_mcm::ChipletId;

    #[test]
    fn matched_schedule_is_valid() {
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let outcome = ThroughputMatcher::new(&model, MatcherConfig::default())
            .match_throughput(&pipeline, &pkg);
        assert!(validate_schedule(&outcome.schedule, &pkg).is_empty());
    }

    #[test]
    fn dual_npu_minimized_schedule_is_valid() {
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::dual_npu_12x6();
        let model = FittedMaestro::new();
        let cfg = MatcherConfig {
            allow_fe_split: true,
            ..MatcherConfig::default()
        };
        let outcome = ThroughputMatcher::new(&model, cfg).minimize(&pipeline, &pkg);
        assert!(validate_schedule(&outcome.schedule, &pkg).is_empty());
    }

    #[test]
    fn corrupted_schedule_is_rejected() {
        let g = fusion_block(&FusionConfig::spatial_default());
        let mut mp = ModelPlan::on_single_chiplet("m", g.clone(), ChipletId(0));
        // Corrupt: drop a shard's tokens by replacing with a mini layer.
        let ffn = g.find("s_fuse.ffn").unwrap();
        let mini = npu_dnn::Layer::intrinsic(
            "s_fuse.ffn#1/1",
            npu_dnn::OpKind::Ffn {
                tokens: 1,
                d_model: 256,
                hidden: 1024,
            },
        );
        *mp.layer_plan_mut(ffn) = LayerPlan {
            source: g.layer(ffn).clone(),
            shards: vec![ShardAssignment {
                layer: mini,
                chiplet: ChipletId(99),
            }],
        };
        let schedule = Schedule {
            stages: vec![StagePlan {
                kind: StageKind::SpatialFusion,
                models: vec![mp],
                region: vec![ChipletId(0)],
            }],
        };
        let errors = validate_schedule(&schedule, &McmPackage::simba_6x6());
        assert_eq!(errors.len(), 2); // MAC mismatch + unknown chiplet
        let text: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        assert!(text.iter().any(|t| t.contains("c99")));
        assert!(text.iter().any(|t| t.contains("shards sum")));
    }
}
