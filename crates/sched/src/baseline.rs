//! Table II baseline schedulers: few-big-chip packages with stagewise or
//! layerwise pipelining, no sharding.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_dnn::{PerceptionPipeline, StageKind};
use npu_maestro::CostModel;
use npu_mcm::{ChipletId, McmPackage};
use npu_tensor::float;

use crate::plan::{LayerPlan, ModelPlan, Schedule, StagePlan};

/// Pipelining scheme for the baseline accelerator arrangements (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pipelining {
    /// Whole stages are pipeline units: each stage lives on one chip.
    Stagewise,
    /// Layers/models are pipeline units: concurrent model instances may
    /// spread over chips.
    Layerwise,
}

impl fmt::Display for Pipelining {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pipelining::Stagewise => f.write_str("stagewise"),
            Pipelining::Layerwise => f.write_str("layerwise"),
        }
    }
}

/// Builds a baseline schedule (no sharding).
///
/// * Stagewise: stage `s` is placed entirely on chip `s % chips` — whole
///   stages are the pipeline units.
/// * Layerwise: every *layer* goes to the least-loaded chip (greedy in
///   topological order), letting the 8 concurrent FE+BFPN instances and
///   individual fusion layers pipeline across chips.
pub fn baseline_schedule(
    pipeline: &PerceptionPipeline,
    pkg: &McmPackage,
    pipelining: Pipelining,
    model: &dyn CostModel,
) -> Schedule {
    let chips: Vec<ChipletId> = pkg.ids().collect();
    let mut load: Vec<f64> = vec![0.0; chips.len()];
    let least_loaded = |load: &mut Vec<f64>, time: f64| -> ChipletId {
        let (idx, _) =
            float::total_min_by_key(load.iter().enumerate(), |&(_, &t)| t).expect("non-empty");
        load[idx] += time;
        chips[idx]
    };

    // Stagewise: map whole stages to chips balancing stage totals
    // (longest-processing-time order).
    let ref_acc = pkg.chiplet(chips[0]).accelerator();
    let stage_chip: Vec<ChipletId> = {
        let totals: Vec<f64> = pipeline
            .stages()
            .iter()
            .map(|stage| {
                stage
                    .models()
                    .iter()
                    .map(|sm| {
                        sm.instances() as f64
                            * sm.graph()
                                .iter()
                                .map(|(_, l)| model.layer_cost(l, ref_acc).latency.as_secs())
                                .sum::<f64>()
                    })
                    .sum()
            })
            .collect();
        let mut order: Vec<usize> = (0..totals.len()).collect();
        float::total_sort_desc_by_key(&mut order, |&si| totals[si]);
        let mut chip_load: Vec<f64> = vec![0.0; chips.len()];
        let mut mapping = vec![chips[0]; totals.len()];
        for si in order {
            let (idx, _) = float::total_min_by_key(chip_load.iter().enumerate(), |&(_, &t)| t)
                .expect("non-empty");
            chip_load[idx] += totals[si];
            mapping[si] = chips[idx];
        }
        mapping
    };

    let stages = pipeline
        .stages()
        .iter()
        .enumerate()
        .map(|(si, stage)| {
            let mut models = Vec::new();
            for sm in stage.models() {
                for inst in 0..sm.instances() {
                    let name = format!("{}#{inst}", sm.graph().name());
                    let plan = match pipelining {
                        Pipelining::Stagewise => {
                            let chip = stage_chip[si];
                            ModelPlan::on_single_chiplet(name, sm.graph().clone(), chip)
                        }
                        Pipelining::Layerwise => {
                            let layers = sm
                                .graph()
                                .iter()
                                .map(|(_, l)| {
                                    let t = model
                                        .layer_cost(l, pkg.chiplet(chips[0]).accelerator())
                                        .latency
                                        .as_secs();
                                    LayerPlan::single(l.clone(), least_loaded(&mut load, t))
                                })
                                .collect();
                            ModelPlan {
                                name,
                                graph: sm.graph().clone(),
                                layers,
                            }
                        }
                    };
                    models.push(plan);
                }
            }
            StagePlan {
                kind: stage.kind(),
                models,
                region: chips.clone(),
            }
        })
        .collect();

    Schedule { stages }
}

/// Convenience: true if the stage kind belongs to the paper's Table II
/// scope (the first three bottleneck stages).
pub fn in_table2_scope(kind: StageKind) -> bool {
    kind != StageKind::Trunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use npu_dnn::PerceptionConfig;
    use npu_maestro::FittedMaestro;
    use npu_tensor::Dtype;

    fn bottleneck_pipeline() -> PerceptionPipeline {
        PerceptionConfig::default().build().bottleneck_stages()
    }

    #[test]
    fn monolithic_pipe_equals_e2e() {
        let pipeline = bottleneck_pipeline();
        let pkg = McmPackage::monolithic_9216();
        let model = FittedMaestro::new();
        let s = baseline_schedule(&pipeline, &pkg, Pipelining::Stagewise, &model);
        let r = evaluate(&s, &pkg, &model, Dtype::Fp16);
        // A single chip serializes the whole pipeline.
        assert!((r.pipe.as_secs() - r.e2e.as_secs()).abs() < 1e-9);
        // Paper Table II: ~1.8 s (ours lands in the same band).
        assert!(
            (1.2..2.2).contains(&r.e2e.as_secs()),
            "monolithic e2e {}",
            r.e2e
        );
    }

    #[test]
    fn layerwise_spreads_fe_instances() {
        let pipeline = bottleneck_pipeline();
        let pkg = McmPackage::quad_2304();
        let model = FittedMaestro::new();
        let s = baseline_schedule(&pipeline, &pkg, Pipelining::Layerwise, &model);
        let fe = s.stage(StageKind::FeatureExtraction).unwrap();
        let chips: std::collections::BTreeSet<_> =
            fe.models.iter().flat_map(|m| m.chiplets()).collect();
        assert_eq!(chips.len(), 4, "8 FE models spread over all 4 chips");
    }

    #[test]
    fn more_chips_never_hurt_pipe() {
        let pipeline = bottleneck_pipeline();
        let model = FittedMaestro::new();
        let mut pipes = Vec::new();
        for pkg in [
            McmPackage::monolithic_9216(),
            McmPackage::dual_4608(),
            McmPackage::quad_2304(),
        ] {
            let s = baseline_schedule(&pipeline, &pkg, Pipelining::Layerwise, &model);
            pipes.push(evaluate(&s, &pkg, &model, Dtype::Fp16).pipe);
        }
        assert!(pipes[1] <= pipes[0]);
        assert!(pipes[2] <= pipes[1]);
    }
}
