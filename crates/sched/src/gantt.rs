//! ASCII occupancy chart: chiplet × time view of one pipeline interval.
//!
//! Renders each chiplet's busy time within the pipelining window as a bar,
//! labelled with its dominant workload — a quick visual of how well the
//! throughput matcher balanced the package (compare with the paper's
//! Figs. 5–8 quadrant drawings).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use npu_maestro::CostModel;
use npu_mcm::{ChipletId, McmPackage};
use npu_tensor::{Dtype, Seconds};

use crate::eval::evaluate;
use crate::plan::Schedule;

/// Renders the per-chiplet occupancy chart with `width` characters per
/// full pipelining window.
pub fn render(
    schedule: &Schedule,
    pkg: &McmPackage,
    model: &dyn CostModel,
    width: usize,
) -> String {
    let width = width.max(10);
    let report = evaluate(schedule, pkg, model, Dtype::Fp16);
    let window = report.pipe;

    // Dominant workload label per chiplet.
    let mut labels: BTreeMap<ChipletId, (String, Seconds)> = BTreeMap::new();
    for stage in &schedule.stages {
        for mp in &stage.models {
            for lp in &mp.layers {
                for shard in &lp.shards {
                    let t = model
                        .layer_cost(&shard.layer, pkg.chiplet(shard.chiplet).accelerator())
                        .latency;
                    let entry = labels
                        .entry(shard.chiplet)
                        .or_insert((String::new(), Seconds::ZERO));
                    if t > entry.1 {
                        *entry = (format!("{}/{}", mp.name, lp.source.name()), t);
                    }
                }
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chiplet occupancy over one {window} pipelining window ('#' = busy)"
    );
    for (chiplet, busy) in &report.busy {
        let frac = (busy.as_secs() / window.as_secs()).clamp(0.0, 1.0);
        let filled = (frac * width as f64).round() as usize;
        let bar: String = "#".repeat(filled) + &" ".repeat(width - filled.min(width));
        let label = labels
            .get(chiplet)
            .map(|(l, _)| l.as_str())
            .unwrap_or("idle");
        let _ = writeln!(
            out,
            "{:>4} |{bar}| {:5.1}%  {label}",
            chiplet.to_string(),
            frac * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput_match::{MatcherConfig, ThroughputMatcher};
    use npu_dnn::PerceptionConfig;
    use npu_maestro::FittedMaestro;

    #[test]
    fn renders_all_used_chiplets() {
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let outcome = ThroughputMatcher::new(&model, MatcherConfig::default())
            .match_throughput(&pipeline, &pkg);
        let chart = render(&outcome.schedule, &pkg, &model, 40);
        let used = outcome.schedule.chiplets_used().len();
        // One line per used chiplet plus the header.
        assert_eq!(chart.lines().count(), used + 1);
        // The FE chiplets are nearly fully busy.
        assert!(chart.contains("fe_bfpn"));
        assert!(chart.contains('#'));
    }

    #[test]
    fn bars_never_overflow() {
        let pipeline = PerceptionConfig::default().build();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let outcome = ThroughputMatcher::new(&model, MatcherConfig::default())
            .match_throughput(&pipeline, &pkg);
        let chart = render(&outcome.schedule, &pkg, &model, 20);
        for line in chart.lines().skip(1) {
            let bar = line.split('|').nth(1).expect("bar section");
            assert_eq!(bar.len(), 20, "{line}");
        }
    }
}
