//! Scoped-thread parallel executor for sweep grids.
//!
//! The paper's headline artifacts (Table I DSE, the Fig. 9–11 scaling /
//! failure / NoP sweeps) are all grids of *independent* simulate-and-score
//! points. This crate provides the worker pool that fans those grids out
//! across cores without changing a single result bit:
//!
//! * [`par_map`] / [`par_map_indexed`] — map a pure function over a slice
//!   on `current_jobs()` scoped threads, returning results in **input
//!   order**. With a deterministic `f`, the output is exactly the output
//!   of the corresponding serial `map`, for every jobs count.
//! * [`join`] — run two independent closures concurrently.
//! * [`set_default_jobs`] / [`with_jobs`] — process-wide and scoped
//!   control of the worker count (the `repro --jobs N` flag feeds the
//!   former; tests pin determinism with the latter).
//!
//! Built on [`std::thread::scope`], so closures may borrow from the
//! caller's stack and no external dependency is needed (the vendored
//! registry is offline).
//!
//! # Determinism
//!
//! Work items are claimed from an atomic counter (load-balancing across
//! heterogeneous point costs) but every result is written back to the
//! slot of its input index, so ordering — and therefore any downstream
//! fold, argmin or tie-break — is independent of scheduling. The
//! executors deliberately expose no reduce-in-arrival-order primitive.
//!
//! # Examples
//!
//! ```
//! let squares = npu_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Scoped override: force a serial run regardless of the machine.
//! let serial = npu_par::with_jobs(1, || npu_par::par_map(&[1u64, 2, 3, 4], |&x| x * x));
//! assert_eq!(serial, squares);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Process-wide default worker count; `0` means "not set, use
/// [`available_jobs`]".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_jobs`]; workers spawned by
    /// [`par_map`]/[`join`] get their share of the caller's budget
    /// (`caller jobs / workers`, min 1) so nesting never multiplies the
    /// total thread count.
    static JOBS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The machine's available parallelism (≥ 1).
pub fn available_jobs() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets the process-wide default worker count (clamped to ≥ 1).
///
/// The `repro` CLI calls this once at startup from its `--jobs N` flag.
/// A scoped [`with_jobs`] override still takes precedence.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The worker count the next [`par_map`] on this thread will use:
/// the innermost [`with_jobs`] override, else the [`set_default_jobs`]
/// value, else [`available_jobs`].
pub fn current_jobs() -> usize {
    JOBS_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(|| match DEFAULT_JOBS.load(Ordering::Relaxed) {
            0 => available_jobs(),
            n => n,
        })
}

/// Runs `f` with the worker count overridden to `jobs` (clamped to ≥ 1)
/// on this thread; [`par_map`]/[`join`] calls inside `f` spread that
/// budget across their workers (each worker gets `jobs / workers`,
/// min 1).
///
/// The override is restored on exit, including on panic.
pub fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(JOBS_OVERRIDE.with(|o| o.replace(Some(jobs.max(1)))));
    f()
}

/// Maps `f` over `items` on up to [`current_jobs`] scoped threads,
/// returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` for any pure `f`, at
/// every jobs count. Panics in `f` propagate to the caller.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// [`par_map`] with the input index passed to `f`.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let jobs = current_jobs().min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Workers claim indices from a shared counter (load balance) and
    // write each result into the slot of its input index (determinism).
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    // Divide the jobs budget across nesting levels: `jobs` workers each
    // inherit `jobs_total / jobs`, so a nested par_map (e.g. a sweep
    // inside run_all) keeps total concurrency near the budget instead of
    // multiplying it. Results are jobs-invariant, so the split only
    // affects scheduling, never output.
    let inner_jobs = (current_jobs() / jobs).max(1);
    thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    JOBS_OVERRIDE.with(|o| o.set(Some(inner_jobs)));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let out = f(i, item);
                        *slots[i].lock().expect("no poisoned slot") = Some(out);
                    }
                })
            })
            .collect();
        for worker in workers {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slot")
                .expect("every slot filled")
        })
        .collect()
}

/// [`par_map`] that stays serial below `min_len` items.
///
/// For fine-grained inner loops (e.g. candidate scoring inside the
/// throughput matcher) where per-item work is microseconds, spawning
/// threads costs more than it saves; this keeps the parallel path for
/// grids that amortize it.
pub fn par_map_threshold<T, U, F>(items: &[T], min_len: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() < min_len {
        items.iter().map(f).collect()
    } else {
        par_map(items, f)
    }
}

/// Runs two independent closures concurrently and returns both results.
///
/// Serial (left then right) when [`current_jobs`] is 1, so scoped
/// overrides pin execution order too.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    B: Send,
    FA: FnOnce() -> A,
    FB: FnOnce() -> B + Send,
{
    if current_jobs() <= 1 {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    // Split the jobs budget between the two sides (see par_map_indexed).
    let inner_jobs = (current_jobs() / 2).max(1);
    thread::scope(|s| {
        let right = s.spawn(move || {
            JOBS_OVERRIDE.with(|o| o.set(Some(inner_jobs)));
            fb()
        });
        let a = with_jobs(inner_jobs, fa);
        let b = match right.join() {
            Ok(b) => b,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use proptest::prelude::*;

    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 3 + 1);
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_sees_correct_indices() {
        let items = vec!["a"; 64];
        let out = par_map_indexed(&items, |i, s| format!("{s}{i}"));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &format!("a{i}"));
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn with_jobs_forces_serial_on_caller_thread() {
        with_jobs(1, || {
            assert_eq!(current_jobs(), 1);
            let caller = thread::current().id();
            let out = par_map(&[1, 2, 3], |_| thread::current().id());
            assert!(out.iter().all(|&id| id == caller), "jobs=1 stays inline");
        });
    }

    #[test]
    fn with_jobs_restores_on_exit() {
        let outer = current_jobs();
        with_jobs(3, || assert_eq!(current_jobs(), 3));
        assert_eq!(current_jobs(), outer);
    }

    #[test]
    fn workers_split_the_jobs_budget() {
        // 2 workers over a 2-wide budget: each inner level gets 1 job,
        // so nested par_maps stay serial instead of multiplying threads.
        with_jobs(2, || {
            let seen = par_map(&[(), ()], |_| current_jobs());
            assert_eq!(seen, vec![1, 1]);
        });
        // 8-wide budget over 2 items: each worker may fan out 4-wide.
        with_jobs(8, || {
            let seen = par_map(&[(), ()], |_| current_jobs());
            assert_eq!(seen, vec![4, 4]);
        });
    }

    #[test]
    fn multiple_workers_actually_run() {
        with_jobs(4, || {
            let barrierish: Vec<u64> = (0..64).collect();
            let ids = Mutex::new(HashSet::new());
            par_map(&barrierish, |_| {
                ids.lock().unwrap().insert(thread::current().id());
                std::thread::yield_now();
            });
            assert!(
                ids.into_inner().unwrap().len() > 1,
                "work spread over threads"
            );
        });
    }

    #[test]
    fn every_item_is_claimed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u64> = (0..257).collect();
        let out = with_jobs(8, || {
            par_map(&items, |&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x
            })
        });
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
        assert_eq!(out, items);
    }

    #[test]
    fn threshold_stays_serial_below_min_len() {
        with_jobs(4, || {
            let caller = thread::current().id();
            let out = par_map_threshold(&[1, 2, 3], 16, |_| thread::current().id());
            assert!(out.iter().all(|&id| id == caller));
        });
    }

    #[test]
    fn join_returns_both_sides() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!((a, b), (42, "ok"));
        let (a, b) = with_jobs(1, || join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        with_jobs(2, || {
            par_map(&[1, 2, 3, 4], |&x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
    }

    #[test]
    fn set_default_jobs_clamps_to_one() {
        // Runs in its own process-global; override wins over it anyway.
        set_default_jobs(0);
        with_jobs(2, || assert_eq!(current_jobs(), 2));
    }

    proptest! {
        /// The tentpole determinism contract: par_map == serial map, for
        /// any input and any jobs count.
        #[test]
        fn par_map_matches_serial_map(
            items in proptest::collection::vec(0u64..1_000_000, 0..64),
            jobs in 1usize..9,
        ) {
            let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) >> 3).collect();
            let parallel = with_jobs(jobs, || {
                par_map(&items, |&x| x.wrapping_mul(2654435761) >> 3)
            });
            prop_assert_eq!(parallel, serial);
        }
    }
}
