//! Benchmarks the scenario workbench: one full grid point (schedule +
//! analytic evaluation + DES run) and the built-in grid at serial vs
//! all-cores worker counts.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_scenario::{evaluate_point, scenario_sweep, Scenario, SWEEP_FRAMES};

fn bench(c: &mut Criterion) {
    let model = FittedMaestro::new();
    let scenarios = Scenario::builtin();
    let packages = [McmPackage::simba_6x6()];

    // One point end to end: the unit of work the sweep fans out.
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("one_point_highway_6x6", |b| {
        b.iter(|| evaluate_point(&scenarios[0], &packages[0], &model, SWEEP_FRAMES))
    });

    // The whole built-in grid, serial vs parallel. Results are
    // bit-identical either way (tests/par_determinism.rs); the tracked
    // gap is the win of fanning scenario grids out on the worker pool.
    g.bench_function("sweep_serial_jobs1", |b| {
        b.iter(|| {
            npu_par::with_jobs(1, || {
                scenario_sweep(&scenarios, &packages, &model, SWEEP_FRAMES)
            })
        })
    });
    g.bench_function("sweep_parallel_all_cores", |b| {
        b.iter(|| {
            npu_par::with_jobs(npu_par::available_jobs(), || {
                scenario_sweep(&scenarios, &packages, &model, SWEEP_FRAMES)
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
