//! Regenerates the paper's table3 and benchmarks the regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artifact once, then measure its cost.
    println!("{}", npu_experiments::table3::run());
    let mut g = c.benchmark_group("repro");
    g.sample_size(20);
    g.bench_function("table3", |b| b.iter(npu_experiments::table3::run));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
