//! Benchmarks the drive timeline runner: one full timeline (match every
//! segment, price every re-match, phased DES end to end) and the
//! drive × package grid at serial vs all-cores worker counts.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_mcm::McmPackage;
use npu_scenario::{drive_sweep, simulate_drive, Drive};

fn bench(c: &mut Criterion) {
    let model = FittedMaestro::new();
    let reconfig = ReconfigModel::default();
    let drives = Drive::builtin();
    let packages = [McmPackage::simba_6x6()];

    let mut g = c.benchmark_group("drive");
    g.sample_size(10);
    // One timeline end to end: the unit of work the sweep fans out.
    g.bench_function("cruise_urban_degraded_6x6", |b| {
        b.iter(|| simulate_drive(&drives[0], &packages[0], &model, &reconfig))
    });

    // The built-in grid, serial vs parallel; results are bit-identical
    // either way (tests/drive_timeline.rs).
    g.bench_function("sweep_serial_jobs1", |b| {
        b.iter(|| npu_par::with_jobs(1, || drive_sweep(&drives, &packages, &model, &reconfig)))
    });
    g.bench_function("sweep_parallel_all_cores", |b| {
        b.iter(|| {
            npu_par::with_jobs(npu_par::available_jobs(), || {
                drive_sweep(&drives, &packages, &model, &reconfig)
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
