//! Benchmarks the discrete-event engine hot path at fleet-day scale:
//! a long saturated run (pure engine throughput, no arrival gaps) and a
//! long drive timeline (phased engine + matcher, the shape `repro drive`
//! and the planned fleet artifact pay per vehicle). Medians seed
//! `BENCH_des_engine.json`; append one entry per PR that touches the
//! engine hot path so regressions stay visible PR-over-PR.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use npu_dnn::models::attention::{fusion_block, FusionConfig};
use npu_dnn::StageKind;
use npu_maestro::{FittedMaestro, ReconfigModel};
use npu_mcm::{ChipletId, McmPackage};
use npu_pipesim::{simulate, SimConfig};
use npu_scenario::{simulate_drive, Drive};
use npu_sched::{LayerPlan, ModelPlan, Schedule, StagePlan};
use npu_tensor::Seconds;

/// Frames in the saturated case: enough that per-frame costs dominate
/// setup, small enough that one sample stays sub-second.
const SATURATED_FRAMES: usize = 100_000;

/// Seconds per segment of the long drive: 240 s of 30 FPS video per leg
/// (7 200 frames), three legs — a million-frame day is 120 of these.
const SEGMENT_SECS: f64 = 240.0;

/// A two-chiplet pipelined schedule: qkv on chiplet 0, the rest of the
/// fusion block on chiplet 1, so frames overlap and the in-flight pool
/// holds more than one frame.
fn pipelined_schedule() -> Schedule {
    let g = fusion_block(&FusionConfig::spatial_default());
    let mut mp = ModelPlan::on_single_chiplet("s", g.clone(), ChipletId(1));
    let qkv = g.find("s_fuse.qkv").expect("fusion block has a qkv layer");
    *mp.layer_plan_mut(qkv) = LayerPlan::single(g.layer(qkv).clone(), ChipletId(0));
    Schedule {
        stages: vec![StagePlan {
            kind: StageKind::SpatialFusion,
            models: vec![mp],
            region: vec![ChipletId(0), ChipletId(1)],
        }],
    }
}

/// The cruise → urban → degraded timeline stretched to `SEGMENT_SECS`
/// per leg, long enough that the phased DES dominates the per-segment
/// matching.
fn long_drive() -> Drive {
    Drive::cruise_urban_degraded_scaled(Seconds::new(SEGMENT_SECS))
}

fn bench(c: &mut Criterion) {
    let model = FittedMaestro::new();
    let pkg = McmPackage::simba_6x6();

    let mut g = c.benchmark_group("des_engine");
    g.sample_size(10);

    // Pure engine throughput: every frame at t = 0, the pipeline always
    // busy — the per-frame event-calendar cost with zero arrival slack.
    let schedule = pipelined_schedule();
    g.bench_function("saturated_100k", |b| {
        b.iter(|| {
            black_box(simulate(
                &schedule,
                &pkg,
                &model,
                &SimConfig::saturated(SATURATED_FRAMES),
            ))
        })
    });

    // The long-drive case the acceptance bar tracks: three 240 s legs
    // (~21 600 frames), two priced re-matches, phased DES end to end.
    let drive = long_drive();
    g.bench_function("drive_3x240s_6x6", |b| {
        b.iter(|| {
            black_box(simulate_drive(
                &drive,
                &pkg,
                &model,
                &ReconfigModel::default(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
