//! Benchmarks of the multi-tenant fleet layer's hot paths: one
//! co-scheduled admission (partition compile + shared-calendar DES
//! verification), first-fit fleet packing with the failed-shape memo,
//! and a full preemption event (two DES epochs + rematch accounting).
//! These bound what `repro fleet` pays per vehicle as fleets grow;
//! medians are recorded in `BENCH_fleet.json` — append one entry per PR
//! that touches the admission or preemption paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use npu_fleet::{
    os256_package, pack_fleet, preemption_event, CoScheduler, FleetSpec, VehicleProfile,
};
use npu_maestro::{FittedMaestro, ReconfigModel};

fn bench(c: &mut Criterion) {
    let model = FittedMaestro::new();
    let catalog = VehicleProfile::catalog();
    let profile = |name: &str| catalog.iter().find(|p| p.name == name).expect("profile");

    // One admission: two best-effort miners on the paper's 6x6 geometry
    // (the pair the preemption demo starts from). Covers the D'Hondt
    // partition, two band matches and one two-tenant DES verification.
    let pair = vec![profile("mining").vehicle(1), profile("mining").vehicle(2)];
    c.bench_function("fleet_admit_pair_6x6", |b| {
        b.iter(|| {
            let mut sched = CoScheduler::new(os256_package(6, 6), &model).with_verify_frames(16);
            black_box(sched.admit(&pair).admitted())
        })
    });

    // First-fit packing of a 16-vehicle sampled fleet: the per-vehicle
    // instance probing that dominates `repro fleet`, failure-memoized.
    let fleet = FleetSpec::sample(16, 2025);
    c.bench_function("fleet_pack_16_vehicles_6x6", |b| {
        b.iter(|| {
            black_box(pack_fleet(&fleet.vehicles, &os256_package(6, 6), &model, 16).admitted())
        })
    });

    // A preemption event end-to-end: epoch-1 DES, re-partition under
    // the safety arrival, per-tenant rematch costs, epoch-2 DES.
    let arriving = profile("av-cruise").vehicle(0);
    let reconfig = ReconfigModel::default();
    c.bench_function("fleet_preemption_event_8x6", |b| {
        b.iter(|| {
            let mut sched = CoScheduler::new(os256_package(8, 6), &model);
            black_box(
                preemption_event(&mut sched, &pair, &arriving, 6.0, 32, &reconfig)
                    .expect("partition exists")
                    .tenants
                    .len(),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
