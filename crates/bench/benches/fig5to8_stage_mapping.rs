//! Regenerates the paper's fig5to8 and benchmarks the regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artifact once, then measure its cost.
    println!("{}", npu_experiments::fig5to8::run());
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("fig5to8", |b| b.iter(npu_experiments::fig5to8::run));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
