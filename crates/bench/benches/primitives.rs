//! Micro-benchmarks of the simulator's core primitives: per-layer cost
//! queries, full-graph costing, schedule evaluation and the DES engine.
//! These bound the cost of the schedulers' inner loops.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_dnn::models::attention::{fusion_block, FusionConfig};
use npu_dnn::models::{fe_bfpn, BifpnConfig, FeConfig};
use npu_dnn::{Layer, OpKind, PerceptionConfig};
use npu_maestro::{graph_cost, Accelerator, CostModel, FittedMaestro};
use npu_mcm::McmPackage;
use npu_pipesim::{simulate, SimConfig};
use npu_sched::{evaluate, MatcherConfig, ThroughputMatcher};
use npu_tensor::Dtype;

fn bench(c: &mut Criterion) {
    let model = FittedMaestro::new();
    let os = Accelerator::shidiannao_like(256);

    let qkv = Layer::intrinsic(
        "qkv",
        OpKind::Dense {
            tokens: 12_800,
            in_features: 256,
            out_features: 768,
        },
    );
    c.bench_function("layer_cost_dense", |b| {
        b.iter(|| model.layer_cost(&qkv, &os))
    });

    let fe = fe_bfpn(&FeConfig::default(), &BifpnConfig::default());
    c.bench_function("graph_cost_fe_bfpn_60_layers", |b| {
        b.iter(|| graph_cost(&model, &fe, &os))
    });

    let s_fuse = fusion_block(&FusionConfig::spatial_default());
    c.bench_function("graph_cost_fusion", |b| {
        b.iter(|| graph_cost(&model, &s_fuse, &os))
    });

    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);

    c.bench_function("evaluate_matched_schedule", |b| {
        b.iter(|| evaluate(&outcome.schedule, &pkg, &model, Dtype::Fp16))
    });

    let mut g = c.benchmark_group("des");
    g.sample_size(10);
    g.bench_function("simulate_8_frames", |b| {
        b.iter(|| simulate(&outcome.schedule, &pkg, &model, &SimConfig::saturated(8)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
