//! Micro-benchmarks of the simulator's core primitives: per-layer cost
//! queries, full-graph costing, schedule evaluation and the DES engine.
//! These bound the cost of the schedulers' inner loops.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_dnn::models::attention::{fusion_block, FusionConfig};
use npu_dnn::models::{fe_bfpn, BifpnConfig, FeConfig};
use npu_dnn::{Layer, OpKind, PerceptionConfig};
use npu_maestro::{graph_cost, Accelerator, CostModel, FittedMaestro, MemoCostModel};
use npu_mcm::McmPackage;
use npu_pipesim::{simulate, SimConfig};
use npu_sched::sweep::chiplet_count_sweep;
use npu_sched::{evaluate, MatcherConfig, ThroughputMatcher};
use npu_tensor::Dtype;

fn bench(c: &mut Criterion) {
    let model = FittedMaestro::new();
    let os = Accelerator::shidiannao_like(256);

    let qkv = Layer::intrinsic(
        "qkv",
        OpKind::Dense {
            tokens: 12_800,
            in_features: 256,
            out_features: 768,
        },
    );
    c.bench_function("layer_cost_dense", |b| {
        b.iter(|| model.layer_cost(&qkv, &os))
    });

    let fe = fe_bfpn(&FeConfig::default(), &BifpnConfig::default());
    c.bench_function("graph_cost_fe_bfpn_60_layers", |b| {
        b.iter(|| graph_cost(&model, &fe, &os))
    });

    let s_fuse = fusion_block(&FusionConfig::spatial_default());
    c.bench_function("graph_cost_fusion", |b| {
        b.iter(|| graph_cost(&model, &s_fuse, &os))
    });

    let pipeline = PerceptionConfig::default().build();
    let pkg = McmPackage::simba_6x6();
    let outcome =
        ThroughputMatcher::new(&model, MatcherConfig::default()).match_throughput(&pipeline, &pkg);

    c.bench_function("evaluate_matched_schedule", |b| {
        b.iter(|| evaluate(&outcome.schedule, &pkg, &model, Dtype::Fp16))
    });

    let mut g = c.benchmark_group("des");
    g.sample_size(10);
    g.bench_function("simulate_8_frames", |b| {
        b.iter(|| simulate(&outcome.schedule, &pkg, &model, &SimConfig::saturated(8)))
    });
    g.finish();

    // The memoized cost model: a cold cache pays one hash per query, a
    // warm cache replaces the whole analytic evaluation with a lookup.
    c.bench_function("layer_cost_memoized_warm", |b| {
        let memo = MemoCostModel::new(&model);
        memo.layer_cost(&qkv, &os);
        b.iter(|| memo.layer_cost(&qkv, &os))
    });

    // Serial vs parallel execution of a small sweep grid: the same
    // eight points, jobs pinned to 1 vs all cores. On a multi-core host
    // the parallel entry must beat the serial one; the BENCH_*.json
    // tracker records the gap. Results are bit-identical either way
    // (asserted by tests/par_determinism.rs).
    let grid: [(u32, u32); 8] = [
        (2, 2),
        (3, 2),
        (2, 3),
        (3, 3),
        (4, 2),
        (2, 4),
        (4, 3),
        (3, 4),
    ];
    let mut g = c.benchmark_group("sweep_grid");
    g.sample_size(10);
    g.bench_function("serial_jobs1", |b| {
        b.iter(|| npu_par::with_jobs(1, || chiplet_count_sweep(&pipeline, &grid, &model)))
    });
    g.bench_function("parallel_all_cores", |b| {
        b.iter(|| {
            npu_par::with_jobs(npu_par::available_jobs(), || {
                chiplet_count_sweep(&pipeline, &grid, &model)
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
