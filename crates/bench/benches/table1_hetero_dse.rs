//! Regenerates the paper's table1 and benchmarks the regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the regenerated artifact once, then measure its cost.
    println!("{}", npu_experiments::table1::run());
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(npu_experiments::table1::run));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
