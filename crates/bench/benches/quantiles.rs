//! Micro-benchmarks of the streaming [`Quantiles`] sketch: the insert
//! hot path the DES report pays per frame, the query that renders the
//! four standard percentiles, and the shard merge that rolls per-segment
//! sketches into whole-drive tails. These bound the overhead tails add
//! to every `SimReport` as frame counts grow toward fleet-scale runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use npu_pipesim::Quantiles;

/// A deterministic scrambled latency stream in (0, 1]: steady body with
/// the occasional heavy value, the shape DES frame latencies take.
fn stream(n: u64) -> impl Iterator<Item = f64> {
    (0..n).map(|i| ((i.wrapping_mul(2_654_435_761) % 100_000) + 1) as f64 / 100_000.0)
}

fn bench(c: &mut Criterion) {
    // Insert throughput at the default capacity: the exact path (every
    // sample retained) vs a stream that has overflowed into compaction.
    let mut g = c.benchmark_group("quantiles_insert");
    g.bench_function("exact_512", |b| {
        b.iter(|| {
            let mut q = Quantiles::new();
            for v in stream(512) {
                q.insert(v);
            }
            black_box(q.count())
        })
    });
    g.bench_function("compacting_16k", |b| {
        b.iter(|| {
            let mut q = Quantiles::new();
            for v in stream(16_384) {
                q.insert(v);
            }
            black_box(q.count())
        })
    });
    g.finish();

    // The query: sort retained samples, walk cumulative weights for all
    // four standard percentiles (what `LatencyQuantiles::from_stream`
    // does once per report).
    let mut loaded = Quantiles::new();
    for v in stream(16_384) {
        loaded.insert(v);
    }
    c.bench_function("quantiles_query_4_percentiles", |b| {
        b.iter(|| {
            for phi in [0.50, 0.95, 0.99, 0.999] {
                black_box(loaded.quantile(phi));
            }
        })
    });

    // Merging per-shard sketches into a whole-stream rollup.
    let shards: Vec<Quantiles> = (0..8)
        .map(|s| {
            let mut q = Quantiles::new();
            for v in stream(2_048).skip(s * 7 % 5) {
                q.insert(v);
            }
            q
        })
        .collect();
    c.bench_function("quantiles_merge_8_shards", |b| {
        b.iter(|| {
            let mut whole = Quantiles::new();
            for s in &shards {
                whole.merge(s);
            }
            black_box(whole.quantile(0.99))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
