//! End-to-end tests of the `repro` CLI: argument parsing, exit codes and
//! the `--json` output mode.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn unknown_artifact_exits_nonzero() {
    let out = repro(&["no_such_artifact"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown artifact `no_such_artifact`"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("expected fig3"), "stderr: {stderr}");
}

#[test]
fn unknown_artifact_exits_nonzero_in_json_mode() {
    let out = repro(&["--json", "no_such_artifact"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown artifact `no_such_artifact`"),
        "stderr: {stderr}"
    );
}

#[test]
fn one_bad_artifact_fails_the_whole_invocation() {
    // A valid artifact before the bad one must not mask the failure.
    let out = repro(&["fig3", "no_such_artifact"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Fig. 3"), "fig3 should still render");
}

#[test]
fn json_mode_emits_valid_json() {
    let out = repro(&["--json", "fig3"]);
    assert!(out.status.success(), "repro --json fig3 failed");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
    assert!(
        value.as_object().is_some(),
        "expected a top-level JSON object"
    );
}

#[test]
fn json_all_emits_one_document_per_artifact() {
    let out = repro(&["--json", "all"]);
    assert!(out.status.success(), "repro --json all failed");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Concatenated pretty-printed documents: one per artifact, each
    // opening at column 0.
    let docs = stdout.matches("\n{\n").count() + usize::from(stdout.starts_with('{'));
    assert_eq!(docs, 18, "expected 18 JSON documents:\n{stdout}");
}

#[test]
fn list_prints_the_registry_one_artifact_per_line() {
    let out = repro(&["--list"]);
    assert!(out.status.success(), "repro --list failed");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 18, "one line per artifact:\n{stdout}");
    assert_eq!(lines[0], "fig3");
    assert!(
        lines.contains(&"fig5to8 (aliases: fig5, fig6, fig7, fig8)"),
        "{stdout}"
    );
    assert!(
        lines.contains(&"scenario-dse (aliases: scenario_dse)"),
        "{stdout}"
    );
    assert!(
        lines.contains(&"drive (aliases: drives, drive-timelines)"),
        "{stdout}"
    );
    assert!(
        lines.contains(&"drive-long (aliases: long-drive, drive_long)"),
        "{stdout}"
    );
    assert!(
        lines.contains(&"tails (aliases: tail, tail-latency)"),
        "{stdout}"
    );
    assert!(
        lines.contains(&"fleet (aliases: fleet-dse, tenants)"),
        "{stdout}"
    );
    assert!(lines.contains(&"lint (aliases: lints, check)"), "{stdout}");
}

#[test]
fn list_json_emits_a_json_array() {
    for args in [&["--list", "--json"][..], &["--json", "--list"]] {
        let out = repro(args);
        assert!(out.status.success(), "repro {args:?} failed");
        let stdout = String::from_utf8(out.stdout).unwrap();
        let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
        let entries = value.as_array().expect("a top-level JSON array");
        assert_eq!(entries.len(), 18);
        let names: Vec<&str> = entries
            .iter()
            .map(|e| e.get("name").and_then(|v| v.as_str()).unwrap())
            .collect();
        assert!(names.contains(&"scenario-dse"), "{names:?}");
        assert!(names.contains(&"tails"), "{names:?}");
        // Aliases ride along as arrays.
        let panel = entries
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("fig5to8"))
            .expect("fig5to8 listed");
        assert_eq!(
            panel
                .get("aliases")
                .and_then(|v| v.as_array())
                .unwrap()
                .len(),
            4
        );
    }
}

#[test]
fn flags_are_accepted_anywhere_in_argv() {
    // `repro fig3 --json` used to fail with "unknown artifact `--json`".
    let trailing = repro(&["fig3", "--json"]);
    assert!(trailing.status.success(), "repro fig3 --json failed");
    let leading = repro(&["--json", "fig3"]);
    assert_eq!(
        String::from_utf8(trailing.stdout).unwrap(),
        String::from_utf8(leading.stdout).unwrap(),
        "flag position must not change the output"
    );

    let mixed = repro(&["fig3", "--jobs", "2", "--json"]);
    assert!(mixed.status.success(), "repro fig3 --jobs 2 --json failed");
    let stdout = String::from_utf8(mixed.stdout).unwrap();
    let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
    assert!(value.as_object().is_some());
}

#[test]
fn list_refuses_artifact_names() {
    let out = repro(&["fig3", "--list"]);
    assert!(!out.status.success(), "mixing --list with names must fail");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("--list does not combine"),
        "stderr: {stderr}"
    );
}

#[test]
fn unknown_flags_exit_nonzero() {
    let out = repro(&["fig3", "--frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown flag `--frobnicate`"), "{stderr}");
}

#[test]
fn text_mode_renders_the_artifact() {
    let out = repro(&["fig3"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Fig. 3"), "stdout: {stdout}");
}

/// `repro tails` reports p50/p95/p99/p99.9 per scenario family and per
/// drive segment, and names the mean-vs-tail winner shift (ISSUE 6).
#[test]
fn tails_artifact_reports_percentiles_and_the_winner_shift() {
    let out = repro(&["--jobs", "2", "tails"]);
    assert!(out.status.success(), "repro tails failed");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Tail-latency DSE"), "stdout: {stdout}");
    assert!(stdout.contains("Drive-segment tails"), "{stdout}");
    for col in ["p50", "p95", "p99", "p99.9"] {
        assert!(stdout.contains(col), "missing {col}: {stdout}");
    }
    // The headline shift: mean winner 6x6, p99-SLO winner 8x6.
    assert!(
        stdout.contains("cheapest at the mean = os256-6x6"),
        "{stdout}"
    );
    assert!(stdout.contains("= os256-8x6"), "{stdout}");

    // JSON mode carries the typed schema, aliases resolve.
    let json = repro(&["--json", "tail-latency"]);
    assert!(json.status.success(), "repro --json tail-latency failed");
    let stdout = String::from_utf8(json.stdout).unwrap();
    let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
    let obj = value.as_object().expect("a top-level JSON object");
    for key in ["cheapest_tail", "family_winners"] {
        assert!(obj.iter().any(|(k, _)| k == key), "missing {key}: {stdout}");
    }
}

/// `repro fleet` packs a 100+ vehicle fleet onto 3+ package
/// configurations, names the cheapest feasible mix, and shows the
/// priority-preemption event (ISSUE 9).
#[test]
fn fleet_artifact_reports_the_package_mix_and_preemption() {
    let out = repro(&["--jobs", "2", "fleet"]);
    assert!(out.status.success(), "repro fleet failed");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("Fleet package-mix DSE - 120 vehicles"),
        "{stdout}"
    );
    assert!(
        stdout.contains("cheapest feasible uniform pool"),
        "{stdout}"
    );
    assert!(stdout.contains("mixed pool"), "{stdout}");
    assert!(stdout.contains("Priority preemption"), "{stdout}");

    // JSON mode carries the typed schema, aliases resolve.
    let json = repro(&["--json", "fleet-dse"]);
    assert!(json.status.success(), "repro --json fleet-dse failed");
    let stdout = String::from_utf8(json.stdout).unwrap();
    let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
    let obj = value.as_object().expect("a top-level JSON object");
    for key in ["cheapest_feasible", "configs", "mixed", "preemption"] {
        assert!(obj.iter().any(|(k, _)| k == key), "missing {key}: {stdout}");
    }
}

/// `repro lint` renders the static-analysis report, resolves its
/// aliases, and exposes the typed schema in JSON mode (ISSUE 7).
#[test]
fn lint_artifact_reports_a_clean_workspace() {
    let out = repro(&["lint"]);
    assert!(out.status.success(), "repro lint failed");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Static analysis"), "stdout: {stdout}");
    assert!(stdout.contains("workspace is lint-clean"), "{stdout}");
    for code in ["D001", "D002", "D003", "D004", "D005", "D006"] {
        assert!(stdout.contains(code), "missing {code}: {stdout}");
    }

    // Aliases resolve; JSON mode carries the typed schema.
    let json = repro(&["--json", "check"]);
    assert!(json.status.success(), "repro --json check failed");
    let stdout = String::from_utf8(json.stdout).unwrap();
    let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
    let obj = value.as_object().expect("a top-level JSON object");
    for key in ["files_scanned", "clean", "rules", "allows"] {
        assert!(obj.iter().any(|(k, _)| k == key), "missing {key}: {stdout}");
    }
}

#[test]
fn jobs_flag_is_accepted_and_output_is_jobs_invariant() {
    let one = repro(&["--jobs", "1", "fig3"]);
    assert!(one.status.success(), "repro --jobs 1 fig3 failed");
    let two = repro(&["--jobs=2", "fig3"]);
    assert!(two.status.success(), "repro --jobs=2 fig3 failed");
    assert_eq!(
        String::from_utf8(one.stdout).unwrap(),
        String::from_utf8(two.stdout).unwrap(),
        "worker count must not change rendered results"
    );
}

#[test]
fn jobs_flag_composes_with_json_in_any_order() {
    let out = repro(&["--jobs", "2", "--json", "fig3"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let value: serde_json::Value = serde_json::from_str(stdout.trim()).expect("valid JSON");
    assert!(value.as_object().is_some());
}

#[test]
fn malformed_jobs_flag_exits_nonzero() {
    for bad in [&["--jobs", "0"][..], &["--jobs", "x"], &["--jobs"]] {
        let out = repro(bad);
        assert!(!out.status.success(), "args {bad:?} should fail");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("--jobs expects"), "stderr: {stderr}");
    }
}
