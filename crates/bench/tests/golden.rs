//! Golden-file regression tests for the `repro --json` output.
//!
//! Every artifact in the stack is deterministic (analytic evaluation,
//! seeded DES runs, input-ordered parallel sweeps), so the serialized
//! JSON is byte-stable. Pinning it catches both schema drift (renamed
//! or dropped fields breaking downstream consumers) and silent result
//! drift (a cost-model change moving numbers nobody meant to move).
//!
//! On an intentional change, regenerate with:
//!
//! ```text
//! BLESS=1 cargo test -p repro --test golden
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Runs `repro --json <name>` (with a pinned worker count, which must
/// not matter) and compares the output byte-for-byte with the golden
/// file. `BLESS=1` rewrites the golden instead.
fn check_golden(name: &str) {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--jobs", "2", "--json", name])
        .output()
        .expect("spawn repro");
    assert!(out.status.success(), "repro --json {name} failed");
    let actual = String::from_utf8(out.stdout).expect("utf-8 output");
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}\n\
             generate it with: BLESS=1 cargo test -p repro --test golden",
            path.display()
        )
    });
    assert!(
        actual == expected,
        "`repro --json {name}` drifted from {}.\n\
         If the change is intentional, regenerate with:\n\
         BLESS=1 cargo test -p repro --test golden\n\
         --- first diverging line ---\n{}",
        path.display(),
        first_diff(&expected, &actual)
    );
}

/// The first line where the two documents diverge, for a readable
/// failure message (full documents are thousands of lines).
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}:\n  golden: {e}\n  actual: {a}", i + 1);
        }
    }
    format!(
        "documents differ in length: golden {} lines, actual {} lines",
        expected.lines().count(),
        actual.lines().count()
    )
}

/// The scenario workbench grid: the new artifact of ISSUE 3.
#[test]
fn scenarios_json_matches_golden() {
    check_golden("scenarios");
}

/// One pre-existing artifact, pinned so the whole `--json` surface —
/// not just the new code — is covered against schema drift.
#[test]
fn fig3_json_matches_golden() {
    check_golden("fig3");
}

/// The scenario-aware package DSE: the new artifact of ISSUE 4. Pinning
/// it byte-for-byte also pins the cheapest-feasible selection, which
/// must be identical at any `--jobs` count (the runner pins 2 workers).
#[test]
fn scenario_dse_json_matches_golden() {
    check_golden("scenario-dse");
}

/// The drive timeline workbench: the new artifact of ISSUE 5. Pinning it
/// byte-for-byte pins every per-segment steady-state figure, every
/// re-match latency and every dropped-frame count of the built-in
/// timelines on both packages.
#[test]
fn drive_json_matches_golden() {
    check_golden("drive");
}

/// The long drive timeline: the new artifact of ISSUE 8. Pinning it
/// byte-for-byte pins the minute-legged phased DES (per-segment steady
/// state and both re-matches) and the short-vs-long-window tail
/// resolution comparison of the rebuilt engine.
#[test]
fn drive_long_json_matches_golden() {
    check_golden("drive-long");
}

/// The tail-latency DSE: the new artifact of ISSUE 6. Pinning it
/// byte-for-byte pins every streamed percentile, the per-family
/// mean-vs-tail winners and the envelope-level p99 winner shift.
#[test]
fn tails_json_matches_golden() {
    check_golden("tails");
}

/// The fleet serving DSE: the new artifact of ISSUE 9. Pinning it
/// byte-for-byte pins the sampled fleet, every uniform pool's packing
/// (instances, admissions, typed rejections, per-class p99s), the
/// cheapest-feasible selection, the mixed-pool comparison and the full
/// preemption trajectory — all independent of the worker count.
#[test]
fn fleet_json_matches_golden() {
    check_golden("fleet");
}

/// The static-analysis report: the new artifact of ISSUE 7. Pinning it
/// byte-for-byte pins the rule table, the zero-findings state and the
/// audited allow inventory — a new hazard or a new suppression shows up
/// as a golden diff, not just a CI failure.
#[test]
fn lint_json_matches_golden() {
    check_golden("lint");
}
