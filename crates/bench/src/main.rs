//! `repro` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! repro             # everything
//! repro fig3        # one artifact (fig3, fig4, fig5..fig8 (alias fig5to8),
//!                   # fig9, fig10, fig11, table1, table2, table3,
//!                   # ablations, sweeps, scenarios, scenario-dse, drive,
//!                   # tails, fleet, lint)
//! repro --list      # print the artifact registry (names + aliases)
//! repro --json ...  # machine-readable, one JSON document per artifact
//! repro --jobs N .. # worker threads for the sweep grids (default: all
//!                   # cores; results are identical at any N)
//! ```
//!
//! Flags are accepted anywhere in argv: `repro fig3 --json` and
//! `repro --json fig3` are the same invocation.
//!
//! Each registry entry is a trait object whose [`Artifact::run`]
//! computes the experiment **once** and returns a [`Render`] — text and
//! JSON are two views of the same run, never a recomputation.

use std::env;
use std::process::ExitCode;

use npu_study::Render;

/// One renderable artifact of the paper reproduction.
trait Artifact: Sync {
    /// The canonical artifact name (also the golden-file name).
    fn name(&self) -> &'static str;

    /// Other accepted spellings (`fig5`..`fig8` for the panel).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Computes the experiment and returns its renderings.
    fn run(&self) -> Box<dyn Render>;
}

struct Fig3;
impl Artifact for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::fig3::run())
    }
}

struct Fig4;
impl Artifact for Fig4 {
    fn name(&self) -> &'static str {
        "fig4"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::fig4::run())
    }
}

struct Fig5to8;
impl Artifact for Fig5to8 {
    fn name(&self) -> &'static str {
        "fig5to8"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig5", "fig6", "fig7", "fig8"]
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::fig5to8::run())
    }
}

struct Fig9;
impl Artifact for Fig9 {
    fn name(&self) -> &'static str {
        "fig9"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::fig9::run())
    }
}

struct Fig10;
impl Artifact for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::fig10::run())
    }
}

struct Fig11;
impl Artifact for Fig11 {
    fn name(&self) -> &'static str {
        "fig11"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::fig11::run())
    }
}

struct Table1;
impl Artifact for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::table1::run())
    }
}

struct Table2;
impl Artifact for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::table2::run())
    }
}

struct Table3;
impl Artifact for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::table3::run())
    }
}

struct Ablations;
impl Artifact for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::ablations::run())
    }
}

struct Sweeps;
impl Artifact for Sweeps {
    fn name(&self) -> &'static str {
        "sweeps"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::ext_sweeps::run())
    }
}

struct Scenarios;
impl Artifact for Scenarios {
    fn name(&self) -> &'static str {
        "scenarios"
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::scenarios::run())
    }
}

struct ScenarioDse;
impl Artifact for ScenarioDse {
    fn name(&self) -> &'static str {
        "scenario-dse"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["scenario_dse"]
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::scenario_dse::run())
    }
}

struct DriveTimelines;
impl Artifact for DriveTimelines {
    fn name(&self) -> &'static str {
        "drive"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["drives", "drive-timelines"]
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::drive::run())
    }
}

struct DriveLongTimeline;
impl Artifact for DriveLongTimeline {
    fn name(&self) -> &'static str {
        "drive-long"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["long-drive", "drive_long"]
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::drive_long::run())
    }
}

struct Tails;
impl Artifact for Tails {
    fn name(&self) -> &'static str {
        "tails"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["tail", "tail-latency"]
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::tails::run())
    }
}

struct Fleet;
impl Artifact for Fleet {
    fn name(&self) -> &'static str {
        "fleet"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fleet-dse", "tenants"]
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::fleet::run())
    }
}

struct Lint;
impl Artifact for Lint {
    fn name(&self) -> &'static str {
        "lint"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["lints", "check"]
    }
    fn run(&self) -> Box<dyn Render> {
        Box::new(npu_experiments::lint::run())
    }
}

/// The single registry every other list derives from: the JSON `all`
/// expansion, name lookup (with aliases), `--list` and the
/// error-message listing.
static ARTIFACTS: [&dyn Artifact; 18] = [
    &Fig3,
    &Fig4,
    &Fig5to8,
    &Fig9,
    &Fig10,
    &Fig11,
    &Table1,
    &Table2,
    &Table3,
    &Ablations,
    &Sweeps,
    &Scenarios,
    &ScenarioDse,
    &DriveTimelines,
    &DriveLongTimeline,
    &Tails,
    &Fleet,
    &Lint,
];

fn find(name: &str) -> Option<&'static dyn Artifact> {
    ARTIFACTS
        .iter()
        .find(|a| a.name() == name || a.aliases().contains(&name))
        .copied()
}

fn expected_names() -> String {
    let names: Vec<&str> = ARTIFACTS.iter().map(|a| a.name()).collect();
    format!("{} or all", names.join(", "))
}

/// One `--list --json` entry; the typed schema of the registry listing.
#[derive(serde::Serialize)]
struct ListedArtifact {
    name: String,
    aliases: Vec<String>,
}

/// The `--list` rendering: one artifact per line (text) or a JSON array
/// of [`ListedArtifact`] objects.
fn registry_listing(json: bool) -> String {
    if json {
        let entries: Vec<ListedArtifact> = ARTIFACTS
            .iter()
            .map(|a| ListedArtifact {
                name: a.name().to_string(),
                aliases: a.aliases().iter().map(|s| s.to_string()).collect(),
            })
            .collect();
        serde_json::to_string_pretty(&entries).expect("registry serializes")
    } else {
        ARTIFACTS
            .iter()
            .map(|a| {
                if a.aliases().is_empty() {
                    a.name().to_string()
                } else {
                    format!("{} (aliases: {})", a.name(), a.aliases().join(", "))
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Parsed command-line flags; remaining `args` are artifact names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Flags {
    json: bool,
    jobs: Option<usize>,
    list: bool,
}

/// Extracts the flags (`--json`, `--list`, `--jobs N` / `--jobs=N`)
/// from **anywhere** in argv — `repro fig3 --json` works — leaving only
/// artifact names in `args`. Unknown `--flags` are an error rather than
/// being mistaken for artifact names. Pure: the caller applies the jobs
/// value to the executor.
fn parse_flags(args: &mut Vec<String>) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        if arg == "--json" {
            flags.json = true;
            args.remove(i);
        } else if arg == "--list" {
            flags.list = true;
            args.remove(i);
        } else if arg == "--jobs" {
            args.remove(i);
            let value = (i < args.len()).then(|| args.remove(i));
            flags.jobs = Some(parse_jobs(value.as_deref())?);
        } else if let Some(value) = arg.strip_prefix("--jobs=") {
            flags.jobs = Some(parse_jobs(Some(value))?);
            args.remove(i);
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            i += 1;
        }
    }
    Ok(flags)
}

fn parse_jobs(value: Option<&str>) -> Result<usize, String> {
    let value = value.ok_or("--jobs expects a worker count".to_string())?;
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs expects a positive integer, got `{value}`")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let flags = match parse_flags(&mut args) {
        Ok(flags) => {
            // Explicit N pins the worker-pool width; otherwise all
            // cores. Results are bit-identical either way (see npu-par).
            if let Some(jobs) = flags.jobs {
                npu_par::set_default_jobs(jobs);
            }
            flags
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if flags.list {
        // Refuse rather than silently dropping the named artifacts: a
        // scripted `repro fig3 --list` must not exit 0 without running
        // (or even mentioning) fig3.
        if !args.is_empty() {
            eprintln!("--list does not combine with artifact names (got {args:?})");
            return ExitCode::FAILURE;
        }
        println!("{}", registry_listing(flags.json));
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        args.push("all".to_string());
    }

    let mut ok = true;
    for arg in &args {
        if arg == "all" {
            if flags.json {
                // One JSON document per artifact, registry order.
                for artifact in ARTIFACTS {
                    println!("{}", artifact.run().json());
                }
            } else {
                // The curated full report (paper section order).
                print!("{}", npu_experiments::run_all());
            }
            continue;
        }
        match find(arg) {
            Some(artifact) => {
                // One computation, rendered in the requested format.
                let rendered = artifact.run();
                if flags.json {
                    println!("{}", rendered.json());
                } else {
                    print!("{}", rendered.text());
                }
            }
            None => {
                eprintln!("unknown artifact `{arg}`; expected {}", expected_names());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve_to_the_panel() {
        for alias in ["fig5", "fig6", "fig7", "fig8", "fig5to8"] {
            assert_eq!(find(alias).unwrap().name(), "fig5to8");
        }
        assert_eq!(find("scenario_dse").unwrap().name(), "scenario-dse");
        for alias in ["drives", "drive-timelines"] {
            assert_eq!(find(alias).unwrap().name(), "drive");
        }
        for alias in ["long-drive", "drive_long"] {
            assert_eq!(find(alias).unwrap().name(), "drive-long");
        }
        for alias in ["tail", "tail-latency"] {
            assert_eq!(find(alias).unwrap().name(), "tails");
        }
        for alias in ["lints", "check"] {
            assert_eq!(find(alias).unwrap().name(), "lint");
        }
        for alias in ["fleet-dse", "tenants"] {
            assert_eq!(find(alias).unwrap().name(), "fleet");
        }
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        assert!(find("fig12").is_none());
        assert!(find("all").is_none(), "`all` is expanded, not an artifact");
    }

    #[test]
    fn expected_names_lists_every_artifact() {
        let listing = expected_names();
        for a in ARTIFACTS {
            assert!(listing.contains(a.name()));
        }
    }

    #[test]
    fn registry_names_and_aliases_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for a in ARTIFACTS {
            assert!(seen.insert(a.name()), "duplicate name {}", a.name());
            for alias in a.aliases() {
                assert!(seen.insert(alias), "duplicate alias {alias}");
            }
        }
    }

    #[test]
    fn listing_covers_the_registry_in_both_formats() {
        let text = registry_listing(false);
        assert_eq!(text.lines().count(), ARTIFACTS.len());
        assert!(text.contains("fig5to8 (aliases: fig5, fig6, fig7, fig8)"));
        let json = registry_listing(true);
        let parsed: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let entries = parsed.as_array().expect("a JSON array");
        assert_eq!(entries.len(), ARTIFACTS.len());
        assert_eq!(
            entries[0].get("name").and_then(|v| v.as_str()),
            Some("fig3")
        );
    }

    #[test]
    fn flags_parse_in_any_order() {
        let mut args: Vec<String> = ["--jobs", "2", "--json", "fig3"].map(String::from).to_vec();
        assert_eq!(
            parse_flags(&mut args),
            Ok(Flags {
                json: true,
                jobs: Some(2),
                list: false
            })
        );
        assert_eq!(args, vec!["fig3".to_string()]);

        let mut args: Vec<String> = ["--json", "--jobs=4"].map(String::from).to_vec();
        assert_eq!(
            parse_flags(&mut args),
            Ok(Flags {
                json: true,
                jobs: Some(4),
                list: false
            })
        );
        assert!(args.is_empty());

        let mut args: Vec<String> = ["fig3".to_string()].to_vec();
        assert_eq!(parse_flags(&mut args), Ok(Flags::default()));
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn flags_are_accepted_after_artifact_names() {
        // The ISSUE 4 parse fix: `repro fig3 --json` used to treat
        // `--json` as an unknown artifact.
        let mut args: Vec<String> = ["fig3", "--json"].map(String::from).to_vec();
        let flags = parse_flags(&mut args).unwrap();
        assert!(flags.json);
        assert_eq!(args, vec!["fig3".to_string()]);

        let mut args: Vec<String> = ["fig3", "--jobs", "3", "table1", "--list"]
            .map(String::from)
            .to_vec();
        let flags = parse_flags(&mut args).unwrap();
        assert_eq!(flags.jobs, Some(3));
        assert!(flags.list);
        assert_eq!(args, vec!["fig3".to_string(), "table1".to_string()]);
    }

    #[test]
    fn unknown_flags_error_out() {
        let mut args: Vec<String> = ["fig3", "--frobnicate"].map(String::from).to_vec();
        let err = parse_flags(&mut args).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn malformed_jobs_flags_error_out() {
        assert!(parse_flags(&mut vec!["--jobs".to_string()]).is_err());
        assert!(parse_flags(&mut vec!["--jobs".to_string(), "0".to_string()]).is_err());
        assert!(parse_flags(&mut vec!["--jobs=notanumber".to_string()]).is_err());
        // A trailing `--jobs` after an artifact name still errors.
        assert!(parse_flags(&mut vec!["fig3".to_string(), "--jobs".to_string()]).is_err());
    }
}
