//! `repro` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! repro             # everything
//! repro fig3        # one artifact (fig3, fig4, fig5..fig8 (alias fig5to8),
//!                   # fig9, fig10, fig11, table1, table2, table3,
//!                   # ablations, sweeps, scenarios)
//! repro --json ...  # machine-readable, one JSON document per artifact
//! repro --jobs N .. # worker threads for the sweep grids (default: all
//!                   # cores; results are identical at any N)
//! ```

use std::env;
use std::process::ExitCode;

/// One renderable artifact: name, text renderer, JSON renderer.
struct Artifact {
    name: &'static str,
    /// Other accepted spellings (`fig5`..`fig8` for the panel).
    aliases: &'static [&'static str],
    text: fn() -> String,
    json: fn() -> String,
}

macro_rules! artifact {
    ($name:literal, $module:ident) => {
        artifact!($name, $module, [])
    };
    ($name:literal, $module:ident, $aliases:expr) => {
        Artifact {
            name: $name,
            aliases: &$aliases,
            text: || npu_experiments::$module::run().to_string(),
            json: || {
                serde_json::to_string_pretty(&npu_experiments::$module::run())
                    .expect("experiment results serialize")
            },
        }
    };
}

/// The single registry every other list derives from: the JSON `all`
/// expansion, name lookup (with aliases) and the error-message listing.
const ARTIFACTS: [Artifact; 12] = [
    artifact!("fig3", fig3),
    artifact!("fig4", fig4),
    artifact!("fig5to8", fig5to8, ["fig5", "fig6", "fig7", "fig8"]),
    artifact!("fig9", fig9),
    artifact!("fig10", fig10),
    artifact!("fig11", fig11),
    artifact!("table1", table1),
    artifact!("table2", table2),
    artifact!("table3", table3),
    artifact!("ablations", ablations),
    artifact!("sweeps", ext_sweeps),
    artifact!("scenarios", scenarios),
];

fn find(name: &str) -> Option<&'static Artifact> {
    ARTIFACTS
        .iter()
        .find(|a| a.name == name || a.aliases.contains(&name))
}

fn expected_names() -> String {
    let names: Vec<&str> = ARTIFACTS.iter().map(|a| a.name).collect();
    format!("{} or all", names.join(", "))
}

/// Parses the leading flags (`--json`, `--jobs N` / `--jobs=N`, in any
/// order), leaving only artifact names in `args`. Returns the JSON flag
/// and the requested worker count (`None` = not given), or an error
/// message for a malformed `--jobs`. Pure: the caller applies the jobs
/// value to the executor.
fn parse_flags(args: &mut Vec<String>) -> Result<(bool, Option<usize>), String> {
    let mut json = false;
    let mut jobs: Option<usize> = None;
    while let Some(first) = args.first().cloned() {
        if first == "--json" {
            json = true;
            args.remove(0);
        } else if first == "--jobs" {
            args.remove(0);
            let value = (!args.is_empty()).then(|| args.remove(0));
            jobs = Some(parse_jobs(value.as_deref())?);
        } else if let Some(value) = first.strip_prefix("--jobs=") {
            jobs = Some(parse_jobs(Some(value))?);
            args.remove(0);
        } else {
            break;
        }
    }
    Ok((json, jobs))
}

fn parse_jobs(value: Option<&str>) -> Result<usize, String> {
    let value = value.ok_or("--jobs expects a worker count".to_string())?;
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs expects a positive integer, got `{value}`")),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let json = match parse_flags(&mut args) {
        Ok((json, jobs)) => {
            // Explicit N pins the worker-pool width; otherwise all
            // cores. Results are bit-identical either way (see npu-par).
            if let Some(jobs) = jobs {
                npu_par::set_default_jobs(jobs);
            }
            json
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.is_empty() {
        args.push("all".to_string());
    }

    let mut ok = true;
    for arg in &args {
        if arg == "all" {
            if json {
                // One JSON document per artifact, registry order.
                for artifact in &ARTIFACTS {
                    println!("{}", (artifact.json)());
                }
            } else {
                // The curated full report (paper section order).
                print!("{}", npu_experiments::run_all());
            }
            continue;
        }
        match find(arg) {
            Some(artifact) if json => println!("{}", (artifact.json)()),
            Some(artifact) => print!("{}", (artifact.text)()),
            None => {
                eprintln!("unknown artifact `{arg}`; expected {}", expected_names());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve_to_the_panel() {
        for alias in ["fig5", "fig6", "fig7", "fig8", "fig5to8"] {
            assert_eq!(find(alias).unwrap().name, "fig5to8");
        }
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        assert!(find("fig12").is_none());
        assert!(find("all").is_none(), "`all` is expanded, not an artifact");
    }

    #[test]
    fn expected_names_lists_every_artifact() {
        let listing = expected_names();
        for a in &ARTIFACTS {
            assert!(listing.contains(a.name));
        }
    }

    #[test]
    fn flags_parse_in_any_order() {
        let mut args: Vec<String> = ["--jobs", "2", "--json", "fig3"].map(String::from).to_vec();
        assert_eq!(parse_flags(&mut args), Ok((true, Some(2))));
        assert_eq!(args, vec!["fig3".to_string()]);

        let mut args: Vec<String> = ["--json", "--jobs=4"].map(String::from).to_vec();
        assert_eq!(parse_flags(&mut args), Ok((true, Some(4))));
        assert!(args.is_empty());

        let mut args: Vec<String> = ["fig3".to_string()].to_vec();
        assert_eq!(parse_flags(&mut args), Ok((false, None)));
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn malformed_jobs_flags_error_out() {
        assert!(parse_flags(&mut vec!["--jobs".to_string()]).is_err());
        assert!(parse_flags(&mut vec!["--jobs".to_string(), "0".to_string()]).is_err());
        assert!(parse_flags(&mut vec!["--jobs=notanumber".to_string()]).is_err());
    }
}
