//! `repro` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! repro            # everything
//! repro fig3       # one artifact (fig3, fig4, fig5..fig8 (alias fig5to8),
//!                  # fig9, fig10, fig11, table1, table2, table3)
//! ```

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let json = args.first().map(|a| a == "--json").unwrap_or(false);
    if json {
        args.remove(0);
    }
    if args.is_empty() {
        print!("{}", npu_experiments::run_all());
        return ExitCode::SUCCESS;
    }

    if json {
        let mut ok = true;
        for arg in &args {
            let rendered = match arg.as_str() {
                "fig3" => serde_json::to_string_pretty(&npu_experiments::fig3::run()),
                "fig4" => serde_json::to_string_pretty(&npu_experiments::fig4::run()),
                "fig5" | "fig6" | "fig7" | "fig8" | "fig5to8" => {
                    serde_json::to_string_pretty(&npu_experiments::fig5to8::run())
                }
                "fig9" => serde_json::to_string_pretty(&npu_experiments::fig9::run()),
                "fig10" => serde_json::to_string_pretty(&npu_experiments::fig10::run()),
                "fig11" => serde_json::to_string_pretty(&npu_experiments::fig11::run()),
                "table1" => serde_json::to_string_pretty(&npu_experiments::table1::run()),
                "table2" => serde_json::to_string_pretty(&npu_experiments::table2::run()),
                "table3" => serde_json::to_string_pretty(&npu_experiments::table3::run()),
                "ablations" => serde_json::to_string_pretty(&npu_experiments::ablations::run()),
                "sweeps" => serde_json::to_string_pretty(&npu_experiments::ext_sweeps::run()),
                other => {
                    eprintln!("unknown artifact `{other}` for --json");
                    ok = false;
                    continue;
                }
            };
            println!("{}", rendered.expect("experiment results serialize"));
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut ok = true;
    for arg in &args {
        match arg.as_str() {
            "fig3" => print!("{}", npu_experiments::fig3::run()),
            "fig4" => print!("{}", npu_experiments::fig4::run()),
            "fig5" | "fig6" | "fig7" | "fig8" | "fig5to8" => {
                print!("{}", npu_experiments::fig5to8::run())
            }
            "fig9" => print!("{}", npu_experiments::fig9::run()),
            "fig10" => print!("{}", npu_experiments::fig10::run()),
            "fig11" => print!("{}", npu_experiments::fig11::run()),
            "table1" => print!("{}", npu_experiments::table1::run()),
            "table2" => print!("{}", npu_experiments::table2::run()),
            "table3" => print!("{}", npu_experiments::table3::run()),
            "ablations" => print!("{}", npu_experiments::ablations::run()),
            "sweeps" => print!("{}", npu_experiments::ext_sweeps::run()),
            "all" => print!("{}", npu_experiments::run_all()),
            other => {
                eprintln!(
                    "unknown artifact `{other}`; expected fig3, fig4, fig5to8, fig9, \
                     fig10, fig11, table1, table2, table3, ablations, sweeps or all"
                );
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
