//! `repro` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! repro            # everything
//! repro fig3       # one artifact (fig3, fig4, fig5..fig8 (alias fig5to8),
//!                  # fig9, fig10, fig11, table1, table2, table3)
//! repro --json ... # machine-readable, one JSON document per artifact
//! ```

use std::env;
use std::process::ExitCode;

/// One renderable artifact: name, text renderer, JSON renderer.
struct Artifact {
    name: &'static str,
    /// Other accepted spellings (`fig5`..`fig8` for the panel).
    aliases: &'static [&'static str],
    text: fn() -> String,
    json: fn() -> String,
}

macro_rules! artifact {
    ($name:literal, $module:ident) => {
        artifact!($name, $module, [])
    };
    ($name:literal, $module:ident, $aliases:expr) => {
        Artifact {
            name: $name,
            aliases: &$aliases,
            text: || npu_experiments::$module::run().to_string(),
            json: || {
                serde_json::to_string_pretty(&npu_experiments::$module::run())
                    .expect("experiment results serialize")
            },
        }
    };
}

/// The single registry every other list derives from: the JSON `all`
/// expansion, name lookup (with aliases) and the error-message listing.
const ARTIFACTS: [Artifact; 11] = [
    artifact!("fig3", fig3),
    artifact!("fig4", fig4),
    artifact!("fig5to8", fig5to8, ["fig5", "fig6", "fig7", "fig8"]),
    artifact!("fig9", fig9),
    artifact!("fig10", fig10),
    artifact!("fig11", fig11),
    artifact!("table1", table1),
    artifact!("table2", table2),
    artifact!("table3", table3),
    artifact!("ablations", ablations),
    artifact!("sweeps", ext_sweeps),
];

fn find(name: &str) -> Option<&'static Artifact> {
    ARTIFACTS
        .iter()
        .find(|a| a.name == name || a.aliases.contains(&name))
}

fn expected_names() -> String {
    let names: Vec<&str> = ARTIFACTS.iter().map(|a| a.name).collect();
    format!("{} or all", names.join(", "))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let json = args.first().map(|a| a == "--json").unwrap_or(false);
    if json {
        args.remove(0);
    }
    if args.is_empty() {
        args.push("all".to_string());
    }

    let mut ok = true;
    for arg in &args {
        if arg == "all" {
            if json {
                // One JSON document per artifact, registry order.
                for artifact in &ARTIFACTS {
                    println!("{}", (artifact.json)());
                }
            } else {
                // The curated full report (paper section order).
                print!("{}", npu_experiments::run_all());
            }
            continue;
        }
        match find(arg) {
            Some(artifact) if json => println!("{}", (artifact.json)()),
            Some(artifact) => print!("{}", (artifact.text)()),
            None => {
                eprintln!("unknown artifact `{arg}`; expected {}", expected_names());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve_to_the_panel() {
        for alias in ["fig5", "fig6", "fig7", "fig8", "fig5to8"] {
            assert_eq!(find(alias).unwrap().name, "fig5to8");
        }
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        assert!(find("fig12").is_none());
        assert!(find("all").is_none(), "`all` is expanded, not an artifact");
    }

    #[test]
    fn expected_names_lists_every_artifact() {
        let listing = expected_names();
        for a in &ARTIFACTS {
            assert!(listing.contains(a.name));
        }
    }
}
