//! Newtype quantities with physical meaning.
//!
//! Every metric reported by the simulator is wrapped in a unit newtype so
//! that the type system rules out dimensionally-nonsensical arithmetic
//! (adding a latency to an energy, dividing bytes by joules, …).
//!
//! The types are deliberately small `Copy` wrappers over `f64`/`u64` with
//! the handful of arithmetic operations that *are* meaningful implemented
//! via `std::ops`.
//!
//! # Examples
//!
//! ```
//! use npu_tensor::units::{Joules, Seconds};
//!
//! let pipe = Seconds::from_millis(82.16);
//! let energy = Joules::new(0.07);
//! let edp = pipe * energy; // Energy-delay product, the paper's Figs. 5-8.
//! assert!((edp.as_millijoule_millis() - 5.7512).abs() < 1e-9);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A duration in seconds.
///
/// The simulator reports most results in milliseconds; `Seconds` stores the
/// underlying `f64` in SI seconds and formats itself in engineering units.
///
/// # Examples
///
/// ```
/// use npu_tensor::Seconds;
/// let t = Seconds::from_millis(1.5) + Seconds::from_micros(500.0);
/// assert!((t.as_millis() - 2.0).abs() < 1e-12);
/// assert_eq!(format!("{t}"), "2.000 ms");
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration from raw seconds.
    pub fn new(secs: f64) -> Self {
        Seconds(secs)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Seconds(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Raw value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Seconds) -> Seconds {
        Seconds(self.0.min(other.0))
    }

    /// True if the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Relative difference `|self - other| / other`, used by calibration
    /// tests comparing measured values against paper references.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other` is zero.
    pub fn relative_error(self, other: Seconds) -> f64 {
        debug_assert!(other.0 != 0.0, "relative_error against zero reference");
        ((self.0 - other.0) / other.0).abs()
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div for Seconds {
    /// Ratio of two durations is dimensionless.
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.abs();
        if s >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} us", self.0 * 1e6)
        } else {
            write!(f, "{:.3} ns", self.0 * 1e9)
        }
    }
}

/// An energy in joules.
///
/// # Examples
///
/// ```
/// use npu_tensor::Joules;
/// let compute = Joules::from_millijoules(40.0);
/// let nop = Joules::from_picojoules(2.04e9);
/// assert!((compute + nop).as_joules() > 0.04);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy from raw joules.
    pub fn new(j: f64) -> Self {
        Joules(j)
    }

    /// Creates an energy from millijoules.
    pub fn from_millijoules(mj: f64) -> Self {
        Joules(mj * 1e-3)
    }

    /// Creates an energy from picojoules (the natural unit of per-access
    /// and per-bit costs).
    pub fn from_picojoules(pj: f64) -> Self {
        Joules(pj * 1e-12)
    }

    /// Raw value in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// Value in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the larger of two energies.
    pub fn max(self, other: Joules) -> Joules {
        Joules(self.0.max(other.0))
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    fn div(self, rhs: f64) -> Joules {
        Joules(self.0 / rhs)
    }
}

impl Div for Joules {
    /// Ratio of two energies is dimensionless.
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, Add::add)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0.abs();
        if j >= 1.0 {
            write!(f, "{:.3} J", self.0)
        } else if j >= 1e-3 {
            write!(f, "{:.3} mJ", self.0 * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.3} uJ", self.0 * 1e6)
        } else {
            write!(f, "{:.3} nJ", self.0 * 1e9)
        }
    }
}

/// Energy-delay product, the paper's primary efficiency score
/// (`EDP = pipelining latency × energy`, reported in `ms·J`).
///
/// Produced by multiplying [`Seconds`] by [`Joules`].
///
/// # Examples
///
/// ```
/// use npu_tensor::{Joules, Seconds};
/// let edp = Seconds::from_millis(87.0) * Joules::new(0.71);
/// assert!((edp.as_millijoule_millis() - 61.77).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Edp(f64);

impl Edp {
    /// Zero EDP.
    pub const ZERO: Edp = Edp(0.0);

    /// Creates an EDP from a raw `J·s` value.
    pub fn new(joule_seconds: f64) -> Self {
        Edp(joule_seconds)
    }

    /// Raw value in joule-seconds.
    pub fn as_joule_secs(self) -> f64 {
        self.0
    }

    /// Value in `ms·J`, the unit used throughout the paper's tables.
    pub fn as_millijoule_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Mul<Joules> for Seconds {
    type Output = Edp;
    fn mul(self, rhs: Joules) -> Edp {
        Edp(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for Joules {
    type Output = Edp;
    fn mul(self, rhs: Seconds) -> Edp {
        Edp(self.0 * rhs.0)
    }
}

impl fmt::Display for Edp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms*J", self.as_millijoule_millis())
    }
}

/// A byte count (data volume moved over the NoP, stored in buffers, …).
///
/// # Examples
///
/// ```
/// use npu_tensor::Bytes;
/// let feature = Bytes::from_kib(64) + Bytes::new(512);
/// assert_eq!(feature.as_u64(), 64 * 1024 + 512);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// Creates a byte count from KiB.
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a byte count from MiB.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Raw byte count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64` (for bandwidth division).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Bit count (NoP energy is specified per bit).
    pub fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A count of multiply-accumulate operations.
///
/// # Examples
///
/// ```
/// use npu_tensor::MacCount;
/// // S_FUSE QKV projection: 3 x 12800 tokens x 256 x 256.
/// let qkv = MacCount::new(3 * 12800 * 256 * 256);
/// assert!((qkv.as_gmacs() - 2.516).abs() < 1e-2);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MacCount(u64);

impl MacCount {
    /// Zero MACs.
    pub const ZERO: MacCount = MacCount(0);

    /// Creates a MAC count.
    pub const fn new(macs: u64) -> Self {
        MacCount(macs)
    }

    /// Raw MAC count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// MAC count as `f64`.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// MAC count in units of 10^9 (the paper's workloads are GMAC-scale).
    pub fn as_gmacs(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add for MacCount {
    type Output = MacCount;
    fn add(self, rhs: MacCount) -> MacCount {
        MacCount(self.0 + rhs.0)
    }
}

impl AddAssign for MacCount {
    fn add_assign(&mut self, rhs: MacCount) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for MacCount {
    type Output = MacCount;
    fn mul(self, rhs: u64) -> MacCount {
        MacCount(self.0 * rhs)
    }
}

impl Sum for MacCount {
    fn sum<I: Iterator<Item = MacCount>>(iter: I) -> MacCount {
        iter.fold(MacCount::ZERO, Add::add)
    }
}

impl fmt::Display for MacCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0 as f64;
        if m >= 1e9 {
            write!(f, "{:.3} GMAC", m / 1e9)
        } else if m >= 1e6 {
            write!(f, "{:.3} MMAC", m / 1e6)
        } else {
            write!(f, "{} MAC", self.0)
        }
    }
}

/// A clock-cycle count.
///
/// # Examples
///
/// ```
/// use npu_tensor::{Cycles, Hertz};
/// let c = Cycles::new(2_000_000);
/// assert!((c.at(Hertz::from_ghz(2.0)).as_millis() - 1.0).abs() < 1e-12);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// Raw cycle count.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts cycles to wall-clock time at the given frequency.
    pub fn at(self, freq: Hertz) -> Seconds {
        Seconds(self.0 as f64 / freq.as_hz())
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock frequency.
///
/// # Examples
///
/// ```
/// use npu_tensor::Hertz;
/// let f = Hertz::from_ghz(2.0); // the Tesla FSD NPU frequency
/// assert_eq!(f.as_hz(), 2.0e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency from raw Hz.
    pub fn new(hz: f64) -> Self {
        Hertz(hz)
    }

    /// Creates a frequency from GHz.
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Creates a frequency from MHz.
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Raw value in Hz.
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// Value in GHz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }
}

impl Default for Hertz {
    /// Defaults to the Tesla FSD NPU operating frequency (2 GHz).
    fn default() -> Self {
        Hertz::from_ghz(2.0)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} GHz", self.0 / 1e9)
        } else {
            write!(f, "{:.2} MHz", self.0 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_constructors_are_consistent() {
        assert_eq!(Seconds::from_millis(1500.0), Seconds::new(1.5));
        assert_eq!(Seconds::from_micros(1500.0), Seconds::from_millis(1.5));
        assert_eq!(Seconds::from_nanos(1500.0), Seconds::from_micros(1.5));
    }

    #[test]
    fn seconds_arithmetic() {
        let a = Seconds::from_millis(10.0);
        let b = Seconds::from_millis(5.0);
        assert_eq!((a + b).as_millis(), 15.0);
        assert_eq!((a - b).as_millis(), 5.0);
        assert_eq!((a * 2.0).as_millis(), 20.0);
        assert_eq!((a / 2.0).as_millis(), 5.0);
        assert_eq!(a / b, 2.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn seconds_sum() {
        let total: Seconds = (1..=4).map(|i| Seconds::from_millis(i as f64)).sum();
        assert_eq!(total.as_millis(), 10.0);
    }

    #[test]
    fn seconds_display_picks_engineering_unit() {
        assert_eq!(format!("{}", Seconds::new(1.8)), "1.800 s");
        assert_eq!(format!("{}", Seconds::from_millis(82.7)), "82.700 ms");
        assert_eq!(format!("{}", Seconds::from_micros(35.0)), "35.000 us");
        assert_eq!(format!("{}", Seconds::from_nanos(35.0)), "35.000 ns");
    }

    #[test]
    fn joules_display() {
        assert_eq!(format!("{}", Joules::new(3.36)), "3.360 J");
        assert_eq!(format!("{}", Joules::from_millijoules(40.0)), "40.000 mJ");
    }

    #[test]
    fn edp_is_latency_times_energy() {
        let edp = Seconds::from_millis(79.59) * Joules::new(3.36);
        assert!((edp.as_millijoule_millis() - 267.4224).abs() < 1e-9);
        // Commutes.
        let edp2 = Joules::new(3.36) * Seconds::from_millis(79.59);
        assert_eq!(edp, edp2);
    }

    #[test]
    fn bytes_bits_and_display() {
        assert_eq!(Bytes::new(2).bits(), 16);
        assert_eq!(format!("{}", Bytes::from_mib(3)), "3.00 MiB");
        assert_eq!(format!("{}", Bytes::from_kib(3)), "3.00 KiB");
        assert_eq!(format!("{}", Bytes::new(12)), "12 B");
    }

    #[test]
    fn macs_gmac_conversion() {
        assert_eq!(MacCount::new(2_500_000_000).as_gmacs(), 2.5);
        assert_eq!(format!("{}", MacCount::new(2_500_000_000)), "2.500 GMAC");
    }

    #[test]
    fn cycles_to_time() {
        let c = Cycles::new(4_000_000_000);
        assert!((c.at(Hertz::from_ghz(2.0)).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_frequency_is_fsd() {
        assert_eq!(Hertz::default(), Hertz::from_ghz(2.0));
    }

    #[test]
    fn relative_error_symmetric_sign() {
        let a = Seconds::from_millis(90.0);
        let b = Seconds::from_millis(100.0);
        assert!((a.relative_error(b) - 0.1).abs() < 1e-12);
    }
}
