//! Numeric datatypes carried by feature maps and weights.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Bytes;

/// Datatype of tensor elements.
///
/// The paper's accelerators (Simba-like chiplets, Tesla FSD NPU) operate on
/// 8-bit integer MACs with wider accumulators; feature maps moved over the
/// NoP in our default configuration are FP16, matching the 2-byte-per-
/// element accounting used in the NoP cost analysis (§IV-D).
///
/// # Examples
///
/// ```
/// use npu_tensor::Dtype;
/// assert_eq!(Dtype::Fp16.bytes_per_element(), 2);
/// assert_eq!(Dtype::default(), Dtype::Fp16);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Dtype {
    /// 8-bit integer.
    Int8,
    /// 16-bit floating point (default for activations/feature maps).
    #[default]
    Fp16,
    /// 32-bit floating point (accumulators, rarely moved).
    Fp32,
}

impl Dtype {
    /// Size of one element in bytes.
    pub fn bytes_per_element(self) -> u64 {
        match self {
            Dtype::Int8 => 1,
            Dtype::Fp16 => 2,
            Dtype::Fp32 => 4,
        }
    }

    /// Total size of `elements` values of this datatype.
    pub fn sized(self, elements: u64) -> Bytes {
        Bytes::new(elements * self.bytes_per_element())
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dtype::Int8 => "int8",
            Dtype::Fp16 => "fp16",
            Dtype::Fp32 => "fp32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Dtype::Int8.bytes_per_element(), 1);
        assert_eq!(Dtype::Fp16.bytes_per_element(), 2);
        assert_eq!(Dtype::Fp32.bytes_per_element(), 4);
    }

    #[test]
    fn sized_multiplies() {
        assert_eq!(Dtype::Fp16.sized(1600 * 256).as_u64(), 1600 * 256 * 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dtype::Fp16.to_string(), "fp16");
        assert_eq!(Dtype::Int8.to_string(), "int8");
        assert_eq!(Dtype::Fp32.to_string(), "fp32");
    }
}
