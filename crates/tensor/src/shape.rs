//! Tensor shapes with element and byte accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dtype::Dtype;
use crate::units::Bytes;

/// A 4-D tensor shape in `N × C × H × W` layout.
///
/// All feature maps exchanged between perception-pipeline stages are
/// described by this shape; 2-D token matrices (attention operands) use the
/// [`TensorShape::tokens`] constructor which folds the token count into
/// `H × W = tokens × 1`.
///
/// # Examples
///
/// ```
/// use npu_tensor::{Dtype, TensorShape};
///
/// // One camera's multiscale feature (stride 8): 90x160x256.
/// let p3 = TensorShape::nchw(1, 256, 90, 160);
/// assert_eq!(p3.elements(), 256 * 90 * 160);
///
/// // 12,800 fused camera tokens at d=256.
/// let toks = TensorShape::tokens(12_800, 256);
/// assert_eq!(toks.bytes(Dtype::Fp16).as_u64(), 12_800 * 256 * 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TensorShape {
    n: u64,
    c: u64,
    h: u64,
    w: u64,
}

impl TensorShape {
    /// Creates a shape from explicit `N, C, H, W` extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero — zero-sized tensors are always a
    /// workload-construction bug (C-VALIDATE).
    pub fn nchw(n: u64, c: u64, h: u64, w: u64) -> Self {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "tensor extents must be positive, got {n}x{c}x{h}x{w}"
        );
        TensorShape { n, c, h, w }
    }

    /// Creates a token-matrix shape (`tokens × features`), stored as
    /// `1 × features × tokens × 1`.
    ///
    /// Token-shaped operands are what starves the Shidiannao-style 2-D
    /// output mapping (see `npu-maestro`): their `W` extent is 1.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` or `features` is zero.
    pub fn tokens(tokens: u64, features: u64) -> Self {
        TensorShape::nchw(1, features, tokens, 1)
    }

    /// Creates a flat vector shape (`1 × len × 1 × 1`).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn vector(len: u64) -> Self {
        TensorShape::nchw(1, len, 1, 1)
    }

    /// Batch extent.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Channel / feature extent.
    pub fn c(&self) -> u64 {
        self.c
    }

    /// Height (or token-count) extent.
    pub fn h(&self) -> u64 {
        self.h
    }

    /// Width extent.
    pub fn w(&self) -> u64 {
        self.w
    }

    /// Total number of elements.
    pub fn elements(&self) -> u64 {
        self.n * self.c * self.h * self.w
    }

    /// Total size at the given datatype.
    pub fn bytes(&self, dtype: Dtype) -> Bytes {
        dtype.sized(self.elements())
    }

    /// Spatial extent `H × W`.
    pub fn spatial(&self) -> u64 {
        self.h * self.w
    }

    /// Returns a copy with a different channel extent.
    ///
    /// # Panics
    ///
    /// Panics if `c` is zero.
    pub fn with_c(&self, c: u64) -> Self {
        TensorShape::nchw(self.n, c, self.h, self.w)
    }

    /// Returns a copy with the spatial dims scaled by `factor` (used by
    /// up/down-sampling layers).
    ///
    /// # Panics
    ///
    /// Panics if the scaled extents would be zero.
    pub fn scaled_spatial(&self, num: u64, den: u64) -> Self {
        TensorShape::nchw(
            self.n,
            self.c,
            (self.h * num).div_euclid(den).max(1),
            (self.w * num).div_euclid(den).max(1),
        )
    }

    /// Splits the shape into `parts` roughly equal slices along the token /
    /// height axis, returning the per-part heights. Used by the scheduler's
    /// token-split sharding.
    ///
    /// The returned vector has exactly `min(parts, h)` entries that sum to
    /// `h`, each differing by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn split_h(&self, parts: u64) -> Vec<u64> {
        assert!(parts > 0, "cannot split into zero parts");
        let parts = parts.min(self.h);
        let base = self.h / parts;
        let rem = self.h % parts;
        (0..parts)
            .map(|i| if i < rem { base + 1 } else { base })
            .collect()
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn element_and_byte_counts() {
        let s = TensorShape::nchw(8, 256, 20, 80);
        assert_eq!(s.elements(), 8 * 256 * 20 * 80);
        assert_eq!(s.bytes(Dtype::Fp16).as_u64(), s.elements() * 2);
        assert_eq!(s.spatial(), 1600);
    }

    #[test]
    fn token_constructor_folds_into_h() {
        let s = TensorShape::tokens(12_800, 256);
        assert_eq!(s.h(), 12_800);
        assert_eq!(s.w(), 1);
        assert_eq!(s.c(), 256);
    }

    #[test]
    #[should_panic(expected = "extents must be positive")]
    fn zero_extent_panics() {
        let _ = TensorShape::nchw(1, 0, 2, 2);
    }

    #[test]
    fn scaled_spatial_up_and_down() {
        let s = TensorShape::nchw(1, 128, 20, 80);
        assert_eq!(s.scaled_spatial(2, 1), TensorShape::nchw(1, 128, 40, 160));
        assert_eq!(s.scaled_spatial(1, 2), TensorShape::nchw(1, 128, 10, 40));
    }

    #[test]
    fn display_format() {
        assert_eq!(TensorShape::nchw(1, 256, 20, 80).to_string(), "1x256x20x80");
    }

    proptest! {
        #[test]
        fn split_h_parts_sum_to_h(h in 1u64..5000, parts in 1u64..64) {
            let s = TensorShape::nchw(1, 4, h, 3);
            let splits = s.split_h(parts);
            prop_assert_eq!(splits.iter().sum::<u64>(), h);
            prop_assert_eq!(splits.len() as u64, parts.min(h));
            let min = splits.iter().min().unwrap();
            let max = splits.iter().max().unwrap();
            prop_assert!(max - min <= 1, "splits must be balanced");
        }

        #[test]
        fn bytes_scale_linearly_with_elements(c in 1u64..512, h in 1u64..256, w in 1u64..256) {
            let s = TensorShape::nchw(1, c, h, w);
            prop_assert_eq!(s.bytes(Dtype::Fp32).as_u64(), 2 * s.bytes(Dtype::Fp16).as_u64());
            prop_assert_eq!(s.bytes(Dtype::Fp16).as_u64(), 2 * s.bytes(Dtype::Int8).as_u64());
        }
    }
}
