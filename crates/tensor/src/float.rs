//! NaN-total-order selection and sorting helpers.
//!
//! Every argmin/argmax/sort over `f64` keys in this workspace must be a
//! *total* order: `partial_cmp(..).expect("no NaN")` turns a single NaN
//! produced anywhere upstream into a panic in the middle of a sweep, and
//! `unwrap_or(Equal)` silently destabilises the order instead. These
//! helpers route every comparison through [`f64::total_cmp`], which is
//! total over all bit patterns (NaN sorts above +inf, -0.0 below +0.0),
//! so selection is deterministic and panic-free on **any** input while
//! agreeing bit-for-bit with the old `partial_cmp` path on finite keys.
//!
//! The `npu-lint` rule **D002 nan-partial-ord** rejects new
//! `partial_cmp(..).unwrap()/expect(..)` comparator sites; migrate them
//! here instead.
//!
//! Tie-breaking mirrors the standard library exactly:
//!
//! * [`total_min_by_key`] returns the **first** minimal element,
//! * [`total_max_by_key`] returns the **last** maximal element,
//! * [`total_sort_by_key`] / [`total_sort_desc_by_key`] are **stable**,
//!
//! so swapping an existing `min_by`/`max_by`/`sort_by` call for the
//! helper never changes which element wins on finite keys.
//!
//! # Examples
//!
//! ```
//! use npu_tensor::float;
//!
//! let loads = [(0usize, 3.0), (1, 1.0), (2, 1.0)];
//! let least = float::total_min_by_key(loads.iter(), |&&(_, t)| t);
//! assert_eq!(least, Some(&(1, 1.0))); // first minimum wins ties
//!
//! let mut xs = vec![2.0, f64::NAN, 1.0];
//! float::total_sort_by_key(&mut xs, |&x| x);
//! assert_eq!(xs[0], 1.0); // NaN sorts last, nothing panics
//! assert!(xs[2].is_nan());
//! ```

use std::cmp::Ordering;

/// Total-order comparison of two `f64` keys ([`f64::total_cmp`]).
///
/// The comparator to reach for when the composite sort key needs more
/// than one field (chain with [`Ordering::then`]).
#[inline]
pub fn total_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// The element with the minimal `f64` key under the total order.
///
/// Ties resolve to the **first** minimal element, exactly like
/// [`Iterator::min_by`]; an empty iterator yields `None`.
pub fn total_min_by_key<T, I, F>(iter: I, mut key: F) -> Option<T>
where
    I: IntoIterator<Item = T>,
    F: FnMut(&T) -> f64,
{
    iter.into_iter().min_by(|a, b| key(a).total_cmp(&key(b)))
}

/// The element with the maximal `f64` key under the total order.
///
/// Ties resolve to the **last** maximal element, exactly like
/// [`Iterator::max_by`]; an empty iterator yields `None`.
pub fn total_max_by_key<T, I, F>(iter: I, mut key: F) -> Option<T>
where
    I: IntoIterator<Item = T>,
    F: FnMut(&T) -> f64,
{
    iter.into_iter().max_by(|a, b| key(a).total_cmp(&key(b)))
}

/// Stable ascending sort by an `f64` key under the total order.
///
/// NaN keys sort after every finite key instead of panicking.
pub fn total_sort_by_key<T, F>(slice: &mut [T], mut key: F)
where
    F: FnMut(&T) -> f64,
{
    slice.sort_by(|a, b| key(a).total_cmp(&key(b)));
}

/// Stable descending sort by an `f64` key under the total order.
///
/// The descending twin of [`total_sort_by_key`] — equivalent to the
/// common `sort_by(|a, b| key(b).partial_cmp(&key(a)).expect(..))`
/// idiom, minus the panic: NaN keys sort *first* (they are the largest
/// values of the total order), finite keys keep their relative order.
pub fn total_sort_desc_by_key<T, F>(slice: &mut [T], mut key: F)
where
    F: FnMut(&T) -> f64,
{
    slice.sort_by(|a, b| key(b).total_cmp(&key(a)));
}

#[cfg(test)]
mod tests {
    use proptest::{prop_assert_eq, proptest};

    use super::*;

    #[test]
    fn min_returns_first_tie_max_returns_last() {
        let xs = [(0, 1.0), (1, 1.0), (2, 2.0), (3, 2.0)];
        assert_eq!(total_min_by_key(xs.iter(), |&&(_, v)| v), Some(&(0, 1.0)));
        assert_eq!(total_max_by_key(xs.iter(), |&&(_, v)| v), Some(&(3, 2.0)));
    }

    #[test]
    fn empty_iterators_yield_none() {
        let xs: [f64; 0] = [];
        assert_eq!(total_min_by_key(xs.iter(), |&&v| v), None);
        assert_eq!(total_max_by_key(xs.iter(), |&&v| v), None);
    }

    #[test]
    fn nan_never_panics_and_sorts_above_infinity() {
        let mut xs = vec![f64::INFINITY, f64::NAN, -1.0, f64::NEG_INFINITY];
        total_sort_by_key(&mut xs, |&x| x);
        assert_eq!(xs[0], f64::NEG_INFINITY);
        assert_eq!(xs[2], f64::INFINITY);
        assert!(xs[3].is_nan());
        let min = total_min_by_key(xs.iter(), |&&x| x);
        assert_eq!(min, Some(&f64::NEG_INFINITY));
    }

    #[test]
    fn descending_sort_is_stable() {
        let mut xs = [(0, 2.0), (1, 1.0), (2, 2.0)];
        total_sort_desc_by_key(&mut xs, |&(_, v)| v);
        assert_eq!(xs.map(|(i, _)| i), [0, 2, 1]);
    }

    // The migration contract of ISSUE 7: on finite keys every helper
    // selects the exact element (index included — ties matter) and the
    // exact order that the old `partial_cmp(..).expect("no NaN")` idiom
    // did, so swapping the workspace's argmin/argmax/sort sites over is
    // behaviour-preserving and the goldens stay byte-identical.
    proptest! {
        #[test]
        fn selection_matches_partial_cmp_on_finite_inputs(
            xs in proptest::collection::vec(-1e12f64..1e12, 1..48),
        ) {
            let min_total = total_min_by_key(xs.iter().enumerate(), |&(_, &x)| x);
            let min_partial = xs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"));
            prop_assert_eq!(min_total, min_partial);

            let max_total = total_max_by_key(xs.iter().enumerate(), |&(_, &x)| x);
            let max_partial = xs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"));
            prop_assert_eq!(max_total, max_partial);
        }

        #[test]
        fn sort_order_matches_partial_cmp_on_finite_inputs(
            xs in proptest::collection::vec(-1e12f64..1e12, 0..48),
        ) {
            let indexed: Vec<(usize, f64)> = xs.iter().copied().enumerate().collect();

            let mut asc_total = indexed.clone();
            total_sort_by_key(&mut asc_total, |&(_, x)| x);
            let mut asc_partial = indexed.clone();
            asc_partial.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            prop_assert_eq!(asc_total, asc_partial);

            let mut desc_total = indexed.clone();
            total_sort_desc_by_key(&mut desc_total, |&(_, x)| x);
            let mut desc_partial = indexed;
            desc_partial.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            prop_assert_eq!(desc_total, desc_partial);
        }
    }
}
