//! Foundation types for the `mcm-npu` simulator workspace.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`units`] — newtype quantities with physical meaning ([`Seconds`],
//!   [`Joules`], [`Bytes`], [`MacCount`], [`Cycles`], …) so that a latency
//!   can never be accidentally added to an energy (C-NEWTYPE).
//! * [`dtype`] — numeric datatypes carried by feature maps ([`Dtype`]).
//! * [`shape`] — tensor shapes ([`TensorShape`]) with element/byte
//!   accounting.
//! * [`float`] — NaN-total-order argmin/argmax/sort helpers
//!   (`total_min_by_key` & co.) so float selection is deterministic and
//!   panic-free; the `npu-lint` D002 rule enforces their use.
//!
//! # Examples
//!
//! ```
//! use npu_tensor::{Dtype, Seconds, TensorShape};
//!
//! // The fused BEV grid of the Tesla Autopilot pipeline: 1x20x80x256.
//! let grid = TensorShape::nchw(1, 256, 20, 80);
//! assert_eq!(grid.elements(), 20 * 80 * 256);
//! assert_eq!(grid.bytes(Dtype::Fp16).as_u64(), 20 * 80 * 256 * 2);
//!
//! let lat = Seconds::from_millis(82.7);
//! assert!(lat < Seconds::from_millis(85.0));
//! ```

pub mod dtype;
pub mod float;
pub mod shape;
pub mod units;

pub use dtype::Dtype;
pub use shape::TensorShape;
pub use units::{Bytes, Cycles, Edp, Hertz, Joules, MacCount, Seconds};
