//! Heterogeneous chiplet integration.
//!
//! The paper's Table I studies Het(2)/Het(4): replacing 2 or 4 of the
//! trunks-quadrant OS chiplets with NVDLA-like WS chiplets to harvest the
//! WS energy advantage on conv-class trunk layers.

use npu_maestro::{Accelerator, Dataflow};

use crate::chiplet::ChipletId;
use crate::package::McmPackage;

/// Returns a copy of the package with the given chiplets replaced by
/// NVDLA-like WS accelerators of the same PE count.
pub fn with_ws_chiplets(pkg: &McmPackage, ids: &[ChipletId]) -> McmPackage {
    let mut out = pkg.clone();
    for &id in ids {
        let pes = out.chiplet(id).accelerator().array().pes();
        out.chiplet_mut(id)
            .set_accelerator(Accelerator::nvdla_like(pes));
    }
    out
}

/// Chooses `k` chiplets of a region to convert to WS: the region's last
/// chiplets (deepest in the quadrant, as marked in the paper's Fig. 8).
pub fn het_candidates(region: &[ChipletId], k: usize) -> Vec<ChipletId> {
    region.iter().rev().take(k).copied().collect()
}

/// Counts WS chiplets in the package.
pub fn ws_count(pkg: &McmPackage) -> usize {
    pkg.chiplets()
        .iter()
        .filter(|c| c.accelerator().dataflow() == Dataflow::WeightStationary)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrant::stage_regions;

    #[test]
    fn het2_converts_two() {
        let pkg = McmPackage::simba_6x6();
        let trunks = &stage_regions(&pkg, 4)[3];
        let het = with_ws_chiplets(&pkg, &het_candidates(trunks, 2));
        assert_eq!(ws_count(&het), 2);
        assert_eq!(het.total_pes(), 9216);
    }

    #[test]
    fn ws_chiplets_are_in_the_requested_region() {
        let pkg = McmPackage::simba_6x6();
        let trunks = &stage_regions(&pkg, 4)[3];
        let picks = het_candidates(trunks, 4);
        assert_eq!(picks.len(), 4);
        for p in &picks {
            assert!(trunks.contains(p));
        }
    }

    #[test]
    fn original_package_untouched() {
        let pkg = McmPackage::simba_6x6();
        let trunks = &stage_regions(&pkg, 4)[3];
        let _het = with_ws_chiplets(&pkg, &het_candidates(trunks, 2));
        assert_eq!(ws_count(&pkg), 0);
    }
}
