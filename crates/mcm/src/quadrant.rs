//! Quadrant / region partitioning of a package.
//!
//! The paper's initial allocation (§IV) gives each of the four perception
//! stages its own quadrant of the 6×6 package. The pipeline flows in a
//! ring: FE (north-west, nearest the DRAM ports) → S_FUSE (north-east) →
//! T_FUSE (south-east) → trunks (south-west).

use npu_noc::Mesh2d;

use crate::chiplet::ChipletId;
use crate::package::McmPackage;

/// Splits the package into `n` stage regions.
///
/// For `n = 4` on an even mesh this produces the paper's quadrants in
/// pipeline-ring order; for other `n` (or tiny baseline packages) chiplets
/// are dealt round-robin so every stage still gets hardware.
pub fn stage_regions(pkg: &McmPackage, n: usize) -> Vec<Vec<ChipletId>> {
    assert!(n > 0, "need at least one region");
    let mesh = pkg.mesh();
    if n == 4 && mesh.width() >= 2 && mesh.height() >= 2 && pkg.len() >= 4 {
        quadrant_ring(pkg, mesh)
    } else {
        round_robin(pkg, n)
    }
}

/// Quadrants in ring order: NW, NE, SE, SW.
fn quadrant_ring(pkg: &McmPackage, mesh: Mesh2d) -> Vec<Vec<ChipletId>> {
    let (hx, hy) = (mesh.width() / 2, mesh.height() / 2);
    let mut regions = vec![Vec::new(); 4];
    for id in pkg.ids() {
        let c = mesh.coord(pkg.chiplet(id).node());
        let west = c.x < hx;
        let north = c.y < hy;
        let region = match (north, west) {
            (true, true) => 0,   // NW: FE, closest to DRAM
            (true, false) => 1,  // NE: S_FUSE
            (false, false) => 2, // SE: T_FUSE
            (false, true) => 3,  // SW: trunks
        };
        regions[region].push(id);
    }
    regions
}

fn round_robin(pkg: &McmPackage, n: usize) -> Vec<Vec<ChipletId>> {
    let mut regions = vec![Vec::new(); n];
    for (i, id) in pkg.ids().enumerate() {
        regions[i % n].push(id);
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simba_quadrants_are_nine_each() {
        let pkg = McmPackage::simba_6x6();
        let regions = stage_regions(&pkg, 4);
        assert_eq!(regions.len(), 4);
        for r in &regions {
            assert_eq!(r.len(), 9);
        }
        // Disjoint cover.
        let mut all: Vec<_> = regions.concat();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 36);
    }

    #[test]
    fn fe_quadrant_is_nearest_dram() {
        let pkg = McmPackage::simba_6x6();
        let regions = stage_regions(&pkg, 4);
        let mean_dram = |r: &[ChipletId]| {
            r.iter().map(|&c| pkg.dram_hops(c) as f64).sum::<f64>() / r.len() as f64
        };
        assert!(mean_dram(&regions[0]) < mean_dram(&regions[1]));
        assert!(mean_dram(&regions[0]) < mean_dram(&regions[2]));
    }

    #[test]
    fn ring_neighbors_are_adjacent() {
        // The mean hop distance between consecutive stage regions must be
        // small (the placement argument behind Figs. 6-7).
        let pkg = McmPackage::simba_6x6();
        let regions = stage_regions(&pkg, 4);
        let mean_hops = |a: &[ChipletId], b: &[ChipletId]| {
            let mut sum = 0.0;
            for &x in a {
                for &y in b {
                    sum += pkg.hops(x, y) as f64;
                }
            }
            sum / (a.len() * b.len()) as f64
        };
        let ring = mean_hops(&regions[0], &regions[1]);
        let diagonal = mean_hops(&regions[0], &regions[2]);
        assert!(ring < diagonal);
    }

    #[test]
    fn baselines_get_round_robin() {
        let pkg = McmPackage::quad_2304();
        let regions = stage_regions(&pkg, 3);
        assert_eq!(regions.iter().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn dual_npu_quadrants_are_18() {
        let pkg = McmPackage::dual_npu_12x6();
        let regions = stage_regions(&pkg, 4);
        for r in &regions {
            assert_eq!(r.len(), 18);
        }
    }
}
