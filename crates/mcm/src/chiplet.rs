//! A chiplet: an accelerator instance in a package slot.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_maestro::Accelerator;
use npu_noc::NodeId;

/// Identifier of a chiplet within one package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChipletId(pub u32);

impl ChipletId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChipletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An accelerator chiplet placed on a mesh node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chiplet {
    id: ChipletId,
    node: NodeId,
    accelerator: Accelerator,
}

impl Chiplet {
    /// Creates a chiplet.
    pub fn new(id: ChipletId, node: NodeId, accelerator: Accelerator) -> Self {
        Chiplet {
            id,
            node,
            accelerator,
        }
    }

    /// Chiplet id.
    pub fn id(&self) -> ChipletId {
        self.id
    }

    /// Mesh node the chiplet occupies.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The accelerator in this slot.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accelerator
    }

    /// Replaces the accelerator (heterogeneous integration).
    pub fn set_accelerator(&mut self, acc: Accelerator) {
        self.accelerator = acc;
    }
}

impl fmt::Display for Chiplet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} [{}]", self.id, self.node, self.accelerator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_noc::Mesh2d;

    #[test]
    fn accessors() {
        let mesh = Mesh2d::new(2, 2);
        let c = Chiplet::new(
            ChipletId(3),
            mesh.node(1, 1),
            Accelerator::shidiannao_like(256),
        );
        assert_eq!(c.id(), ChipletId(3));
        assert_eq!(c.accelerator().array().pes(), 256);
        assert_eq!(c.id().to_string(), "c3");
    }

    #[test]
    fn swap_accelerator() {
        let mesh = Mesh2d::new(1, 1);
        let mut c = Chiplet::new(
            ChipletId(0),
            mesh.node(0, 0),
            Accelerator::shidiannao_like(256),
        );
        c.set_accelerator(Accelerator::nvdla_like(256));
        assert_eq!(
            c.accelerator().dataflow(),
            npu_maestro::Dataflow::WeightStationary
        );
    }
}
