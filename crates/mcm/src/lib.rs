//! Multi-chiplet-module (MCM) package model.
//!
//! An [`McmPackage`] is a mesh of chiplet slots, each holding an
//! accelerator instance, together with NoP link parameters and package-edge
//! DRAM ports. Presets cover every hardware point of the paper:
//!
//! * [`McmPackage::simba_6x6`] — 36 × 256-PE OS chiplets (the paper's
//!   NPU, equal in PEs to the Tesla FSD NPU),
//! * [`McmPackage::monolithic_9216`] / [`McmPackage::dual_4608`] /
//!   [`McmPackage::quad_2304`] — the Table II baselines,
//! * [`McmPackage::dual_npu_12x6`] — the 72-chiplet two-NPU study (Fig. 10),
//! * [`hetero::with_ws_chiplets`] — heterogeneous Het(k) integration
//!   (Table I).
//!
//! # Examples
//!
//! ```
//! use npu_mcm::McmPackage;
//!
//! let pkg = McmPackage::simba_6x6();
//! assert_eq!(pkg.len(), 36);
//! assert_eq!(pkg.total_pes(), 9216); // == Tesla FSD NPU PE budget
//! ```

pub mod chiplet;
pub mod hetero;
pub mod package;
pub mod quadrant;

pub use chiplet::{Chiplet, ChipletId};
pub use package::McmPackage;
pub use quadrant::stage_regions;
