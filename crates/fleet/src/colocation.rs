//! Region partitioning and co-scheduling: N tenants sharing one
//! package.
//!
//! The co-scheduler partitions a package's chiplet mesh into contiguous
//! **column bands**, one per tenant, sized by priority-boosted compute
//! demand under a deterministic divisor apportionment (D'Hondt with
//! first-index tie-break). Each tenant's workload is then matched onto
//! its band in isolation — a band is an isometric sub-mesh, so the
//! matched schedule translates chiplet-for-chiplet onto the full
//! package — and all tenants are verified together in **one**
//! shared-calendar DES run ([`npu_pipesim::simulate_tenants`]).
//!
//! Admission is deterministic and two-staged: an analytic feasibility
//! screen (the matcher's predicted steady interval against each trial
//! tenant's mean target) rejects hopeless colocations cheaply, then the
//! DES verifies every tenant's mean *and* p99 SLO on the trial
//! partition. Candidates are processed in canonical (priority, name)
//! order, so the outcome is invariant under permutation of the input.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use npu_maestro::CostModel;
use npu_mcm::{ChipletId, McmPackage};
use npu_noc::Mesh2d;
use npu_pipesim::{simulate_tenants, PhaseReport, Readiness, SimConfig, TenantStream};
use npu_sched::{MatcherConfig, Schedule, ThroughputMatcher};
use npu_tensor::{Dtype, Seconds};

use crate::tenant::{canonical_order, RejectReason, Tenant};

/// Frames per tenant in the admission DES verification: long enough to
/// resolve queueing tails on the trimmed window, short enough that
/// packing hundreds of vehicles stays interactive.
pub const VERIFY_FRAMES: usize = 64;

/// A contiguous column band `[lo, hi)` of the package mesh: one
/// tenant's chiplet region. Column bands are isometric sub-meshes —
/// translating `(x, y) → (x + lo, y)` preserves every hop distance — so
/// a schedule matched on the band behaves identically when flattened
/// onto the full package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// First mesh column of the band (inclusive).
    pub lo: u32,
    /// One past the last column.
    pub hi: u32,
}

impl Region {
    /// Columns in the band.
    pub fn width(&self) -> u32 {
        self.hi - self.lo
    }

    /// The band's chiplets on the full mesh, ascending id order.
    pub fn chiplets(&self, mesh: Mesh2d) -> Vec<ChipletId> {
        let mut out = Vec::with_capacity((self.width() * mesh.height()) as usize);
        for y in 0..mesh.height() {
            for x in self.lo..self.hi {
                out.push(ChipletId(y * mesh.width() + x));
            }
        }
        out
    }
}

/// Apportions `total_cols` mesh columns over positive demand weights,
/// at least one column each: start everyone at one column, then hand
/// the remaining columns one at a time to the tenant with the highest
/// per-column demand (D'Hondt divisor method, strict `>` so ties keep
/// the first index — deterministic). Returns `None` when there are more
/// tenants than columns, or when any weight is non-finite or
/// non-positive (a NaN weight would otherwise poison every divisor
/// comparison and silently starve the remaining tenants).
pub fn apportion_columns(weights: &[f64], total_cols: u32) -> Option<Vec<u32>> {
    let k = weights.len();
    if k == 0 || k as u32 > total_cols {
        return None;
    }
    if !weights.iter().all(|w| w.is_finite() && *w > 0.0) {
        return None;
    }
    let mut cols = vec![1u32; k];
    for _ in 0..total_cols - k as u32 {
        let mut best = 0;
        let mut best_score = weights[0] / cols[0] as f64;
        for (i, &w) in weights.iter().enumerate().skip(1) {
            let score = w / cols[i] as f64;
            if score > best_score {
                best = i;
                best_score = score;
            }
        }
        cols[best] += 1;
    }
    Some(cols)
}

/// One tenant's compiled placement in a colocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPlacement {
    /// The tenant.
    pub tenant: Tenant,
    /// Its column band.
    pub region: Region,
    /// Its schedule, in **full-package** chiplet ids.
    pub schedule: Schedule,
    /// The matcher's analytic pipelining latency on the band.
    pub predicted_pipe: Seconds,
}

/// A compiled colocation: every tenant placed on its band, in canonical
/// (priority, name) order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Colocation {
    /// Placements in canonical tenant order.
    pub placements: Vec<TenantPlacement>,
}

impl Colocation {
    /// Looks a tenant's placement up by name.
    pub fn placement(&self, name: &str) -> Option<&TenantPlacement> {
        self.placements.iter().find(|p| p.tenant.name == name)
    }
}

/// The result of running deterministic admission control over a set of
/// candidate tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionOutcome {
    /// The final colocation of all admitted tenants.
    pub colocation: Colocation,
    /// The final DES verification reports, aligned with
    /// `colocation.placements`.
    pub reports: Vec<PhaseReport>,
    /// Tenants turned away, in the order they were considered, each
    /// with its typed reason.
    pub rejected: Vec<(Tenant, RejectReason)>,
}

impl AdmissionOutcome {
    /// Admitted tenant count.
    pub fn admitted(&self) -> usize {
        self.colocation.placements.len()
    }
}

/// The co-scheduler: one package, one cost model, and a memo of matched
/// band schedules so re-partitioning (admission trials, preemption)
/// never re-runs the matcher for a (workload, band width) pair it has
/// already compiled.
pub struct CoScheduler<'m> {
    pkg: McmPackage,
    model: &'m dyn CostModel,
    verify_frames: usize,
    /// (band width, scenario fingerprint) → (band-local schedule,
    /// analytic pipe). Bands of equal width are identical sub-meshes on
    /// a homogeneous package, so the match result is position-free.
    cache: BTreeMap<(u32, String), (Schedule, Seconds)>,
}

impl<'m> CoScheduler<'m> {
    /// Creates a co-scheduler for one package.
    pub fn new(pkg: McmPackage, model: &'m dyn CostModel) -> CoScheduler<'m> {
        CoScheduler {
            pkg,
            model,
            verify_frames: VERIFY_FRAMES,
            cache: BTreeMap::new(),
        }
    }

    /// Overrides the admission verification window.
    pub fn with_verify_frames(mut self, frames: usize) -> CoScheduler<'m> {
        self.verify_frames = frames;
        self
    }

    /// The package being co-scheduled.
    pub fn package(&self) -> &McmPackage {
        &self.pkg
    }

    /// The cost model driving the matcher and the DES.
    pub fn model(&self) -> &'m dyn CostModel {
        self.model
    }

    /// Frames per tenant in the DES verification.
    pub fn verify_frames(&self) -> usize {
        self.verify_frames
    }

    /// Partitions the mesh over `tenants` (which must already be in
    /// canonical order — admission and preemption maintain that) and
    /// matches every tenant onto its band. Fails only when there are
    /// more tenants than mesh columns.
    pub fn compile(&mut self, tenants: &[Tenant]) -> Result<Colocation, RejectReason> {
        let mesh = self.pkg.mesh();
        let weights: Vec<f64> = tenants.iter().map(Tenant::weighted_demand).collect();
        let cols = apportion_columns(&weights, mesh.width()).ok_or(RejectReason::NoCapacity {
            tenants: tenants.len(),
            columns: mesh.width(),
        })?;
        let mut placements = Vec::with_capacity(tenants.len());
        let mut lo = 0u32;
        for (tenant, &width) in tenants.iter().zip(&cols) {
            let region = Region { lo, hi: lo + width };
            lo += width;
            let (band_schedule, pipe) = self.band_schedule(tenant, width);
            let schedule = translate_schedule(&band_schedule, region, mesh.width(), width);
            placements.push(TenantPlacement {
                tenant: tenant.clone(),
                region,
                schedule,
                predicted_pipe: pipe,
            });
        }
        Ok(Colocation { placements })
    }

    /// Matches a tenant's workload onto a width-`width` band, memoized
    /// per (width, scenario). The returned schedule is in band-local
    /// chiplet ids.
    fn band_schedule(&mut self, tenant: &Tenant, width: u32) -> (Schedule, Seconds) {
        let key = (width, format!("{:?}", tenant.scenario));
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let mesh = self.pkg.mesh();
        let band = McmPackage::from_fn(
            format!("{}/band{}", self.pkg.name(), width),
            Mesh2d::new(width, mesh.height()),
            |i| {
                // Band node i = (x, y) = (i % width, i / width) maps to
                // global column i % width (position-free: bands of one
                // width share this package on a homogeneous mesh).
                let (x, y) = (i % width, i / width);
                self.pkg
                    .chiplet(ChipletId(y * mesh.width() + x))
                    .accelerator()
                    .clone()
            },
        );
        let cfg = MatcherConfig {
            allow_fe_split: true,
            ..MatcherConfig::default()
        };
        let outcome = ThroughputMatcher::new(self.model, cfg)
            .match_throughput(&tenant.scenario.workload(), &band);
        let entry = (outcome.schedule, outcome.report.pipe);
        self.cache.insert(key, entry.clone());
        entry
    }

    /// Verifies a colocation in one shared-calendar DES run: every
    /// tenant serves `verify_frames` frames of its own arrival process,
    /// all regions ready at t = 0.
    pub fn verify(&self, colo: &Colocation) -> Vec<PhaseReport> {
        let times: Vec<Vec<f64>> = colo
            .placements
            .iter()
            .map(|p| p.tenant.scenario.arrivals().times(self.verify_frames))
            .collect();
        let streams: Vec<TenantStream<'_>> = colo
            .placements
            .iter()
            .zip(times)
            .map(|(p, times)| TenantStream {
                schedule: &p.schedule,
                times,
                readiness: Readiness::Barrier(0.0),
                warmup: Some(SimConfig::default_warmup(self.verify_frames)),
                cutoff: None,
            })
            .collect();
        simulate_tenants(&streams, &self.pkg, self.model, Dtype::Fp16)
    }

    /// Compiles and fully checks one trial colocation: analytic screen
    /// on every trial tenant first, then the DES verification of every
    /// tenant's mean and p99 SLO. `tenants` must be in canonical order.
    pub fn try_colocate(
        &mut self,
        tenants: &[Tenant],
    ) -> Result<(Colocation, Vec<PhaseReport>), RejectReason> {
        let colo = self.compile(tenants)?;
        for p in &colo.placements {
            let predicted = p.tenant.scenario.predicted_interval(p.predicted_pipe);
            if predicted.as_secs() > p.tenant.slo.latency_target.as_secs() {
                return Err(RejectReason::AnalyticInfeasible {
                    tenant: p.tenant.name.clone(),
                    predicted,
                    target: p.tenant.slo.latency_target,
                });
            }
        }
        let reports = self.verify(&colo);
        if let Some(reason) = slo_violation(&colo, &reports) {
            return Err(reason);
        }
        Ok((colo, reports))
    }

    /// Deterministic admission control: candidates are considered in
    /// canonical (priority, name) order; each is admitted iff the
    /// re-partitioned colocation passes the analytic screen and the DES
    /// verification for **every** tenant (the candidate and all
    /// incumbents, whose regions it shrinks). The outcome is invariant
    /// under permutation of `candidates`.
    pub fn admit(&mut self, candidates: &[Tenant]) -> AdmissionOutcome {
        let mut ordered = candidates.to_vec();
        canonical_order(&mut ordered);
        let mut admitted: Vec<Tenant> = Vec::new();
        let mut rejected = Vec::new();
        let mut best: Option<(Colocation, Vec<PhaseReport>)> = None;
        for cand in ordered {
            let mut trial = admitted.clone();
            trial.push(cand.clone());
            canonical_order(&mut trial);
            match self.try_colocate(&trial) {
                Ok(ok) => {
                    admitted = trial;
                    best = Some(ok);
                }
                Err(reason) => rejected.push((cand, reason)),
            }
        }
        let (colocation, reports) = best.unwrap_or_default();
        AdmissionOutcome {
            colocation,
            reports,
            rejected,
        }
    }
}

/// The first SLO violation in a verified colocation, in canonical
/// tenant order: mean target first, then the p99 bound.
pub fn slo_violation(colo: &Colocation, reports: &[PhaseReport]) -> Option<RejectReason> {
    for (p, rep) in colo.placements.iter().zip(reports) {
        let measured = rep.report.steady_interval;
        if measured.as_secs() > p.tenant.slo.latency_target.as_secs() {
            return Some(RejectReason::MeanSloViolated {
                tenant: p.tenant.name.clone(),
                measured,
                target: p.tenant.slo.latency_target,
            });
        }
        let p99 = rep.report.tails.p99;
        if p99.as_secs() > p.tenant.slo.p99_bound.as_secs() {
            return Some(RejectReason::TailSloViolated {
                tenant: p.tenant.name.clone(),
                p99,
                bound: p.tenant.slo.p99_bound,
            });
        }
    }
    None
}

/// Rebases a band-local schedule onto the full mesh: band chiplet
/// `(x, y)` (id `y·width + x`) becomes global chiplet
/// `(region.lo + x, y)` (id `y·mesh_w + region.lo + x`). Column bands
/// are isometric, so only the ids change — durations and hop counts are
/// preserved.
fn translate_schedule(band: &Schedule, region: Region, mesh_w: u32, width: u32) -> Schedule {
    let map = |c: ChipletId| {
        let (x, y) = (c.0 % width, c.0 / width);
        ChipletId(y * mesh_w + region.lo + x)
    };
    let mut out = band.clone();
    for stage in &mut out.stages {
        for c in &mut stage.region {
            *c = map(*c);
        }
        for mp in &mut stage.models {
            for lp in &mut mp.layers {
                for shard in &mut lp.shards {
                    shard.chiplet = map(shard.chiplet);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::Priority;
    use npu_maestro::FittedMaestro;
    use npu_scenario::{CameraRig, OperatingMode, Scenario};

    fn tenant(name: &str, cameras: u64, priority: Priority) -> Tenant {
        Tenant::new(
            name,
            Scenario::new(
                name,
                CameraRig::new(cameras, (360, 640), 30.0),
                OperatingMode::HighwayCruise,
            ),
            priority,
        )
    }

    #[test]
    fn apportionment_is_proportional_and_total() {
        let cols = apportion_columns(&[3.0, 1.0], 8).unwrap();
        assert_eq!(cols.iter().sum::<u32>(), 8);
        assert_eq!(cols, vec![6, 2]);
        // Everyone keeps at least one column even with tiny demand.
        let cols = apportion_columns(&[100.0, 1e-6], 6).unwrap();
        assert_eq!(cols, vec![5, 1]);
        // More tenants than columns: no partition.
        assert!(apportion_columns(&[1.0; 7], 6).is_none());
        assert!(apportion_columns(&[], 6).is_none());
        // Ties break to the first index.
        let cols = apportion_columns(&[1.0, 1.0, 1.0], 5).unwrap();
        assert_eq!(cols, vec![2, 2, 1]);
    }

    #[test]
    fn degenerate_weights_are_rejected_in_release_builds_too() {
        // A NaN weight poisons every `>` divisor comparison and a zero
        // or negative weight starves its tenant: all must fail closed,
        // not just under `debug_assert!`.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            assert!(
                apportion_columns(&[1.0, bad, 2.0], 8).is_none(),
                "weight {bad} must be rejected"
            );
        }
        assert!(apportion_columns(&[f64::NAN], 4).is_none());
    }

    #[test]
    fn regions_tile_the_mesh() {
        let mesh = Mesh2d::new(6, 6);
        let a = Region { lo: 0, hi: 4 };
        let b = Region { lo: 4, hi: 6 };
        let mut all = a.chiplets(mesh);
        all.extend(b.chiplets(mesh));
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 36, "bands tile the mesh without overlap");
        assert_eq!(a.chiplets(mesh)[0], ChipletId(0));
        // Row 1 of band b starts at global id 1*6 + 4.
        assert!(b.chiplets(mesh).contains(&ChipletId(10)));
    }

    #[test]
    fn compile_places_tenants_on_disjoint_bands() {
        let model = FittedMaestro::new();
        let mut sched = CoScheduler::new(McmPackage::simba_6x6(), &model);
        let mut tenants = vec![
            tenant("a", 8, Priority::Safety),
            tenant("b", 4, Priority::BestEffort),
        ];
        canonical_order(&mut tenants);
        let colo = sched.compile(&tenants).unwrap();
        assert_eq!(colo.placements.len(), 2);
        // Bands tile left to right in canonical order.
        assert_eq!(colo.placements[0].region.lo, 0);
        assert_eq!(colo.placements[0].region.hi, colo.placements[1].region.lo);
        assert_eq!(colo.placements[1].region.hi, 6);
        // The safety tenant's boosted demand gets the wider band.
        assert!(colo.placements[0].region.width() > colo.placements[1].region.width());
        // Every shard lands inside its tenant's band.
        let mesh = sched.package().mesh();
        for p in &colo.placements {
            let band: Vec<ChipletId> = p.region.chiplets(mesh);
            for stage in &p.schedule.stages {
                for mp in &stage.models {
                    for lp in &mp.layers {
                        for shard in &lp.shards {
                            assert!(
                                band.contains(&shard.chiplet),
                                "shard on {:?} outside band {:?}",
                                shard.chiplet,
                                p.region
                            );
                        }
                    }
                }
            }
        }
    }

    /// A keyframe-rate quad-rig tenant: small enough that two of them
    /// genuinely co-locate on one package (full 30 FPS rigs are not
    /// tail-serveable anywhere — see the tails artifact).
    fn quad_tenant(name: &str, priority: Priority) -> Tenant {
        Tenant::new(
            name,
            Scenario::new(
                name,
                npu_scenario::CameraRig::new(4, (288, 512), 8.0),
                OperatingMode::HighwayCruise,
            ),
            priority,
        )
    }

    #[test]
    fn verified_colocation_matches_slo_math() {
        let model = FittedMaestro::new();
        let mut sched =
            CoScheduler::new(crate::fleet::os256_package(6, 6), &model).with_verify_frames(32);
        // Equal class and demand: the bands split 3/3, which serves the
        // keyframe-rate quad rig with tail headroom.
        let mut tenants = vec![
            quad_tenant("patrol", Priority::Standard),
            quad_tenant("mapper", Priority::Standard),
        ];
        canonical_order(&mut tenants);
        let (colo, reports) = sched.try_colocate(&tenants).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(slo_violation(&colo, &reports).is_none());
        for rep in &reports {
            assert_eq!(rep.dropped, 0);
            assert_eq!(rep.offered, 32);
        }
    }

    #[test]
    fn admission_is_permutation_invariant() {
        let model = FittedMaestro::new();
        let candidates = vec![
            tenant("octa-a", 8, Priority::Safety),
            tenant("hexa-b", 6, Priority::Standard),
            tenant("quad-c", 4, Priority::BestEffort),
            tenant("octa-d", 8, Priority::BestEffort),
        ];
        let mut permuted = candidates.clone();
        permuted.reverse();
        permuted.swap(0, 2);
        let run = |cands: &[Tenant]| {
            CoScheduler::new(McmPackage::simba_6x6(), &model)
                .with_verify_frames(32)
                .admit(cands)
        };
        let a = run(&candidates);
        let b = run(&permuted);
        assert_eq!(a.colocation, b.colocation);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn admission_rejects_with_typed_reasons() {
        let model = FittedMaestro::new();
        // A 4x4 package cannot host five tenants on four columns — and
        // the analytic screen catches overloaded bands first.
        let mut sched = CoScheduler::new(
            McmPackage::from_fn("os256-4x4", Mesh2d::new(4, 4), |_| {
                npu_maestro::Accelerator::shidiannao_like(256)
            }),
            &model,
        )
        .with_verify_frames(32);
        let candidates: Vec<Tenant> = (0..5)
            .map(|i| tenant(&format!("t{i}"), 8, Priority::Standard))
            .collect();
        let out = sched.admit(&candidates);
        assert!(!out.rejected.is_empty(), "4 columns cannot serve 5 octas");
        assert!(out.admitted() + out.rejected.len() == 5);
        for (_, reason) in &out.rejected {
            assert!(matches!(
                reason,
                RejectReason::NoCapacity { .. }
                    | RejectReason::AnalyticInfeasible { .. }
                    | RejectReason::MeanSloViolated { .. }
                    | RejectReason::TailSloViolated { .. }
            ));
        }
    }
}
