//! Fleet-scale package-mix DSE: which package configurations serve a
//! whole vehicle fleet cheapest.
//!
//! A fleet is hundreds of vehicles, each a [`Tenant`] sampled
//! deterministically from a seeded profile distribution (mixed rigs,
//! mixed drive modes, mixed priority classes). Vehicles are packed onto
//! package *instances* by deterministic first-fit in canonical
//! admission order — each instance runs the full admission pipeline
//! ([`CoScheduler::try_colocate`]): analytic screen, then one
//! shared-calendar DES verifying every co-tenant's mean and p99 SLO.
//! A [`npu_study::Study`] then sweeps package geometries under
//! `Objective::minimize` fleet chiplet count subject to
//! `Constraint::tail_at_most` on the worst admitted-tenant p99, and a
//! mixed-pool pass checks whether combining configurations beats the
//! best uniform fleet.

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use npu_maestro::{Accelerator, CostModel};
use npu_mcm::McmPackage;
use npu_noc::Mesh2d;
use npu_pipesim::PhaseReport;
use npu_scenario::{CameraRig, OperatingMode, Scenario};
use npu_study::{Percentile, TailLatency};

use crate::colocation::{CoScheduler, Colocation};
use crate::tenant::{canonical_order, Priority, RejectReason, Tenant};

/// One vehicle archetype in the fleet distribution: a rig × operating
/// mode (one leg of a drive timeline) with a priority class and a
/// sampling weight.
pub struct VehicleProfile {
    /// Profile name (prefix of sampled vehicle names).
    pub name: &'static str,
    /// Priority class of vehicles drawn from this profile.
    pub priority: Priority,
    /// Relative sampling weight.
    pub weight: f64,
    scenario: fn() -> Scenario,
}

impl VehicleProfile {
    /// The built-in fleet distribution: safety-critical driving stacks
    /// (cruise and degraded legs), standard service streams (urban
    /// ride-hail, highway shuttle) and best-effort data miners.
    ///
    /// Rates are keyframe-perception rates (5-10 FPS), not raw camera
    /// rates: the tails artifact shows full 30 FPS rigs are not
    /// tail-serveable on any single package under the fitted cost
    /// model, so fleet serving runs each vehicle's perception at the
    /// throttled rate its SLO actually needs.
    pub fn catalog() -> Vec<VehicleProfile> {
        vec![
            VehicleProfile {
                name: "av-cruise",
                priority: Priority::Safety,
                weight: 0.28,
                scenario: || {
                    Scenario::new(
                        "av-cruise",
                        CameraRig::new(8, (360, 640), 6.0),
                        OperatingMode::HighwayCruise,
                    )
                },
            },
            VehicleProfile {
                name: "av-degraded",
                priority: Priority::Safety,
                weight: 0.08,
                scenario: || {
                    Scenario::new(
                        "av-degraded",
                        CameraRig::new(8, (360, 640), 6.0),
                        OperatingMode::DegradedDropout { lost_cameras: 3 },
                    )
                },
            },
            VehicleProfile {
                name: "ride-hail",
                priority: Priority::Standard,
                weight: 0.22,
                scenario: || {
                    Scenario::new(
                        "ride-hail",
                        CameraRig::new(8, (360, 640), 5.0),
                        OperatingMode::UrbanDense {
                            jitter_frac: 0.25,
                            seed: 11,
                        },
                    )
                },
            },
            VehicleProfile {
                name: "shuttle",
                priority: Priority::Standard,
                weight: 0.14,
                scenario: || {
                    Scenario::new(
                        "shuttle",
                        CameraRig::new(6, (360, 640), 8.0),
                        OperatingMode::HighwayCruise,
                    )
                },
            },
            VehicleProfile {
                name: "delivery",
                priority: Priority::BestEffort,
                weight: 0.18,
                scenario: || {
                    Scenario::new(
                        "delivery",
                        CameraRig::new(4, (288, 512), 10.0),
                        OperatingMode::HighwayCruise,
                    )
                },
            },
            VehicleProfile {
                name: "mining",
                priority: Priority::BestEffort,
                weight: 0.10,
                scenario: || {
                    Scenario::new(
                        "mining",
                        CameraRig::new(4, (288, 512), 8.0),
                        OperatingMode::UrbanDense {
                            jitter_frac: 0.20,
                            seed: 29,
                        },
                    )
                },
            },
        ]
    }

    /// Instantiates a vehicle of this profile.
    pub fn vehicle(&self, index: usize) -> Tenant {
        Tenant::new(
            format!("{}-{index:03}", self.name),
            (self.scenario)(),
            self.priority,
        )
    }
}

/// A deterministic fleet: `n` vehicles sampled from the profile catalog
/// with a seeded generator, so the same `(n, seed)` always yields the
/// same fleet on any machine at any `--jobs` level.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// The sampled vehicles, in sampling order.
    pub vehicles: Vec<Tenant>,
    /// The sampling seed.
    pub seed: u64,
}

impl FleetSpec {
    /// Samples an `n`-vehicle fleet from [`VehicleProfile::catalog`].
    pub fn sample(n: usize, seed: u64) -> FleetSpec {
        let catalog = VehicleProfile::catalog();
        let total: f64 = catalog.iter().map(|p| p.weight).sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let vehicles = (0..n)
            .map(|i| {
                let mut r = rng.gen_range(0.0..total);
                let profile = catalog
                    .iter()
                    .find(|p| {
                        r -= p.weight;
                        r < 0.0
                    })
                    .unwrap_or_else(|| catalog.last().expect("catalog non-empty"));
                profile.vehicle(i)
            })
            .collect();
        FleetSpec { vehicles, seed }
    }

    /// Vehicles per priority class, in [`Priority::ALL`] order.
    pub fn class_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for v in &self.vehicles {
            let i = Priority::ALL
                .iter()
                .position(|p| *p == v.priority)
                .expect("class");
            counts[i] += 1;
        }
        counts
    }
}

/// The uniform-pool package for a mesh geometry: OS-dataflow 256-PE
/// chiplets (the workhorse accelerator of the scenario DSE artifacts).
pub fn os256_package(w: u32, h: u32) -> McmPackage {
    McmPackage::from_fn(format!("os256-{w}x{h}"), Mesh2d::new(w, h), |_| {
        Accelerator::shidiannao_like(256)
    })
}

/// One admitted vehicle's verdict on its instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantVerdict {
    /// Vehicle name.
    pub name: String,
    /// Priority label.
    pub priority: String,
    /// Mesh columns of the vehicle's region.
    pub columns: u32,
    /// DES-measured steady interval (ms).
    pub interval_ms: f64,
    /// DES-measured p99 frame latency (ms).
    pub p99_ms: f64,
    /// The vehicle's p99 bound (ms).
    pub p99_bound_ms: f64,
    /// Frames offered in the verification window.
    pub offered: usize,
    /// Frames served.
    pub served: usize,
    /// Frames dropped.
    pub dropped: usize,
}

/// One package instance's final colocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct InstanceSummary {
    /// Admitted vehicles, in canonical order.
    pub tenants: Vec<TenantVerdict>,
}

impl InstanceSummary {
    fn from_colocation(colo: &Colocation, reports: &[PhaseReport]) -> InstanceSummary {
        let tenants = colo
            .placements
            .iter()
            .zip(reports)
            .map(|(p, rep)| TenantVerdict {
                name: p.tenant.name.clone(),
                priority: p.tenant.priority.label().to_string(),
                columns: p.region.width(),
                interval_ms: rep.report.steady_interval.as_millis(),
                p99_ms: rep.report.tails.p99.as_millis(),
                p99_bound_ms: p.tenant.slo.p99_bound.as_millis(),
                offered: rep.offered,
                served: rep.served(),
                dropped: rep.dropped,
            })
            .collect();
        InstanceSummary { tenants }
    }
}

/// A rejected vehicle and the typed reason no instance (or a fresh
/// instance) would take it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectedVehicle {
    /// Vehicle name.
    pub name: String,
    /// Priority label.
    pub priority: String,
    /// Why its solo admission failed.
    pub reason: RejectReason,
}

/// The result of first-fit packing one fleet onto instances of a single
/// package configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackingOutcome {
    /// Package configuration name.
    pub config: String,
    /// Chiplets per instance.
    pub chiplets_per_instance: u64,
    /// The packed instances, in creation order.
    pub instances: Vec<InstanceSummary>,
    /// Vehicles no instance could serve.
    pub rejected: Vec<RejectedVehicle>,
}

impl PackingOutcome {
    /// Instances opened.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Total fleet silicon: instances × chiplets per instance.
    pub fn total_chiplets(&self) -> u64 {
        self.instances.len() as u64 * self.chiplets_per_instance
    }

    /// Vehicles admitted.
    pub fn admitted(&self) -> usize {
        self.instances.iter().map(|i| i.tenants.len()).sum()
    }

    /// Admitted / offered vehicles.
    pub fn admission_rate(&self) -> f64 {
        let offered = self.admitted() + self.rejected.len();
        if offered == 0 {
            return 1.0;
        }
        self.admitted() as f64 / offered as f64
    }

    /// Worst measured p99 per priority class (ms), in
    /// [`Priority::ALL`] order; `None` where the class has no admitted
    /// vehicle.
    pub fn worst_p99_ms_by_class(&self) -> [Option<f64>; 3] {
        let mut worst = [None; 3];
        for inst in &self.instances {
            for t in &inst.tenants {
                let i = Priority::ALL
                    .iter()
                    .position(|p| p.label() == t.priority)
                    .expect("priority label");
                let slot: &mut Option<f64> = &mut worst[i];
                *slot = Some(slot.map_or(t.p99_ms, |w: f64| w.max(t.p99_ms)));
            }
        }
        worst
    }
}

impl TailLatency for PackingOutcome {
    /// The fleet's worst admitted-tenant tail latency, in seconds —
    /// `Constraint::tail_at_most` on a packing bounds every admitted
    /// vehicle's tail at once.
    fn tail_latency(&self, p: Percentile) -> f64 {
        let pick = |t: &TenantVerdict| match p {
            Percentile::P99 => t.p99_ms / 1e3,
            // Only p99 is carried per vehicle; the finer tails are not
            // part of the fleet SLO surface.
            _ => t.p99_ms / 1e3,
        };
        self.instances
            .iter()
            .flat_map(|i| &i.tenants)
            .map(pick)
            .fold(0.0, f64::max)
    }
}

/// A trial's shape: the (priority, scenario) multiset in canonical
/// order. Vehicles are profile clones, so admission verdicts are a
/// function of shape alone; shapes key the failure memo in the packers.
fn trial_shape(tenants: &[Tenant]) -> String {
    let parts: Vec<String> = tenants
        .iter()
        .map(|t| format!("{:?}#{:?}", t.priority, t.scenario))
        .collect();
    parts.join("|")
}

/// Packs a fleet onto instances of one package configuration by
/// deterministic first-fit: vehicles in canonical (priority, name)
/// order, each probing existing instances in creation order and opening
/// a new instance when none admits it. A vehicle whose **solo**
/// admission on a fresh instance fails is rejected with that reason.
pub fn pack_fleet(
    fleet: &[Tenant],
    pkg: &McmPackage,
    model: &dyn CostModel,
    verify_frames: usize,
) -> PackingOutcome {
    struct Open {
        tenants: Vec<Tenant>,
        colo: Colocation,
        reports: Vec<PhaseReport>,
    }
    let mut sched = CoScheduler::new(pkg.clone(), model).with_verify_frames(verify_frames);
    let mut ordered = fleet.to_vec();
    canonical_order(&mut ordered);
    let mut instances: Vec<Open> = Vec::new();
    let mut rejected = Vec::new();
    // Trial outcomes depend only on the multiset of (priority,
    // scenario) shapes in the trial, not on vehicle names — a fleet is
    // many clones of few profiles, so memoizing failed shapes collapses
    // the probe cost from one DES per (vehicle, instance) pair to one
    // per distinct shape.
    let mut failed: std::collections::BTreeMap<String, RejectReason> = Default::default();
    for vehicle in &ordered {
        let mut placed = false;
        for inst in &mut instances {
            let mut trial = inst.tenants.clone();
            trial.push(vehicle.clone());
            canonical_order(&mut trial);
            let key = trial_shape(&trial);
            if failed.contains_key(&key) {
                continue;
            }
            match sched.try_colocate(&trial) {
                Ok((colo, reports)) => {
                    inst.tenants = trial;
                    inst.colo = colo;
                    inst.reports = reports;
                    placed = true;
                    break;
                }
                Err(reason) => {
                    failed.insert(key, reason);
                }
            }
        }
        if !placed {
            let solo = std::slice::from_ref(vehicle);
            let key = trial_shape(solo);
            let verdict = match failed.get(&key) {
                Some(reason) => Err(reason.clone()),
                None => sched.try_colocate(solo).inspect_err(|reason| {
                    failed.insert(key, reason.clone());
                }),
            };
            match verdict {
                Ok((colo, reports)) => instances.push(Open {
                    tenants: vec![vehicle.clone()],
                    colo,
                    reports,
                }),
                Err(reason) => rejected.push(RejectedVehicle {
                    name: vehicle.name.clone(),
                    priority: vehicle.priority.label().to_string(),
                    reason,
                }),
            }
        }
    }
    PackingOutcome {
        config: pkg.name().to_string(),
        chiplets_per_instance: pkg.len() as u64,
        instances: instances
            .iter()
            .map(|i| InstanceSummary::from_colocation(&i.colo, &i.reports))
            .collect(),
        rejected,
    }
}

/// The result of mixed-pool packing: instances drawn from several
/// configurations, cheapest-first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedPackOutcome {
    /// Instances per configuration name, in ascending-cost config
    /// order (only configs with at least one instance).
    pub mix: Vec<(String, usize)>,
    /// Total fleet silicon across the pool.
    pub total_chiplets: u64,
    /// Vehicles admitted.
    pub admitted: usize,
    /// Vehicles rejected everywhere.
    pub rejected: usize,
}

/// Packs a fleet onto a mixed pool: vehicles in canonical order probe
/// every open instance cheapest-config-first, and a vehicle no open
/// instance admits opens a fresh instance of the **cheapest**
/// configuration that can serve it alone. Deterministic: config order
/// is (chiplet count, input order), instance order is creation order
/// within config cost.
pub fn pack_fleet_mixed(
    fleet: &[Tenant],
    geometries: &[(u32, u32)],
    model: &dyn CostModel,
    verify_frames: usize,
) -> MixedPackOutcome {
    struct Open {
        config: usize,
        tenants: Vec<Tenant>,
    }
    let mut order: Vec<usize> = (0..geometries.len()).collect();
    order.sort_by_key(|&i| (geometries[i].0 * geometries[i].1, i));
    let mut scheds: Vec<CoScheduler<'_>> = order
        .iter()
        .map(|&i| {
            let (w, h) = geometries[i];
            CoScheduler::new(os256_package(w, h), model).with_verify_frames(verify_frames)
        })
        .collect();

    let mut ordered = fleet.to_vec();
    canonical_order(&mut ordered);
    let mut instances: Vec<Open> = Vec::new();
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    // Per-config failed-shape memos (see `trial_shape`).
    let mut failed: Vec<std::collections::BTreeSet<String>> =
        vec![Default::default(); scheds.len()];
    for vehicle in &ordered {
        // Probe open instances, cheapest configuration first, then
        // creation order.
        let mut probe: Vec<usize> = (0..instances.len()).collect();
        probe.sort_by_key(|&i| (instances[i].config, i));
        let mut placed = false;
        for i in probe {
            let cfg = instances[i].config;
            let mut trial = instances[i].tenants.clone();
            trial.push(vehicle.clone());
            canonical_order(&mut trial);
            let key = trial_shape(&trial);
            if failed[cfg].contains(&key) {
                continue;
            }
            if scheds[cfg].try_colocate(&trial).is_ok() {
                instances[i].tenants = trial;
                placed = true;
                break;
            }
            failed[cfg].insert(key);
        }
        if !placed {
            // Open the cheapest configuration that serves it alone.
            let solo = std::slice::from_ref(vehicle);
            let key = trial_shape(solo);
            for cfg in 0..scheds.len() {
                if failed[cfg].contains(&key) {
                    continue;
                }
                if scheds[cfg].try_colocate(solo).is_ok() {
                    instances.push(Open {
                        config: cfg,
                        tenants: vec![vehicle.clone()],
                    });
                    placed = true;
                    break;
                }
                failed[cfg].insert(key.clone());
            }
        }
        if placed {
            admitted += 1;
        } else {
            rejected += 1;
        }
    }

    let mut mix = Vec::new();
    let mut total_chiplets = 0u64;
    for (cfg, &gi) in order.iter().enumerate() {
        let count = instances.iter().filter(|i| i.config == cfg).count();
        let (w, h) = geometries[gi];
        total_chiplets += count as u64 * u64::from(w * h);
        if count > 0 {
            mix.push((format!("os256-{w}x{h}"), count));
        }
    }
    MixedPackOutcome {
        mix,
        total_chiplets,
        admitted,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_maestro::FittedMaestro;

    #[test]
    fn fleet_sampling_is_deterministic_and_mixed() {
        let a = FleetSpec::sample(100, 2025);
        let b = FleetSpec::sample(100, 2025);
        assert_eq!(a, b);
        assert_eq!(a.vehicles.len(), 100);
        let counts = a.class_counts();
        assert!(
            counts.iter().all(|&c| c > 0),
            "all classes present: {counts:?}"
        );
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // A different seed yields a different fleet.
        let c = FleetSpec::sample(100, 7);
        assert_ne!(a, c);
        // Names are unique and profile-prefixed.
        let mut names: Vec<&str> = a.vehicles.iter().map(|v| v.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn packing_accounts_for_every_vehicle() {
        let model = FittedMaestro::new();
        let fleet = FleetSpec::sample(12, 2025);
        let out = pack_fleet(&fleet.vehicles, &os256_package(6, 6), &model, 24);
        assert_eq!(out.admitted() + out.rejected.len(), 12);
        assert!(
            out.instance_count() > 1,
            "12 vehicles need several packages"
        );
        assert_eq!(out.total_chiplets(), out.instance_count() as u64 * 36);
        let mut worst = 0.0f64;
        for inst in &out.instances {
            for t in &inst.tenants {
                // Frame balance and the per-tenant tail bound both hold
                // for every admitted vehicle.
                assert_eq!(t.offered, t.served + t.dropped);
                assert_eq!(t.offered, 24);
                assert!(
                    t.p99_ms <= t.p99_bound_ms,
                    "{}: {} > {}",
                    t.name,
                    t.p99_ms,
                    t.p99_bound_ms
                );
                worst = worst.max(t.p99_ms);
            }
        }
        assert!((out.tail_latency(Percentile::P99) - worst / 1e3).abs() < 1e-12);
    }

    #[test]
    fn packing_is_deterministic_and_input_order_invariant() {
        let model = FittedMaestro::new();
        let fleet = FleetSpec::sample(10, 2025);
        let mut shuffled = fleet.vehicles.clone();
        shuffled.reverse();
        shuffled.swap(1, 7);
        let a = pack_fleet(&fleet.vehicles, &os256_package(6, 6), &model, 16);
        let b = pack_fleet(&shuffled, &os256_package(6, 6), &model, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_pool_never_costs_more_than_its_uniform_parts() {
        let model = FittedMaestro::new();
        let fleet = FleetSpec::sample(10, 2025);
        let geoms = [(6, 6), (5, 5)];
        let mixed = pack_fleet_mixed(&fleet.vehicles, &geoms, &model, 16);
        assert_eq!(mixed.admitted + mixed.rejected, 10);
        assert!(!mixed.mix.is_empty());
        // The pool admits at least as many vehicles as the best uniform
        // config alone.
        let uniform_best = geoms
            .iter()
            .map(|&(w, h)| pack_fleet(&fleet.vehicles, &os256_package(w, h), &model, 16).admitted())
            .max()
            .unwrap();
        assert!(mixed.admitted >= uniform_best);
    }
}
