//! Tenants: a perception stream with a service-level objective and a
//! priority class.

use std::fmt;

use serde::{Deserialize, Serialize};

use npu_scenario::Scenario;
use npu_tensor::Seconds;

/// Priority class of a tenant. The derived order is admission order:
/// safety-critical tenants admit (and keep their regions) first,
/// best-effort tenants shrink first under preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Safety-critical perception (e.g. the driving stack itself).
    Safety,
    /// Standard service (e.g. a premium teleoperation stream).
    Standard,
    /// Best-effort (e.g. fleet-learning data mining): first to shrink,
    /// first to be rejected.
    BestEffort,
}

impl Priority {
    /// All classes in admission order.
    pub const ALL: [Priority; 3] = [Priority::Safety, Priority::Standard, Priority::BestEffort];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Safety => "safety",
            Priority::Standard => "standard",
            Priority::BestEffort => "best-effort",
        }
    }

    /// Demand multiplier used when apportioning chiplet columns: higher
    /// classes get proportionally more silicon for the same workload, so
    /// an arriving high-priority tenant shrinks best-effort regions
    /// first.
    pub fn weight_boost(self) -> f64 {
        match self {
            Priority::Safety => 4.0,
            Priority::Standard => 2.0,
            Priority::BestEffort => 1.0,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A tenant's service-level objective, verified by the DES during
/// admission: the mean steady-state frame interval must stay at or
/// below `latency_target`, and the p99 frame latency (from the streamed
/// `Quantiles` tails) at or below `p99_bound`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSlo {
    /// Steady-interval target (mean side of the SLO).
    pub latency_target: Seconds,
    /// p99 frame-latency bound (tail side of the SLO).
    pub p99_bound: Seconds,
}

impl TenantSlo {
    /// The tail SLO's default headroom over the mean target, matching
    /// the `repro tails` artifact's `TAIL_SLO_MULTIPLIER`.
    pub const TAIL_MULTIPLIER: f64 = 4.0;

    /// Derives the SLO from a scenario: mean target from
    /// [`Scenario::latency_target`], p99 bound at
    /// [`TenantSlo::TAIL_MULTIPLIER`]× that target.
    pub fn from_scenario(scenario: &Scenario) -> TenantSlo {
        let target = scenario.latency_target();
        TenantSlo {
            latency_target: target,
            p99_bound: Seconds::new(target.as_secs() * TenantSlo::TAIL_MULTIPLIER),
        }
    }
}

/// One co-scheduled tenant: a perception stream (camera rig × operating
/// mode) with an SLO and a priority class. In the fleet model a tenant
/// is one vehicle's perception service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tenant {
    /// Unique tenant name (the admission tie-break after priority).
    pub name: String,
    /// The tenant's workload and arrival process.
    pub scenario: Scenario,
    /// The tenant's SLO.
    pub slo: TenantSlo,
    /// The tenant's priority class.
    pub priority: Priority,
}

impl Tenant {
    /// Creates a tenant with the scenario-derived SLO.
    pub fn new(name: impl Into<String>, scenario: Scenario, priority: Priority) -> Tenant {
        let slo = TenantSlo::from_scenario(&scenario);
        Tenant {
            name: name.into(),
            scenario,
            slo,
            priority,
        }
    }

    /// Compute demand in MAC/s: workload MACs per frame × frame rate.
    /// This is the apportionment weight for region partitioning.
    pub fn demand(&self) -> f64 {
        let macs = self.scenario.workload().total_macs().as_f64();
        let interval = self
            .scenario
            .arrivals()
            .mean_interval()
            .map(|s| s.as_secs())
            .unwrap_or_else(|| self.scenario.rig.frame_interval_secs());
        macs / interval.max(1e-9)
    }

    /// Demand boosted by the priority class — the actual apportionment
    /// weight (see [`Priority::weight_boost`]).
    pub fn weighted_demand(&self) -> f64 {
        self.demand() * self.priority.weight_boost()
    }
}

/// Why admission control turned a tenant away, carrying the numbers the
/// decision was made on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The package has fewer chiplet columns than co-tenants: no region
    /// partition exists at all.
    NoCapacity {
        /// Co-tenants the partition would need to host.
        tenants: usize,
        /// Columns the package mesh has.
        columns: u32,
    },
    /// The analytic feasibility screen failed: some trial tenant's
    /// matcher-predicted steady interval already misses its mean target,
    /// so the DES never runs.
    AnalyticInfeasible {
        /// The tenant whose screen failed (the candidate, or an
        /// incumbent whose region the candidate would shrink).
        tenant: String,
        /// Matcher-predicted steady interval on the trial region.
        predicted: Seconds,
        /// That tenant's mean target.
        target: Seconds,
    },
    /// DES verification measured a mean-SLO violation in the trial
    /// colocation.
    MeanSloViolated {
        /// The violated tenant (candidate or incumbent).
        tenant: String,
        /// DES-measured steady interval.
        measured: Seconds,
        /// That tenant's mean target.
        target: Seconds,
    },
    /// DES verification measured a tail-SLO violation in the trial
    /// colocation.
    TailSloViolated {
        /// The violated tenant (candidate or incumbent).
        tenant: String,
        /// DES-measured p99 frame latency.
        p99: Seconds,
        /// That tenant's p99 bound.
        bound: Seconds,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::NoCapacity { tenants, columns } => {
                write!(f, "no capacity: {tenants} tenants > {columns} columns")
            }
            RejectReason::AnalyticInfeasible {
                tenant,
                predicted,
                target,
            } => write!(
                f,
                "analytic screen: {tenant} predicted {predicted} > target {target}"
            ),
            RejectReason::MeanSloViolated {
                tenant,
                measured,
                target,
            } => write!(
                f,
                "mean SLO: {tenant} measured {measured} > target {target}"
            ),
            RejectReason::TailSloViolated { tenant, p99, bound } => {
                write!(f, "tail SLO: {tenant} p99 {p99} > bound {bound}")
            }
        }
    }
}

/// Sorts tenants into canonical admission order: priority class first
/// (safety before standard before best-effort), then name — so the
/// outcome is invariant under permutation of the input list.
pub fn canonical_order(tenants: &mut [Tenant]) {
    tenants.sort_by(|a, b| {
        a.priority
            .cmp(&b.priority)
            .then_with(|| a.name.cmp(&b.name))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_scenario::{CameraRig, OperatingMode};

    fn tenant(name: &str, priority: Priority) -> Tenant {
        Tenant::new(
            name,
            Scenario::new(name, CameraRig::octa_ring(), OperatingMode::HighwayCruise),
            priority,
        )
    }

    #[test]
    fn priority_orders_safety_first() {
        assert!(Priority::Safety < Priority::Standard);
        assert!(Priority::Standard < Priority::BestEffort);
        assert!(Priority::Safety.weight_boost() > Priority::BestEffort.weight_boost());
    }

    #[test]
    fn canonical_order_is_permutation_invariant() {
        let a = tenant("alpha", Priority::BestEffort);
        let b = tenant("beta", Priority::Safety);
        let c = tenant("gamma", Priority::Safety);
        let mut x = vec![a.clone(), b.clone(), c.clone()];
        let mut y = vec![c, a, b];
        canonical_order(&mut x);
        canonical_order(&mut y);
        assert_eq!(x, y);
        let names: Vec<&str> = x.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["beta", "gamma", "alpha"]);
    }

    #[test]
    fn slo_derives_from_scenario() {
        let t = tenant("t", Priority::Standard);
        assert_eq!(t.slo.latency_target, t.scenario.latency_target());
        assert!(
            (t.slo.p99_bound.as_secs()
                - t.slo.latency_target.as_secs() * TenantSlo::TAIL_MULTIPLIER)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn demand_scales_with_workload_and_rate() {
        let octa = tenant("octa", Priority::Standard);
        let hexa = Tenant::new(
            "hexa",
            Scenario::new(
                "hexa",
                CameraRig::hexa_highway(),
                OperatingMode::HighwayCruise,
            ),
            Priority::Standard,
        );
        assert!(octa.demand() > hexa.demand());
        assert!(
            (octa.weighted_demand() - octa.demand() * 2.0).abs() < 1e-9,
            "standard boost is 2x"
        );
    }

    #[test]
    fn reject_reasons_render() {
        let r = RejectReason::TailSloViolated {
            tenant: "t".into(),
            p99: Seconds::from_millis(400.0),
            bound: Seconds::from_millis(100.0),
        };
        let s = format!("{r}");
        assert!(s.contains("tail SLO") && s.contains('t'));
        let json = serde_json::to_string(&r).unwrap();
        let back: RejectReason = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
