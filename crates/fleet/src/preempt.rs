//! Priority preemption: a high-priority tenant arrives mid-drive and
//! the package re-partitions under it.
//!
//! A preemption event is simulated as two DES epochs around the arrival
//! instant. Epoch 1 runs the incumbent colocation undisturbed. At the
//! arrival instant the co-scheduler re-partitions with the arriving
//! tenant included — its boosted demand weight shrinks best-effort
//! regions first — and each tenant is charged the
//! [`npu_sched::rematch_cost`] of migrating its region from the old
//! mapping to the new one: until `t_arrive + transition latency` the
//! tenant's region is reprogramming and arriving frames are dropped.
//! Epoch 2 then runs the new colocation, arriving tenant included, on
//! the same calendar. Frame accounting balances exactly: per tenant,
//! `offered = served(epoch 1) + served(epoch 2) + dropped(epoch 2)`.

use serde::{Deserialize, Serialize};

use npu_maestro::ReconfigModel;
use npu_pipesim::{simulate_tenants, PhaseReport, SimConfig, TenantStream};
use npu_sched::{rematch_cost, Schedule};
use npu_tensor::{Dtype, Seconds};

use crate::colocation::{CoScheduler, Colocation};
use crate::tenant::{canonical_order, Priority, RejectReason, Tenant};

/// One tenant's trajectory across a preemption event.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPhases {
    /// The tenant's name.
    pub name: String,
    /// Its priority class.
    pub priority: Priority,
    /// Columns held before the event (0 for the arriving tenant).
    pub columns_before: u32,
    /// Columns held after the re-partition.
    pub columns_after: u32,
    /// Epoch-1 report (`None` for the arriving tenant, which does not
    /// exist before the event).
    pub before: Option<PhaseReport>,
    /// Chiplets reprogrammed when migrating to the new partition.
    pub reprogrammed: usize,
    /// The migration's spin-up latency; the tenant's region drops
    /// arriving frames for this long after the event.
    pub transition: Seconds,
    /// Epoch-2 report, on the re-partitioned region.
    pub after: PhaseReport,
}

impl TenantPhases {
    /// Frames offered across both epochs.
    pub fn offered(&self) -> usize {
        self.before.as_ref().map_or(0, |r| r.offered) + self.after.offered
    }

    /// Frames served across both epochs.
    pub fn served(&self) -> usize {
        self.before.as_ref().map_or(0, |r| r.served()) + self.after.served()
    }

    /// Frames dropped (all in the epoch-2 spin-up window; epoch 1
    /// starts on a ready region).
    pub fn dropped(&self) -> usize {
        self.before.as_ref().map_or(0, |r| r.dropped) + self.after.dropped
    }

    /// p99 frame latency before the event (`None` for the arriver).
    pub fn p99_before(&self) -> Option<Seconds> {
        self.before.as_ref().map(|r| r.report.tails.p99)
    }

    /// p99 frame latency after the event.
    pub fn p99_after(&self) -> Seconds {
        self.after.report.tails.p99
    }
}

/// The simulated before/after of a priority preemption event.
#[derive(Debug, Clone, PartialEq)]
pub struct PreemptionReport {
    /// The arrival instant (seconds on the shared calendar).
    pub at: Seconds,
    /// The arriving tenant's name.
    pub arriving: String,
    /// Every tenant's trajectory, in the canonical order of the
    /// post-event colocation.
    pub tenants: Vec<TenantPhases>,
    /// The post-event colocation.
    pub colocation: Colocation,
}

impl PreemptionReport {
    /// A tenant's trajectory by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantPhases> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Whether every tenant balances `offered == served + dropped`
    /// across the event.
    pub fn balanced(&self) -> bool {
        self.tenants
            .iter()
            .all(|t| t.offered() == t.served() + t.dropped())
    }
}

/// Serializable summary of one tenant's preemption trajectory (for the
/// `repro fleet` artifact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantPhasesSummary {
    /// Tenant name.
    pub name: String,
    /// Priority label.
    pub priority: String,
    /// Columns before → after.
    pub columns_before: u32,
    /// Columns after the re-partition.
    pub columns_after: u32,
    /// Chiplets reprogrammed at the event.
    pub reprogrammed: usize,
    /// Migration spin-up latency (ms).
    pub transition_ms: f64,
    /// p99 before the event (ms; absent for the arriver).
    pub p99_before_ms: Option<f64>,
    /// p99 after the event (ms).
    pub p99_after_ms: f64,
    /// p99 bound from the tenant's SLO (ms).
    pub p99_bound_ms: f64,
    /// Whether the tail SLO holds after the event.
    pub slo_holds: bool,
    /// Frames offered across both epochs.
    pub offered: usize,
    /// Frames served across both epochs.
    pub served: usize,
    /// Frames dropped in the spin-up window.
    pub dropped: usize,
}

impl TenantPhasesSummary {
    /// Summarizes one trajectory against its tenant's SLO.
    pub fn new(phases: &TenantPhases, p99_bound: Seconds) -> TenantPhasesSummary {
        TenantPhasesSummary {
            name: phases.name.clone(),
            priority: phases.priority.label().to_string(),
            columns_before: phases.columns_before,
            columns_after: phases.columns_after,
            reprogrammed: phases.reprogrammed,
            transition_ms: phases.transition.as_millis(),
            p99_before_ms: phases.p99_before().map(|s| s.as_millis()),
            p99_after_ms: phases.p99_after().as_millis(),
            p99_bound_ms: p99_bound.as_millis(),
            slo_holds: phases.p99_after().as_secs() <= p99_bound.as_secs(),
            offered: phases.offered(),
            served: phases.served(),
            dropped: phases.dropped(),
        }
    }
}

/// Simulates a preemption event: `incumbents` run undisturbed until
/// `at`, where `arriving` joins, the mesh re-partitions, and every
/// tenant pays its region-migration latency before serving again.
///
/// Each incumbent offers `2 × frames_per_epoch` frames of its arrival
/// process, split at `at` between the epochs; the arriver offers
/// `frames_per_epoch` frames starting at `at`. Fails with the compile
/// error if the post-event partition does not exist (more tenants than
/// columns). SLO checks are **not** enforced here — preemption
/// deliberately degrades best-effort tenants, and the report carries
/// the per-tenant p99s for the caller to judge.
pub fn preemption_event(
    sched: &mut CoScheduler<'_>,
    incumbents: &[Tenant],
    arriving: &Tenant,
    at: f64,
    frames_per_epoch: usize,
    reconfig: &ReconfigModel,
) -> Result<PreemptionReport, RejectReason> {
    assert!(
        at.is_finite() && at > 0.0,
        "preemption instant must be positive"
    );
    let mut before_tenants = incumbents.to_vec();
    canonical_order(&mut before_tenants);
    let colo1 = sched.compile(&before_tenants)?;

    // Each incumbent's full arrival timeline, split at the event.
    let all_times: Vec<Vec<f64>> = before_tenants
        .iter()
        .map(|t| t.scenario.arrivals().times(2 * frames_per_epoch))
        .collect();
    let splits: Vec<usize> = all_times
        .iter()
        .map(|times| times.partition_point(|&t| t < at))
        .collect();

    let epoch1_streams: Vec<TenantStream<'_>> = colo1
        .placements
        .iter()
        .zip(all_times.iter().zip(&splits))
        .map(|(p, (times, &split))| TenantStream {
            schedule: &p.schedule,
            times: times[..split].to_vec(),
            ready_at: 0.0,
            warmup: SimConfig::default_warmup(split),
        })
        .collect();
    let epoch1 = simulate_tenants(&epoch1_streams, sched.package(), sched.model(), Dtype::Fp16);

    // Re-partition with the arriver included.
    let mut after_tenants = before_tenants.clone();
    after_tenants.push(arriving.clone());
    canonical_order(&mut after_tenants);
    let colo2 = sched.compile(&after_tenants)?;

    // Per-tenant migration cost: diff its old mapping (empty for the
    // arriver) against its new one.
    let empty = Schedule { stages: Vec::new() };
    let transitions: Vec<(usize, Seconds)> = colo2
        .placements
        .iter()
        .map(|p| {
            let old = colo1
                .placement(&p.tenant.name)
                .map_or(&empty, |q| &q.schedule);
            let diff = rematch_cost(old, &p.schedule, reconfig, Dtype::Fp16);
            (diff.reprogrammed.len(), diff.latency)
        })
        .collect();

    let epoch2_times: Vec<Vec<f64>> = colo2
        .placements
        .iter()
        .map(|p| {
            if p.tenant.name == arriving.name {
                p.tenant
                    .scenario
                    .arrivals()
                    .times(frames_per_epoch)
                    .iter()
                    .map(|t| at + t)
                    .collect()
            } else {
                let i = before_tenants
                    .iter()
                    .position(|t| t.name == p.tenant.name)
                    .expect("incumbent present in both colocations");
                all_times[i][splits[i]..].to_vec()
            }
        })
        .collect();
    let epoch2_streams: Vec<TenantStream<'_>> = colo2
        .placements
        .iter()
        .zip(epoch2_times.iter().zip(&transitions))
        .map(|(p, (times, &(_, latency)))| TenantStream {
            schedule: &p.schedule,
            times: times.clone(),
            ready_at: at + latency.as_secs(),
            warmup: SimConfig::default_warmup(times.len()),
        })
        .collect();
    let epoch2 = simulate_tenants(&epoch2_streams, sched.package(), sched.model(), Dtype::Fp16);

    let tenants = colo2
        .placements
        .iter()
        .zip(epoch2.iter().zip(&transitions))
        .map(|(p, (after, &(reprogrammed, latency)))| {
            let before_idx = colo1
                .placements
                .iter()
                .position(|q| q.tenant.name == p.tenant.name);
            TenantPhases {
                name: p.tenant.name.clone(),
                priority: p.tenant.priority,
                columns_before: before_idx.map_or(0, |i| colo1.placements[i].region.width()),
                columns_after: p.region.width(),
                before: before_idx.map(|i| epoch1[i].clone()),
                reprogrammed,
                transition: latency,
                after: after.clone(),
            }
        })
        .collect();

    Ok(PreemptionReport {
        at: Seconds::new(at),
        arriving: arriving.name.clone(),
        tenants,
        colocation: colo2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_maestro::FittedMaestro;
    use npu_mcm::McmPackage;
    use npu_scenario::{CameraRig, OperatingMode, Scenario};

    fn tenant(name: &str, cameras: u64, priority: Priority) -> Tenant {
        Tenant::new(
            name,
            Scenario::new(
                name,
                CameraRig::new(cameras, (360, 640), 30.0),
                OperatingMode::HighwayCruise,
            ),
            priority,
        )
    }

    fn event() -> PreemptionReport {
        let model = FittedMaestro::new();
        let mut sched = CoScheduler::new(McmPackage::simba_6x6(), &model);
        let incumbents = vec![
            tenant("ride-hail", 6, Priority::Standard),
            tenant("mining", 6, Priority::BestEffort),
        ];
        let arriving = tenant("av-stack", 8, Priority::Safety);
        preemption_event(
            &mut sched,
            &incumbents,
            &arriving,
            1.0,
            40,
            &ReconfigModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn preemption_shrinks_best_effort_first() {
        let report = event();
        assert_eq!(report.tenants.len(), 3);
        let victim = report.tenant("mining").unwrap();
        let arriver = report.tenant("av-stack").unwrap();
        assert!(victim.columns_after < victim.columns_before);
        assert!(arriver.columns_before == 0 && arriver.columns_after > 0);
        // The arriver's new region outranks the victim's shrunken one.
        assert!(arriver.columns_after > victim.columns_after);
    }

    #[test]
    fn transitions_are_charged_and_frames_balance() {
        let report = event();
        assert!(report.balanced(), "offered == served + dropped per tenant");
        for t in &report.tenants {
            if t.columns_before != t.columns_after {
                assert!(
                    t.transition.as_secs() > 0.0,
                    "{} migrated without paying reconfiguration",
                    t.name
                );
                assert!(t.reprogrammed > 0);
            }
        }
        // Someone drops frames in the spin-up window.
        let dropped: usize = report.tenants.iter().map(TenantPhases::dropped).sum();
        assert!(dropped > 0, "spin-up windows drop arriving frames");
    }

    #[test]
    fn victim_p99_shifts_while_arriver_is_served() {
        let report = event();
        let victim = report.tenant("mining").unwrap();
        let before = victim.p99_before().unwrap();
        let after = victim.p99_after();
        assert!(
            (after.as_secs() - before.as_secs()).abs() > 1e-9,
            "preemption must change the victim's p99 ({before} vs {after})"
        );
        let arriver = report.tenant("av-stack").unwrap();
        assert!(arriver.served() > 0);
    }

    #[test]
    fn preemption_is_deterministic() {
        let a = event();
        let b = event();
        assert_eq!(a, b);
    }
}
