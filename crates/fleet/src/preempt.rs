//! Priority preemption: a high-priority tenant arrives mid-drive and
//! the package re-partitions under it.
//!
//! A preemption event is simulated as two DES epochs around the arrival
//! instant. Epoch 1 runs the incumbent colocation undisturbed. At the
//! arrival instant the co-scheduler re-partitions with the arriving
//! tenant included — its boosted demand weight shrinks best-effort
//! regions first — and each tenant is charged the
//! [`npu_sched::rematch_cost_against`] of migrating its region from the
//! old mapping to the new one, **make-before-break**: chiplets a tenant
//! keeps serve straight across the event, chiplets that were idle
//! package-wide prestage over the epoch-1 tail, and only chiplets
//! re-programmed in place (or handed over from a co-tenant) stall. A
//! tenant whose whole region quiesces (a full-barrier migration) also
//! flushes its epoch-1 in-flight frames at the event. Epoch 2 then runs
//! the new colocation, arriving tenant included, on the same calendar.
//! Frame accounting balances exactly: per tenant,
//! `offered = served + dropped + flushed` across both epochs.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use npu_maestro::ReconfigModel;
use npu_pipesim::{simulate_tenants, PhaseReport, Readiness, TenantStream};
use npu_sched::{occupied_chiplets, rematch_cost_against, RematchOutcome, Schedule};
use npu_tensor::{Dtype, Seconds};

use crate::colocation::{CoScheduler, Colocation};
use crate::tenant::{canonical_order, Priority, RejectReason, Tenant};

/// One tenant's trajectory across a preemption event.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPhases {
    /// The tenant's name.
    pub name: String,
    /// Its priority class.
    pub priority: Priority,
    /// Columns held before the event (0 for the arriving tenant).
    pub columns_before: u32,
    /// Columns held after the re-partition.
    pub columns_after: u32,
    /// Epoch-1 report (`None` for the arriving tenant, which does not
    /// exist before the event).
    pub before: Option<PhaseReport>,
    /// Chiplets reprogrammed when migrating to the new partition.
    pub reprogrammed: usize,
    /// Re-programmed chiplets that stall across the event (busy — the
    /// tenant's own or a co-tenant's — until the break). The remainder
    /// prestage on package-idle silicon over the epoch-1 tail.
    pub stalled: usize,
    /// The migration's spin-up latency under the old package-wide
    /// barrier model: the pessimistic reference the make-before-break
    /// handover is measured against.
    pub transition: Seconds,
    /// How long after the event the last stalled chiplet comes back
    /// online (`transition` for a full-barrier migration; zero when
    /// everything kept or prestaged).
    pub stall_window: Seconds,
    /// Epoch-2 report, on the re-partitioned region.
    pub after: PhaseReport,
}

impl TenantPhases {
    /// Frames offered across both epochs.
    pub fn offered(&self) -> usize {
        self.before.as_ref().map_or(0, |r| r.offered) + self.after.offered
    }

    /// Frames served across both epochs.
    pub fn served(&self) -> usize {
        self.before.as_ref().map_or(0, |r| r.served()) + self.after.served()
    }

    /// Frames dropped (all in the epoch-2 spin-up window; epoch 1
    /// starts on a ready region).
    pub fn dropped(&self) -> usize {
        self.before.as_ref().map_or(0, |r| r.dropped) + self.after.dropped
    }

    /// Frames flushed in flight at the event boundary (only a
    /// full-barrier migration quiesces the region under them).
    pub fn flushed(&self) -> usize {
        self.before.as_ref().map_or(0, |r| r.flushed) + self.after.flushed
    }

    /// p99 frame latency before the event (`None` for the arriver).
    pub fn p99_before(&self) -> Option<Seconds> {
        self.before.as_ref().map(|r| r.report.tails.p99)
    }

    /// p99 frame latency after the event.
    pub fn p99_after(&self) -> Seconds {
        self.after.report.tails.p99
    }
}

/// The simulated before/after of a priority preemption event.
#[derive(Debug, Clone, PartialEq)]
pub struct PreemptionReport {
    /// The arrival instant (seconds on the shared calendar).
    pub at: Seconds,
    /// The arriving tenant's name.
    pub arriving: String,
    /// Every tenant's trajectory, in the canonical order of the
    /// post-event colocation.
    pub tenants: Vec<TenantPhases>,
    /// The post-event colocation.
    pub colocation: Colocation,
}

impl PreemptionReport {
    /// A tenant's trajectory by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantPhases> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Whether every tenant balances
    /// `offered == served + dropped + flushed` across the event.
    pub fn balanced(&self) -> bool {
        self.tenants
            .iter()
            .all(|t| t.offered() == t.served() + t.dropped() + t.flushed())
    }
}

/// Serializable summary of one tenant's preemption trajectory (for the
/// `repro fleet` artifact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantPhasesSummary {
    /// Tenant name.
    pub name: String,
    /// Priority label.
    pub priority: String,
    /// Columns before → after.
    pub columns_before: u32,
    /// Columns after the re-partition.
    pub columns_after: u32,
    /// Chiplets reprogrammed at the event.
    pub reprogrammed: usize,
    /// Re-programmed chiplets that stall across the event (the rest
    /// prestage on package-idle silicon).
    pub stalled: usize,
    /// Migration spin-up latency under the barrier model (ms).
    pub transition_ms: f64,
    /// When the last stalled chiplet comes back online, relative to the
    /// event (ms).
    pub stall_window_ms: f64,
    /// p99 before the event (ms; absent for the arriver).
    pub p99_before_ms: Option<f64>,
    /// p99 after the event (ms).
    pub p99_after_ms: f64,
    /// p99 bound from the tenant's SLO (ms).
    pub p99_bound_ms: f64,
    /// Whether the tail SLO holds after the event.
    pub slo_holds: bool,
    /// Frames offered across both epochs.
    pub offered: usize,
    /// Frames served across both epochs.
    pub served: usize,
    /// Frames dropped in the spin-up window.
    pub dropped: usize,
    /// Frames flushed in flight at the event boundary.
    pub flushed: usize,
}

impl TenantPhasesSummary {
    /// Summarizes one trajectory against its tenant's SLO.
    pub fn new(phases: &TenantPhases, p99_bound: Seconds) -> TenantPhasesSummary {
        TenantPhasesSummary {
            name: phases.name.clone(),
            priority: phases.priority.label().to_string(),
            columns_before: phases.columns_before,
            columns_after: phases.columns_after,
            reprogrammed: phases.reprogrammed,
            stalled: phases.stalled,
            transition_ms: phases.transition.as_millis(),
            stall_window_ms: phases.stall_window.as_millis(),
            p99_before_ms: phases.p99_before().map(|s| s.as_millis()),
            p99_after_ms: phases.p99_after().as_millis(),
            p99_bound_ms: p99_bound.as_millis(),
            slo_holds: phases.p99_after().as_secs() <= p99_bound.as_secs(),
            offered: phases.offered(),
            served: phases.served(),
            dropped: phases.dropped(),
            flushed: phases.flushed(),
        }
    }
}

/// Simulates a preemption event: `incumbents` run undisturbed until
/// `at`, where `arriving` joins, the mesh re-partitions, and every
/// tenant pays its region-migration latency before serving again.
///
/// Each incumbent offers `2 × frames_per_epoch` frames of its arrival
/// process, split at `at` between the epochs; the arriver offers
/// `frames_per_epoch` frames starting at `at`. Fails with the compile
/// error if the post-event partition does not exist (more tenants than
/// columns). SLO checks are **not** enforced here — preemption
/// deliberately degrades best-effort tenants, and the report carries
/// the per-tenant p99s for the caller to judge.
pub fn preemption_event(
    sched: &mut CoScheduler<'_>,
    incumbents: &[Tenant],
    arriving: &Tenant,
    at: f64,
    frames_per_epoch: usize,
    reconfig: &ReconfigModel,
) -> Result<PreemptionReport, RejectReason> {
    assert!(
        at.is_finite() && at > 0.0,
        "preemption instant must be positive"
    );
    let mut before_tenants = incumbents.to_vec();
    canonical_order(&mut before_tenants);
    let colo1 = sched.compile(&before_tenants)?;

    // Each incumbent's full arrival timeline, split at the event.
    let all_times: Vec<Vec<f64>> = before_tenants
        .iter()
        .map(|t| t.scenario.arrivals().times(2 * frames_per_epoch))
        .collect();
    let splits: Vec<usize> = all_times
        .iter()
        .map(|times| times.partition_point(|&t| t < at))
        .collect();

    // Re-partition with the arriver included.
    let mut after_tenants = before_tenants.clone();
    after_tenants.push(arriving.clone());
    canonical_order(&mut after_tenants);
    let colo2 = sched.compile(&after_tenants)?;

    // Per-tenant migration cost: diff its old mapping (empty for the
    // arriver) against its new one, make-before-break. Every chiplet
    // busy anywhere in the outgoing colocation counts as occupied, so a
    // chiplet handed over between tenants stalls like one re-programmed
    // in place; only package-idle silicon prestages over the epoch-1
    // tail.
    let occupied: BTreeSet<_> = colo1
        .placements
        .iter()
        .flat_map(|p| occupied_chiplets(&p.schedule))
        .collect();
    let empty = Schedule { stages: Vec::new() };
    let transitions: Vec<RematchOutcome> = colo2
        .placements
        .iter()
        .map(|p| {
            let old = colo1
                .placement(&p.tenant.name)
                .map_or(&empty, |q| &q.schedule);
            rematch_cost_against(old, &p.schedule, &occupied, reconfig, Dtype::Fp16)
        })
        .collect();
    let diff_of = |name: &str| {
        colo2
            .placements
            .iter()
            .position(|q| q.tenant.name == name)
            .map(|i| &transitions[i])
            .expect("every tenant is placed in the post-event colocation")
    };

    // Epoch 1: the incumbents run undisturbed. A tenant whose migration
    // quiesces its whole region (full-barrier diff) flushes its
    // in-flight frames at the event; anyone else drains them across the
    // handover.
    let epoch1_streams: Vec<TenantStream<'_>> = colo1
        .placements
        .iter()
        .zip(all_times.iter().zip(&splits))
        .map(|(p, (times, &split))| TenantStream {
            schedule: &p.schedule,
            times: times[..split].to_vec(),
            readiness: Readiness::Barrier(0.0),
            warmup: None,
            cutoff: diff_of(&p.tenant.name).is_full_barrier().then_some(at),
        })
        .collect();
    let epoch1 = simulate_tenants(&epoch1_streams, sched.package(), sched.model(), Dtype::Fp16);

    let epoch2_times: Vec<Vec<f64>> = colo2
        .placements
        .iter()
        .map(|p| {
            if p.tenant.name == arriving.name {
                p.tenant
                    .scenario
                    .arrivals()
                    .times(frames_per_epoch)
                    .iter()
                    .map(|t| at + t)
                    .collect()
            } else {
                let i = before_tenants
                    .iter()
                    .position(|t| t.name == p.tenant.name)
                    .expect("incumbent present in both colocations");
                all_times[i][splits[i]..].to_vec()
            }
        })
        .collect();
    let epoch2_streams: Vec<TenantStream<'_>> = colo2
        .placements
        .iter()
        .zip(epoch2_times.iter().zip(&transitions))
        .map(|(p, (times, diff))| TenantStream {
            schedule: &p.schedule,
            times: times.clone(),
            readiness: Readiness::make_before_break(diff, at),
            warmup: None,
            cutoff: None,
        })
        .collect();
    let epoch2 = simulate_tenants(&epoch2_streams, sched.package(), sched.model(), Dtype::Fp16);

    let tenants = colo2
        .placements
        .iter()
        .zip(epoch2.iter().zip(&transitions))
        .map(|(p, (after, diff))| {
            let before_idx = colo1
                .placements
                .iter()
                .position(|q| q.tenant.name == p.tenant.name);
            TenantPhases {
                name: p.tenant.name.clone(),
                priority: p.tenant.priority,
                columns_before: before_idx.map_or(0, |i| colo1.placements[i].region.width()),
                columns_after: p.region.width(),
                before: before_idx.map(|i| epoch1[i].clone()),
                reprogrammed: diff.reprogrammed.len(),
                stalled: diff.stalled(),
                transition: diff.latency,
                stall_window: diff.stall_window(),
                after: after.clone(),
            }
        })
        .collect();

    Ok(PreemptionReport {
        at: Seconds::new(at),
        arriving: arriving.name.clone(),
        tenants,
        colocation: colo2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_maestro::FittedMaestro;
    use npu_mcm::McmPackage;
    use npu_scenario::{CameraRig, OperatingMode, Scenario};

    fn tenant(name: &str, cameras: u64, priority: Priority) -> Tenant {
        Tenant::new(
            name,
            Scenario::new(
                name,
                CameraRig::new(cameras, (360, 640), 30.0),
                OperatingMode::HighwayCruise,
            ),
            priority,
        )
    }

    fn event() -> PreemptionReport {
        let model = FittedMaestro::new();
        let mut sched = CoScheduler::new(McmPackage::simba_6x6(), &model);
        let incumbents = vec![
            tenant("ride-hail", 6, Priority::Standard),
            tenant("mining", 6, Priority::BestEffort),
        ];
        let arriving = tenant("av-stack", 8, Priority::Safety);
        preemption_event(
            &mut sched,
            &incumbents,
            &arriving,
            1.0,
            40,
            &ReconfigModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn preemption_shrinks_best_effort_first() {
        let report = event();
        assert_eq!(report.tenants.len(), 3);
        let victim = report.tenant("mining").unwrap();
        let arriver = report.tenant("av-stack").unwrap();
        assert!(victim.columns_after < victim.columns_before);
        assert!(arriver.columns_before == 0 && arriver.columns_after > 0);
        // The arriver's new region outranks the victim's shrunken one.
        assert!(arriver.columns_after > victim.columns_after);
    }

    #[test]
    fn transitions_are_charged_and_frames_balance() {
        let report = event();
        assert!(
            report.balanced(),
            "offered == served + dropped + flushed per tenant"
        );
        for t in &report.tenants {
            if t.columns_before != t.columns_after {
                assert!(
                    t.transition.as_secs() > 0.0,
                    "{} migrated without paying reconfiguration",
                    t.name
                );
                assert!(t.reprogrammed > 0);
            }
            assert!(t.stalled <= t.reprogrammed);
            assert!(t.stall_window <= t.transition);
            // This event repartitions a fully occupied package, so every
            // migration is a full-barrier handover: nothing prestages and
            // the stall window degenerates to the barrier latency.
            assert_eq!(t.stalled, t.reprogrammed, "{}", t.name);
            assert_eq!(
                t.stall_window.as_secs().to_bits(),
                t.transition.as_secs().to_bits(),
                "{}: full handover must reproduce the barrier window",
                t.name
            );
        }
        // Someone drops frames in the spin-up window.
        let dropped: usize = report.tenants.iter().map(TenantPhases::dropped).sum();
        assert!(dropped > 0, "spin-up windows drop arriving frames");
        // The incumbents' regions quiesce under them, flushing whatever
        // was in flight at the event; the arriver has no epoch-1 frames
        // to flush.
        for name in ["ride-hail", "mining"] {
            assert!(report.tenant(name).unwrap().flushed() > 0, "{name}");
        }
        assert_eq!(report.tenant("av-stack").unwrap().flushed(), 0);
    }

    #[test]
    fn victim_p99_shifts_while_arriver_is_served() {
        let report = event();
        let victim = report.tenant("mining").unwrap();
        let before = victim.p99_before().unwrap();
        let after = victim.p99_after();
        assert!(
            (after.as_secs() - before.as_secs()).abs() > 1e-9,
            "preemption must change the victim's p99 ({before} vs {after})"
        );
        let arriver = report.tenant("av-stack").unwrap();
        assert!(arriver.served() > 0);
    }

    #[test]
    fn preemption_is_deterministic() {
        let a = event();
        let b = event();
        assert_eq!(a, b);
    }
}
