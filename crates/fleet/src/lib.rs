//! Multi-tenant co-scheduling and fleet-scale package-mix DSE.
//!
//! The rest of the workspace answers "how fast does *one* perception
//! pipeline run on *one* package?". This crate asks the serving-side
//! questions on top of that stack:
//!
//! * **Co-scheduling** ([`colocation`]) — partition one package's
//!   chiplet mesh into per-tenant column bands (priority-weighted
//!   D'Hondt apportionment), match each [`Tenant`]'s workload onto its
//!   band with `npu-sched`'s throughput matcher, and verify all tenants
//!   together in a single shared-calendar DES run
//!   (`npu_pipesim::simulate_tenants`), one tenant-tagged report each.
//! * **Admission control** ([`CoScheduler::admit`]) — deterministic,
//!   two-staged (analytic screen, then DES verification of every
//!   tenant's mean and p99 SLO), with typed [`RejectReason`]s and an
//!   outcome invariant under permutation of the candidate list.
//! * **Priority preemption** ([`preempt`]) — a high-priority arrival
//!   re-partitions the mesh, shrinking best-effort regions first; every
//!   migrating tenant is charged `npu_sched::rematch_cost` transition
//!   latency and drops the frames that arrive during its spin-up.
//! * **Fleet DSE** ([`fleet`]) — pack a seeded fleet of hundreds of
//!   vehicles onto package instances by deterministic first-fit, sweep
//!   package geometries with a `npu_study::Study` (minimize fleet
//!   silicon subject to a worst-tenant tail constraint), and compare
//!   against a mixed-configuration pool.
//!
//! # Examples
//!
//! ```
//! use npu_fleet::{os256_package, CoScheduler, Priority, Tenant};
//! use npu_maestro::FittedMaestro;
//! use npu_scenario::{CameraRig, OperatingMode, Scenario};
//!
//! let model = FittedMaestro::new();
//! let mut sched = CoScheduler::new(os256_package(6, 6), &model).with_verify_frames(24);
//! // Two keyframe-rate quad-rig services sharing one 36-chiplet package.
//! let out = sched.admit(&[
//!     Tenant::new(
//!         "patrol",
//!         Scenario::new(
//!             "patrol",
//!             CameraRig::new(4, (288, 512), 8.0),
//!             OperatingMode::HighwayCruise,
//!         ),
//!         Priority::Standard,
//!     ),
//!     Tenant::new(
//!         "mapper",
//!         Scenario::new(
//!             "mapper",
//!             CameraRig::new(4, (288, 512), 8.0),
//!             OperatingMode::HighwayCruise,
//!         ),
//!         Priority::Standard,
//!     ),
//! ]);
//! // Both admit, splitting the mesh into two three-column bands, and
//! // both SLOs were verified in one shared-calendar DES run.
//! assert_eq!(out.admitted(), 2);
//! assert!(out.rejected.is_empty());
//! assert_eq!(out.colocation.placement("patrol").unwrap().region.width(), 3);
//! assert_eq!(out.colocation.placement("mapper").unwrap().region.width(), 3);
//! ```

pub mod colocation;
pub mod fleet;
pub mod preempt;
pub mod tenant;

pub use colocation::{
    apportion_columns, slo_violation, AdmissionOutcome, CoScheduler, Colocation, Region,
    TenantPlacement, VERIFY_FRAMES,
};
pub use fleet::{
    os256_package, pack_fleet, pack_fleet_mixed, FleetSpec, InstanceSummary, MixedPackOutcome,
    PackingOutcome, RejectedVehicle, TenantVerdict, VehicleProfile,
};
pub use preempt::{preemption_event, PreemptionReport, TenantPhases, TenantPhasesSummary};
pub use tenant::{canonical_order, Priority, RejectReason, Tenant, TenantSlo};
