// D005 negative: configuration arrives through a typed struct; the
// compile-time env! macro is not a runtime environment read.
pub struct Config {
    pub debug: bool,
}

pub fn manifest_dir() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}

pub fn debug_enabled(cfg: &Config) -> bool {
    cfg.debug
}
