// D002 positive: force-unwrapped partial_cmp comparators.
pub fn argmin(load: &[f64]) -> usize {
    load.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(i, _)| i)
        .unwrap()
}

pub fn sort_desc(xs: &mut [f64]) {
    xs.sort_by(|a, b| b.partial_cmp(a).unwrap());
}
