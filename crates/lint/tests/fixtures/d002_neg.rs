// D002 negative: total_cmp comparators and a PartialOrd impl that
// merely *defines* partial_cmp.
use std::cmp::Ordering;

pub struct Time(pub f64);

impl PartialEq for Time {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

pub fn argmin(load: &[f64]) -> Option<usize> {
    load.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

pub fn checked(a: f64, b: f64) -> Option<Ordering> {
    a.partial_cmp(&b) // propagating the Option is fine
}
