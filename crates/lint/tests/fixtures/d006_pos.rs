// D006 positive: cross-worker mutation captured inside a par_map
// closure — the reduction order races.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub fn racy_sum(xs: &[u64]) -> u64 {
    let total = AtomicU64::new(0);
    npu_par::par_map(xs, |&x| total.fetch_add(x, Ordering::Relaxed));
    total.load(Ordering::Relaxed)
}

pub fn racy_collect(xs: &[u64]) -> Vec<u64> {
    let out = Mutex::new(Vec::new());
    npu_par::par_map_indexed(xs, |_, &x| out.lock().map(|mut v| Mutex::new(v.push(x))));
    out.into_inner().unwrap()
}
