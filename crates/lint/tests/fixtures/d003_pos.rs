// D003 positive: wall-clock reads in simulation code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    (t0, wall)
}
