// D004 positive: ambient RNG state.
use rand::thread_rng;
use rand::Rng;

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rng.gen_range(0.0..1.0) + rand::random::<f64>()
}
