// D005 positive: hidden environment reads in library code.
pub fn debug_enabled() -> bool {
    std::env::var("MY_DEBUG").is_ok() || std::env::var_os("MY_TRACE").is_some()
}
