// D001 positive: a hash map declared in shipping code with no allow.
use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect() // iteration order leaks into the output
}
