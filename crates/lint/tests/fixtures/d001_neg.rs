// D001 negative: ordered containers, an import alone, and a justified
// allow are all clean.
use std::collections::BTreeMap;
use std::collections::HashMap as _; // imports are not declarations

pub struct Clean {
    // npu-lint: allow(D001) len-only aggregate; iteration order unobservable
    cache: std::collections::HashMap<u32, u32>,
    ordered: BTreeMap<u32, u32>,
}

pub fn histogram(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: scratch hash containers are fine here.
    use std::collections::HashSet;

    fn scratch() -> HashSet<u32> {
        HashSet::new()
    }
}
