// D006 negative: pure per-item closures; the reduction folds par_map's
// input-ordered result, and shared state *outside* the call is fine.
use std::sync::Mutex;

pub fn ordered_sum(xs: &[u64]) -> u64 {
    npu_par::par_map(xs, |&x| x * x).iter().sum()
}

pub fn state_outside(xs: &[u64]) -> Mutex<Vec<u64>> {
    let squares = npu_par::par_map(xs, |&x| x * x);
    Mutex::new(squares)
}
