// D004 negative: a seeded RNG threaded through the call path.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0.0..1.0)
}
