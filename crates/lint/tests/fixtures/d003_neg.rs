// D003 negative: simulated time threaded explicitly; the word `now` in
// prose or as a local is not a clock read.
pub struct Clock {
    now: f64,
}

impl Clock {
    pub fn advance(&mut self, dt: f64) -> f64 {
        self.now += dt;
        self.now
    }
}
