//! The meta-test: the workspace itself is lint-clean.
//!
//! This is the static half of the determinism contract. The dynamic
//! half (jobs-1/8 bit-identity, golden files) samples behaviour; this
//! test proves the *absence of the hazard classes* across every crate's
//! `src/` tree. Deleting any one allow justification — or adding a new
//! `HashMap`, wall-clock read, ambient RNG, env read, NaN-unwrapping
//! comparator or shared-state `par_map` closure — fails it.

use npu_lint::{lint_workspace, workspace_root};

#[test]
fn workspace_has_zero_findings() {
    let report = lint_workspace(&workspace_root()).expect("workspace walks");
    assert!(
        report.is_clean(),
        "the workspace must be lint-clean:\n{}",
        report.text()
    );
}

#[test]
fn workspace_scan_covers_every_crate() {
    let report = lint_workspace(&workspace_root()).expect("workspace walks");
    // Every workspace crate must contribute files; a walker regression
    // that silently skips a crate would let hazards back in.
    for krate in [
        "crates/bench/",
        "crates/core/",
        "crates/dnn/",
        "crates/experiments/",
        "crates/fleet/",
        "crates/integration/",
        "crates/lint/",
        "crates/maestro/",
        "crates/mcm/",
        "crates/noc/",
        "crates/par/",
        "crates/pipesim/",
        "crates/scenario/",
        "crates/sched/",
        "crates/study/",
        "crates/tensor/",
    ] {
        assert!(
            report.files.iter().any(|f| f.starts_with(krate)),
            "no files scanned under {krate}"
        );
    }
}

#[test]
fn every_allow_is_justified_and_load_bearing() {
    let report = lint_workspace(&workspace_root()).expect("workspace walks");
    // `lint_source` only records allows that are valid AND suppressed a
    // finding; combined with zero findings this means: no unjustified
    // allow, no stale allow, anywhere.
    for a in &report.allows {
        assert!(!a.reason.is_empty(), "unjustified allow: {a:?}");
    }
    // The audited inventory of intentional hash-container uses and env
    // reads (ISSUE 7 satellite). Growing this list is a deliberate act:
    // the new site must carry a written justification to show up here.
    let inventory: Vec<(&str, &str)> = report
        .allows
        .iter()
        .map(|a| (a.file.as_str(), a.rule.as_str()))
        .collect();
    assert_eq!(
        inventory,
        vec![
            ("crates/maestro/src/memo.rs", "D001"),
            ("crates/maestro/src/memo.rs", "D001"),
            ("crates/maestro/src/memo.rs", "D001"),
            ("crates/noc/src/traffic.rs", "D001"),
            ("crates/noc/src/traffic.rs", "D001"),
            ("crates/sched/src/dse.rs", "D005"),
        ],
        "allow inventory drifted: {:#?}",
        report.allows
    );
}
