//! Fixture-corpus tests for the rule engine: one positive and one
//! negative snippet per rule (D001–D006), span accuracy, and
//! allow-comment semantics.

use npu_lint::{lint_source, Finding};

fn findings(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_source(rel_path, src).0
}

fn rules_of(fs: &[Finding]) -> Vec<&'static str> {
    fs.iter().map(|f| f.rule).collect()
}

macro_rules! fixture {
    ($name:literal) => {
        include_str!(concat!("fixtures/", $name, ".rs"))
    };
}

#[test]
fn d001_hash_iteration_order() {
    let pos = findings("crates/x/src/lib.rs", fixture!("d001_pos"));
    assert!(
        rules_of(&pos).contains(&"D001"),
        "positive fixture must fire: {pos:?}"
    );
    let neg = findings("crates/x/src/lib.rs", fixture!("d001_neg"));
    assert!(neg.is_empty(), "negative fixture must be clean: {neg:?}");
}

#[test]
fn d002_nan_partial_ord() {
    let pos = findings("crates/x/src/lib.rs", fixture!("d002_pos"));
    assert_eq!(rules_of(&pos), vec!["D002", "D002"], "{pos:?}");
    let neg = findings("crates/x/src/lib.rs", fixture!("d002_neg"));
    assert!(neg.is_empty(), "negative fixture must be clean: {neg:?}");
}

#[test]
fn d003_wall_clock() {
    let pos = findings("crates/x/src/lib.rs", fixture!("d003_pos"));
    assert_eq!(rules_of(&pos), vec!["D003", "D003"], "{pos:?}");
    let neg = findings("crates/x/src/lib.rs", fixture!("d003_neg"));
    assert!(neg.is_empty(), "negative fixture must be clean: {neg:?}");
    // The bench/CLI crate is exempt.
    let bench = findings("crates/bench/src/main.rs", fixture!("d003_pos"));
    assert!(bench.is_empty(), "bench crate may read clocks: {bench:?}");
}

#[test]
fn d004_ambient_rng() {
    let pos = findings("crates/x/src/lib.rs", fixture!("d004_pos"));
    assert_eq!(rules_of(&pos), vec!["D004", "D004"], "{pos:?}");
    let neg = findings("crates/x/src/lib.rs", fixture!("d004_neg"));
    assert!(neg.is_empty(), "negative fixture must be clean: {neg:?}");
}

#[test]
fn d005_env_access() {
    let pos = findings("crates/x/src/lib.rs", fixture!("d005_pos"));
    assert_eq!(rules_of(&pos), vec!["D005", "D005"], "{pos:?}");
    let neg = findings("crates/x/src/lib.rs", fixture!("d005_neg"));
    assert!(neg.is_empty(), "negative fixture must be clean: {neg:?}");
    let bench = findings("crates/bench/src/main.rs", fixture!("d005_pos"));
    assert!(bench.is_empty(), "bench crate may read the env: {bench:?}");
}

#[test]
fn d006_unordered_reduction() {
    let pos = findings("crates/x/src/lib.rs", fixture!("d006_pos"));
    assert_eq!(rules_of(&pos), vec!["D006", "D006"], "{pos:?}");
    let neg = findings("crates/x/src/lib.rs", fixture!("d006_neg"));
    assert!(neg.is_empty(), "negative fixture must be clean: {neg:?}");
}

#[test]
fn spans_point_at_the_offending_token() {
    // d002_pos.rs line 5: `.min_by(|a, b| a.1.partial_cmp(b.1)...`;
    // the span anchors on `partial_cmp` itself.
    let pos = findings("crates/x/src/lib.rs", fixture!("d002_pos"));
    let first = &pos[0];
    assert_eq!(first.line, 5, "{first:?}");
    let line = fixture!("d002_pos").lines().nth(4).unwrap();
    let at = line
        .char_indices()
        .map(|(i, _)| i)
        .nth(first.col as usize - 1);
    assert_eq!(at, line.find("partial_cmp"), "{first:?}\nline: {line}");

    // d005_pos.rs line 3 has two findings with distinct columns.
    let pos = findings("crates/x/src/lib.rs", fixture!("d005_pos"));
    assert_eq!(pos.len(), 2);
    assert_eq!(pos[0].line, pos[1].line);
    assert!(pos[0].col < pos[1].col, "{pos:?}");
}

#[test]
fn every_finding_carries_name_and_hint() {
    for fix in [
        fixture!("d001_pos"),
        fixture!("d002_pos"),
        fixture!("d003_pos"),
        fixture!("d004_pos"),
        fixture!("d005_pos"),
        fixture!("d006_pos"),
    ] {
        for f in findings("crates/x/src/lib.rs", fix) {
            assert!(!f.name.is_empty());
            assert!(!f.hint.is_empty());
            assert!(!f.message.is_empty());
        }
    }
}

#[test]
fn allow_on_same_line_and_line_above_both_suppress() {
    let above = "// npu-lint: allow(D004) seeded upstream, mirrors the paper harness\nfn f() { thread_rng(); }\n";
    let (f, a) = lint_source("crates/x/src/lib.rs", above);
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(a.len(), 1);

    let trailing = "fn f() { thread_rng(); } // npu-lint: allow(D004) seeded upstream\n";
    let (f, a) = lint_source("crates/x/src/lib.rs", trailing);
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(a[0].reason, "seeded upstream");
}

#[test]
fn allow_does_not_reach_past_the_next_line() {
    let src = "// npu-lint: allow(D004) too far away\n\nfn f() { thread_rng(); }\n";
    let (f, _) = lint_source("crates/x/src/lib.rs", src);
    let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
    assert!(rules.contains(&"D004"), "{f:?}");
    assert!(rules.contains(&"X002"), "stale at distance 2: {f:?}");
}

#[test]
fn allow_for_the_wrong_rule_does_not_suppress() {
    let src = "// npu-lint: allow(D001) wrong code\nfn f() { thread_rng(); }\n";
    let (f, _) = lint_source("crates/x/src/lib.rs", src);
    let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
    assert!(rules.contains(&"D004"), "{f:?}");
    assert!(rules.contains(&"X002"), "{f:?}");
}

#[test]
fn unknown_rule_code_in_allow_is_invalid() {
    let src = "// npu-lint: allow(D999) no such rule\nfn f() {}\n";
    let (f, _) = lint_source("crates/x/src/lib.rs", src);
    assert_eq!(rules_of(&f), vec!["X001"], "{f:?}");
}

#[test]
fn rule_table_is_complete_and_unique() {
    let codes: Vec<&str> = npu_lint::RULES.iter().map(|r| r.code).collect();
    assert_eq!(
        codes,
        vec!["D001", "D002", "D003", "D004", "D005", "D006", "X001", "X002"]
    );
    for r in npu_lint::RULES {
        assert!(!r.summary.is_empty());
        assert!(!r.hint.is_empty());
    }
}
