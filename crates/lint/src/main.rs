//! CI gate: lint the workspace, print the report, exit non-zero on any
//! finding.
//!
//! ```text
//! cargo run -p npu-lint            # text report
//! cargo run -p npu-lint -- --json  # machine-readable report
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let report = match npu_lint::lint_workspace(&npu_lint::workspace_root()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("npu-lint: cannot walk the workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", report.json());
    } else {
        print!("{}", report.text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
