//! The determinism & panic-safety rules (D001–D006).
//!
//! Each rule is a pure function over the token stream of one file,
//! yielding [`Finding`]s with the rule code, an accurate span and a
//! fix-hint. Findings inside `#[cfg(test)]` items and `use` statements
//! are filtered by the caller ([`crate::lint_source`]); per-crate
//! exemptions (the `crates/bench` CLI may read clocks and env) are
//! applied there too, so the rule bodies stay context-free.

use crate::lexer::{Token, TokenKind};

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code (`D001`...`D006`, or `X001`/`X002` for allow hygiene).
    pub rule: &'static str,
    /// Short rule name (kebab-case).
    pub name: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What exactly was matched.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// Static description of one rule, for reports and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    pub code: &'static str,
    pub name: &'static str,
    pub summary: &'static str,
    pub hint: &'static str,
}

/// The rule table, in code order.
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        code: "D001",
        name: "hash-iteration-order",
        summary: "HashMap/HashSet in result-affecting code: iteration order is \
                  arbitrary, so any fold over it can change the output run-to-run",
        hint: "use BTreeMap/BTreeSet, or justify order-insensitivity with \
               `// npu-lint: allow(D001) <reason>`",
    },
    RuleInfo {
        code: "D002",
        name: "nan-partial-ord",
        summary: "partial_cmp(..).unwrap()/expect(..) comparator: a single NaN \
                  key panics mid-sweep (or silently reorders with unwrap_or)",
        hint: "use f64::total_cmp or the npu_core::float total_* helpers",
    },
    RuleInfo {
        code: "D003",
        name: "wall-clock",
        summary: "Instant::now/SystemTime::now outside crates/bench: wall-clock \
                  reads make results timing-dependent",
        hint: "thread simulated time through explicitly; only the bench/CLI \
               crate may read real clocks",
    },
    RuleInfo {
        code: "D004",
        name: "ambient-rng",
        summary: "thread_rng/rand::random: ambient RNG state breaks run-to-run \
                  and serial-vs-parallel bit-identity",
        hint: "thread a seeded StdRng (rand::SeedableRng) through the call path",
    },
    RuleInfo {
        code: "D005",
        name: "env-access",
        summary: "std::env::var outside CLI/bless entrypoints: hidden \
                  environment reads make results machine-dependent",
        hint: "plumb configuration through typed config structs; only the \
               bench/CLI crate may read the environment (or justify with an \
               allow comment)",
    },
    RuleInfo {
        code: "D006",
        name: "unordered-reduction",
        summary: "Mutex/atomic mutation captured inside a par_map closure: \
                  cross-worker mutation races the reduction order",
        hint: "return per-item values and reduce over par_map's input-ordered \
               result instead",
    },
    RuleInfo {
        code: "X001",
        name: "unjustified-allow",
        summary: "an npu-lint allow comment without a written justification \
                  (or with an unknown rule code)",
        hint: "write the reason after the closing parenthesis: \
               `// npu-lint: allow(D001) <why this is order-insensitive>`",
    },
    RuleInfo {
        code: "X002",
        name: "stale-allow",
        summary: "an npu-lint allow comment that suppresses no finding",
        hint: "delete the comment (or move it onto the offending line or the \
               line directly above it)",
    },
];

/// Looks up a rule by code.
pub fn rule_info(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

fn finding(rule: &'static str, file: &str, tok: &Token, message: String) -> Finding {
    let info = rule_info(rule).expect("rule codes in the table");
    Finding {
        rule,
        name: info.name,
        file: file.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        hint: info.hint,
    }
}

/// Index of the `)` matching the `(` at `open` (which must be a `(`).
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// D001: any non-`use` mention of `HashMap`/`HashSet`.
///
/// Token-level analysis cannot see types, so the rule is deliberately
/// conservative: *declaring* a hash container is the hazard (something
/// will eventually iterate it), and order-insensitive uses carry an
/// allow justification at the declaration.
pub fn d001(tokens: &[Token], file: &str, skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(finding(
                "D001",
                file,
                t,
                format!("`{}` declared in result-affecting code", t.text),
            ));
        }
    }
    out
}

/// D002: `partial_cmp(..)` whose result is force-unwrapped (or
/// defaulted) — `unwrap`, `expect`, `unwrap_or`, `unwrap_or_else`.
pub fn d002(tokens: &[Token], file: &str, skip: &[bool]) -> Vec<Finding> {
    const SINKS: [&str; 4] = ["unwrap", "expect", "unwrap_or", "unwrap_or_else"];
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || !t.is_ident("partial_cmp") {
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|n| n.is_punct('(')).map(|_| i + 1) else {
            continue; // `fn partial_cmp` definitions reach here via `(` too;
                      // they are excluded by the `->` that follows the args.
        };
        let Some(close) = matching_paren(tokens, open) else {
            continue;
        };
        let dot = tokens.get(close + 1).is_some_and(|n| n.is_punct('.'));
        let sink = tokens
            .get(close + 2)
            .is_some_and(|n| SINKS.iter().any(|s| n.is_ident(s)));
        if dot && sink {
            out.push(finding(
                "D002",
                file,
                t,
                format!(
                    "`partial_cmp(..).{}(..)` comparator",
                    tokens[close + 2].text
                ),
            ));
        }
    }
    out
}

/// D003: `Instant::now` / `SystemTime::now`.
pub fn d003(tokens: &[Token], file: &str, skip: &[bool]) -> Vec<Finding> {
    path_call(
        tokens,
        file,
        skip,
        "D003",
        &["Instant", "SystemTime"],
        "now",
    )
}

/// D004: `thread_rng` anywhere, or `rand::random`.
pub fn d004(tokens: &[Token], file: &str, skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] {
            continue;
        }
        if t.is_ident("thread_rng") {
            out.push(finding("D004", file, t, "`thread_rng` call".to_string()));
        }
    }
    out.extend(path_call(tokens, file, skip, "D004", &["rand"], "random"));
    out
}

/// D005: `env::var` / `env::var_os` / `env::vars`.
pub fn d005(tokens: &[Token], file: &str, skip: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for tail in ["var", "var_os", "vars"] {
        out.extend(path_call(tokens, file, skip, "D005", &["env"], tail));
    }
    out.sort_by_key(|f| (f.line, f.col));
    out
}

/// Matches `<head> :: <tail>` for any head in `heads`, e.g.
/// `Instant::now`. `::` lexes as two `:` puncts.
fn path_call(
    tokens: &[Token],
    file: &str,
    skip: &[bool],
    rule: &'static str,
    heads: &[&str],
    tail: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if !heads.iter().any(|h| t.is_ident(h)) {
            continue;
        }
        let is_path = tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|c| c.is_ident(tail));
        if is_path {
            out.push(finding(
                rule,
                file,
                t,
                format!("`{}::{}` call", t.text, tail),
            ));
        }
    }
    out
}

/// D006: shared-state primitives (`Mutex`, `RwLock`, atomics,
/// `fetch_*`, `compare_exchange`) lexically inside the argument list of
/// a `par_map`/`par_map_indexed`/`par_map_threshold` call.
pub fn d006(tokens: &[Token], file: &str, skip: &[bool]) -> Vec<Finding> {
    const EXECUTORS: [&str; 3] = ["par_map", "par_map_indexed", "par_map_threshold"];
    const SHARED: [&str; 12] = [
        "Mutex",
        "RwLock",
        "AtomicBool",
        "AtomicUsize",
        "AtomicU32",
        "AtomicU64",
        "AtomicI32",
        "AtomicI64",
        "fetch_add",
        "fetch_sub",
        "fetch_or",
        "compare_exchange",
    ];
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if skip[i] || !EXECUTORS.iter().any(|e| t.is_ident(e)) {
            continue;
        }
        // Call sites only: `par_map(` — generic fn *definitions*
        // continue with `<` or `(args: T)` + `->` and never contain the
        // executor name followed directly by an argument list of user
        // code, so requiring the immediate `(` is enough in practice.
        let Some(open) = tokens.get(i + 1).filter(|n| n.is_punct('(')).map(|_| i + 1) else {
            continue;
        };
        let Some(close) = matching_paren(tokens, open) else {
            continue;
        };
        for inner in &tokens[open + 1..close] {
            if SHARED.iter().any(|s| inner.is_ident(s)) {
                out.push(finding(
                    "D006",
                    file,
                    inner,
                    format!("`{}` captured inside a `{}` call", inner.text, t.text),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn no_skip(tokens: &[Token]) -> Vec<bool> {
        vec![false; tokens.len()]
    }

    #[test]
    fn d002_ignores_partial_ord_impls() {
        let src = "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { Some(self.cmp(o)) } }";
        let lexed = lex(src);
        assert!(d002(&lexed.tokens, "x.rs", &no_skip(&lexed.tokens)).is_empty());
    }

    #[test]
    fn d002_catches_nested_parens_before_the_sink() {
        let src = "v.sort_by(|a, b| key(b).partial_cmp(&key(a)).expect(msg()));";
        let lexed = lex(src);
        let f = d002(&lexed.tokens, "x.rs", &no_skip(&lexed.tokens));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("expect"));
    }

    #[test]
    fn d006_only_fires_inside_executor_calls() {
        let src = "let m = Mutex::new(0); par_map(&xs, |x| m.lock());";
        let lexed = lex(src);
        let f = d006(&lexed.tokens, "x.rs", &no_skip(&lexed.tokens));
        // The declaration is outside the call; only a `Mutex` *inside*
        // the argument list fires.
        assert!(f.is_empty());
        let src = "par_map(&xs, |x| COUNTER.fetch_add(1, Ordering::Relaxed));";
        let lexed = lex(src);
        let f = d006(&lexed.tokens, "x.rs", &no_skip(&lexed.tokens));
        assert_eq!(f.len(), 1);
    }
}
