//! `npu-lint` — workspace determinism & panic-safety static analysis.
//!
//! The workspace's core contract (serial==parallel bit-identity,
//! golden-pinned artifacts, mergeable sketches) is enforced dynamically
//! by the test suite — but a dynamic test only sees a hazard when it
//! fires. This crate makes the invariants *machine-checked at the
//! source level*: a dependency-free token lexer ([`lexer`]) feeds a
//! rule engine ([`rules`]) that walks every workspace crate's `src/`
//! tree and rejects the constructs that historically break determinism
//! or panic on NaN:
//!
//! | Code | Name | Rejects |
//! |---|---|---|
//! | D001 | hash-iteration-order | `HashMap`/`HashSet` in result-affecting code |
//! | D002 | nan-partial-ord | `partial_cmp(..).unwrap()/expect(..)` comparators |
//! | D003 | wall-clock | `Instant::now`/`SystemTime::now` outside `crates/bench` |
//! | D004 | ambient-rng | `thread_rng`/`rand::random` |
//! | D005 | env-access | `std::env::var` outside CLI/bless entrypoints |
//! | D006 | unordered-reduction | shared-state mutation inside `par_map` closures |
//!
//! Intentional exceptions carry an inline justification:
//!
//! ```text
//! // npu-lint: allow(D001) max/len aggregates only; iteration order unobservable
//! links: HashMap<(NodeId, NodeId), Bytes>,
//! ```
//!
//! The directive suppresses matching findings on its own line or the
//! line directly below. Allow hygiene is itself linted: an allow with
//! no written reason is **X001 unjustified-allow**, an allow that
//! suppresses nothing is **X002 stale-allow** — so stale or lazy
//! suppressions fail CI exactly like real findings.
//!
//! Scope: `crates/*/src/**/*.rs`. Test code (`#[cfg(test)]` items and
//! `tests/` trees), benches and examples are exempt by construction —
//! they may legitimately read clocks or build throwaway hash maps; the
//! determinism contract covers what ships.
//!
//! Three frontends share this engine: the `npu-lint` binary (CI gate),
//! the `repro lint` artifact (golden-pinned report), and the
//! workspace-is-clean meta-test in `tests/workspace_clean.rs`.

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{lex, Token};
pub use rules::{rule_info, Finding, RuleInfo, RULES};

/// One accepted (justified and load-bearing) allow directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowRecord {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule code being allowed.
    pub rule: String,
    /// The written justification.
    pub reason: String,
}

/// The result of linting a file set.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Report {
    /// Files scanned (workspace-relative, sorted).
    pub files: Vec<String>,
    /// Surviving findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Valid allow directives that suppressed at least one finding.
    pub allows: Vec<AllowRecord>,
}

impl Report {
    /// True when the file set is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering.
    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "npu-lint: {} files scanned, {} findings, {} justified allows\n",
            self.files.len(),
            self.findings.len(),
            self.allows.len(),
        ));
        if !self.findings.is_empty() {
            out.push('\n');
            for f in &self.findings {
                out.push_str(&format!(
                    "{}:{}:{} {} [{}] {}\n    fix: {}\n",
                    f.file, f.line, f.col, f.rule, f.name, f.message, f.hint
                ));
            }
        }
        if !self.allows.is_empty() {
            out.push('\n');
            for a in &self.allows {
                out.push_str(&format!(
                    "allow {}:{} {} — {}\n",
                    a.file, a.line, a.rule, a.reason
                ));
            }
        }
        out
    }

    /// Machine-readable rendering (hand-rolled: the linter is
    /// dependency-free by design).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files.len()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            out.push_str(&format!(
                "{sep}    {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"col\": {}, \"message\": \"{}\", \"hint\": \"{}\"}}",
                f.rule,
                f.name,
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message),
                json_escape(f.hint),
            ));
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            out.push_str(&format!(
                "{sep}    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"reason\": \"{}\"}}",
                a.rule,
                json_escape(&a.file),
                a.line,
                json_escape(&a.reason),
            ));
        }
        out.push_str(if self.allows.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Marks tokens the rules must not see: `use` statements (imports are
/// not uses of a hash container) and `#[cfg(test)]` items (test-only
/// code is exempt from the determinism contract).
fn skip_mask(tokens: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; tokens.len()];

    // `use ... ;`
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("use") {
            while i < tokens.len() && !tokens[i].is_punct(';') {
                skip[i] = true;
                i += 1;
            }
            if i < tokens.len() {
                skip[i] = true;
            }
        }
        i += 1;
    }

    // `#[cfg(test)]` + following attributes + the annotated item.
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Any further attributes on the same item.
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The item body: to the matching `}` of its first brace, or to a
        // top-level `;` for braceless items (`use`, `type`, ...).
        let mut depth = 0usize;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                depth += 1;
            } else if tokens[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tokens[j].is_punct(';') && depth == 0 {
                break;
            }
            j += 1;
        }
        for s in skip.iter_mut().take((j + 1).min(tokens.len())).skip(i) {
            *s = true;
        }
        i = j + 1;
    }

    skip
}

/// Per-file rule exemptions: the `repro` CLI / bless harness may read
/// clocks and the environment.
fn rule_applies(rule: &str, rel_path: &str) -> bool {
    match rule {
        "D003" | "D005" => !rel_path.starts_with("crates/bench/"),
        _ => true,
    }
}

/// Lints one source file. Returns the surviving findings and the allow
/// directives that earned their keep.
pub fn lint_source(rel_path: &str, source: &str) -> (Vec<Finding>, Vec<AllowRecord>) {
    let lexed = lex(source);
    let skip = skip_mask(&lexed.tokens);

    let mut raw: Vec<Finding> = Vec::new();
    type Rule = fn(&[Token], &str, &[bool]) -> Vec<Finding>;
    let passes: [(&str, Rule); 6] = [
        ("D001", rules::d001),
        ("D002", rules::d002),
        ("D003", rules::d003),
        ("D004", rules::d004),
        ("D005", rules::d005),
        ("D006", rules::d006),
    ];
    for (code, pass) in passes {
        if rule_applies(code, rel_path) {
            raw.extend(pass(&lexed.tokens, rel_path, &skip));
        }
    }

    // Apply allow directives: a *valid* allow (known rule, non-empty
    // reason) suppresses matching findings on its own line or the line
    // directly below.
    let mut used = vec![false; lexed.allows.len()];
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for (k, a) in lexed.allows.iter().enumerate() {
            let valid = rule_info(&a.rule).is_some() && !a.reason.is_empty();
            if valid && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                used[k] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    // Allow hygiene: unjustified (X001) and stale (X002) directives are
    // findings themselves.
    let mut allows: Vec<AllowRecord> = Vec::new();
    for (k, a) in lexed.allows.iter().enumerate() {
        let info = rule_info(&a.rule);
        if info.is_none() || a.reason.is_empty() {
            let x = rule_info("X001").expect("X001 in table");
            findings.push(Finding {
                rule: x.code,
                name: x.name,
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                message: if info.is_none() {
                    format!("allow names unknown rule `{}`", a.rule)
                } else {
                    format!("allow({}) has no written justification", a.rule)
                },
                hint: x.hint,
            });
        } else if !used[k] {
            let x = rule_info("X002").expect("X002 in table");
            findings.push(Finding {
                rule: x.code,
                name: x.name,
                file: rel_path.to_string(),
                line: a.line,
                col: 1,
                message: format!("allow({}) suppresses no finding", a.rule),
                hint: x.hint,
            });
        } else {
            allows.push(AllowRecord {
                file: rel_path.to_string(),
                line: a.line,
                rule: a.rule.clone(),
                reason: a.reason.clone(),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (findings, allows)
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic reports.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root, resolved from this crate's location at compile
/// time (`crates/lint` → two levels up).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Lints every workspace crate's `src/` tree under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    crate_dirs.sort();

    let mut report = Report::default();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        for path in files {
            let rel = path
                .strip_prefix(root)
                .expect("paths live under the root")
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&path)?;
            let (findings, allows) = lint_source(&rel, &source);
            report.findings.extend(findings);
            report.allows.extend(allows);
            report.files.push(rel);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let m: HashMap<u32, u32> = HashMap::new(); }\n}\n";
        let (findings, _) = lint_source("x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn use_statements_are_skipped_but_bodies_are_not() {
        let src = "use std::collections::HashMap;\nfn f() { let m = HashMap::new(); }\n";
        let (findings, _) = lint_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "D001");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn bench_crate_may_read_clock_and_env() {
        let src = "fn f() { let t = Instant::now(); let v = std::env::var(k); }\n";
        let (findings, _) = lint_source("crates/bench/src/main.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        let (findings, _) = lint_source("crates/sched/src/lib.rs", src);
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn valid_allow_suppresses_and_is_recorded() {
        let src = "struct T {\n    // npu-lint: allow(D001) max/len aggregates only\n    links: HashMap<u32, u64>,\n}\n";
        let (findings, allows) = lint_source("x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "D001");
        assert_eq!(allows[0].reason, "max/len aggregates only");
    }

    #[test]
    fn unjustified_allow_is_a_finding_and_does_not_suppress() {
        let src = "// npu-lint: allow(D001)\nstruct T { links: HashMap<u32, u64> }\n";
        let (findings, allows) = lint_source("x.rs", src);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"D001"), "{findings:?}");
        assert!(rules.contains(&"X001"), "{findings:?}");
        assert!(allows.is_empty());
    }

    #[test]
    fn stale_allow_is_a_finding() {
        let src = "// npu-lint: allow(D004) no rng here at all\nfn f() {}\n";
        let (findings, _) = lint_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "X002");
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let (findings, allows) = lint_source("x.rs", "fn f() { let m = HashMap::new(); }\n");
        let report = Report {
            files: vec!["x.rs".to_string()],
            findings,
            allows,
        };
        let json = report.json();
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"rule\": \"D001\""));
    }
}
