//! A minimal token-level lexer for Rust source.
//!
//! The rule engine only needs identifiers and punctuation with accurate
//! line/column spans; comments, string/char/byte literals and doc text
//! are consumed and **discarded** so rule patterns can never fire on
//! prose or on the linter's own pattern tables. The one piece of
//! comment content that survives is the `npu-lint` allow directive,
//! which is parsed into [`Allow`] records as the lexer walks.
//!
//! This is deliberately not a full Rust lexer: it understands exactly
//! enough (nested block comments, raw/byte strings, char-vs-lifetime
//! disambiguation, numeric literals) to stream real workspace sources
//! without mis-tokenizing, and nothing more.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `use`, `fn`, ...).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// A literal (numeric, string, char, byte). Text is kept only for
    /// numbers; string-ish literal content is dropped.
    Literal,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// Is this exactly the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Is this exactly the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A parsed `// npu-lint: allow(<RULE>) <reason>` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule code inside the parentheses (e.g. `D001`).
    pub rule: String,
    /// Justification text after the closing parenthesis (trimmed; may
    /// be empty, which the engine reports as an unjustified allow).
    pub reason: String,
}

/// A fully lexed source file: the token stream plus allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

/// The directive prefix an allow comment must start with.
const ALLOW_PREFIX: &str = "npu-lint:";

/// Parses the body of a `//` comment into an [`Allow`], if it is one.
///
/// Grammar (whitespace-tolerant):
///
/// ```text
/// allow-comment := "npu-lint:" "allow" "(" RULE ")" REASON
/// RULE          := one rule code, e.g. D001
/// REASON        := free text to end of line (the justification)
/// ```
fn parse_allow(body: &str, line: u32) -> Option<Allow> {
    let rest = body.trim_start().strip_prefix(ALLOW_PREFIX)?;
    let rest = rest.trim_start().strip_prefix("allow")?;
    let rest = rest.trim_start().strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().to_string();
    Some(Allow { line, rule, reason })
}

/// Lexes one source file.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advances one char, tracking line/column.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Line comments (incl. doc comments): scan for allow directives,
        // discard everything else.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                bump!();
            }
            let body: String = chars[start + 2..i].iter().collect();
            let body = body.trim_start_matches(['/', '!']); // doc markers
            if let Some(allow) = parse_allow(body, tline) {
                out.allows.push(allow);
            }
            continue;
        }

        // Block comments, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            continue;
        }

        // Identifiers / keywords — with raw/byte string-prefix lookahead
        // (`r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            let text: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            let stringish = matches!(text.as_str(), "r" | "b" | "br" | "rb")
                && matches!(next, Some('"') | Some('#'));
            if stringish {
                // Raw string: count hashes, then scan to `"` + same hashes.
                let mut hashes = 0usize;
                while chars.get(i) == Some(&'#') {
                    hashes += 1;
                    bump!();
                }
                if chars.get(i) == Some(&'"') {
                    bump!(); // opening quote
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for k in 0..hashes {
                                if chars.get(i + 1 + k) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
                // `r#ident` raw identifier: fall through, emit as ident.
            }
            if text == "b" && next == Some('\'') {
                // Byte char literal: let the `'` branch below eat it.
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line: tline,
                col: tcol,
            });
            continue;
        }

        // String literals with escapes.
        if c == '"' {
            bump!(); // opening quote
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    bump!();
                    bump!();
                } else if chars[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::new(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // `'`: char literal or lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(n) if n.is_alphanumeric() || n == '_' => {
                    // 'a' is a char, 'a + ident-run without closing quote
                    // is a lifetime ('static, 'p, ...).
                    let mut k = i + 1;
                    while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
                        k += 1;
                    }
                    chars.get(k) == Some(&'\'')
                }
                Some(_) => true, // '(' etc: a punctuation char literal
                None => false,
            };
            if is_char {
                bump!(); // opening quote
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        bump!();
                        bump!();
                    } else if chars[i] == '\'' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line: tline,
                    col: tcol,
                });
            } else {
                // Lifetime: emit the `'` as punctuation, the name lexes
                // as a following ident.
                bump!();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: "'".to_string(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Numeric literals (value is irrelevant; keep text for debugging).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!();
            }
            // A fractional part only if `.` is followed by a digit —
            // keeps `0..10` lexing as `0`, `.`, `.`, `10`.
            if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                bump!();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!();
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Everything else: one punctuation character per token.
        bump!();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
            let c = 'H';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|t| *t == "HashMap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"static".to_string()));
        // The whole fn still lexes: nothing was swallowed as a char.
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals_are_swallowed() {
        let src = "let q = '\\''; let n = '\\n'; let x = 'z'; after";
        let ids = idents(src);
        assert!(!ids.contains(&"z".to_string()), "{ids:?}");
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = lex("for i in 0..10 {}").tokens;
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn spans_are_one_based_lines_and_columns() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn allow_directives_parse_with_rule_and_reason() {
        let lexed = lex("let x = 1; // npu-lint: allow(D001) max/len only\n");
        assert_eq!(
            lexed.allows,
            vec![Allow {
                line: 1,
                rule: "D001".to_string(),
                reason: "max/len only".to_string(),
            }]
        );
    }

    #[test]
    fn allow_without_reason_parses_with_empty_reason() {
        let lexed = lex("// npu-lint: allow(D003)\nfoo();");
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].reason.is_empty());
    }

    #[test]
    fn ordinary_comments_are_not_allows() {
        let lexed = lex("// just a note about allow(D001)\n");
        assert!(lexed.allows.is_empty());
    }
}
