//! `mcm-npu` — a multi-chiplet NPU performance simulator for
//! autonomous-driving perception workloads.
//!
//! This is the facade crate of the workspace reproducing *"Performance
//! Implications of Multi-Chiplet Neural Processing Units on Autonomous
//! Driving Perception"* (DATE 2025). It re-exports the component crates
//! and offers [`Platform`], a one-stop API that wires a package, a cost
//! model and the Tesla-Autopilot-style perception workload together.
//!
//! # Quick start
//!
//! ```
//! use npu_core::Platform;
//!
//! // The paper's NPU: a Simba-like 6x6 mesh of 256-PE OS chiplets.
//! let platform = Platform::simba_6x6();
//! let outcome = platform.schedule_default_perception();
//! // Algorithm 1 sustains ~11-12 FPS (pipe latency ~85-90 ms).
//! assert!(outcome.report.throughput_fps() > 10.0);
//! ```
//!
//! # Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`tensor`] | unit newtypes, datatypes, shapes, [`float`] total-order helpers |
//! | [`dnn`] | layer IR, graphs, the perception model zoo |
//! | [`maestro`] | per-layer dataflow cost models (OS / WS) |
//! | [`noc`] | Network-on-Package mesh & transfer costs |
//! | [`mcm`] | chiplet package presets & heterogeneity |
//! | [`sched`] | sharding, Algorithm 1, baselines, trunk DSE |
//! | [`pipesim`] | discrete-event validation simulator |
//! | [`scenario`] | driving scenarios & drive timelines: rigs, modes, mode switching |
//! | [`study`] | unified sweep/DSE query surface (axes, grids, objectives) |
//! | [`fleet`] | multi-tenant co-scheduling, admission control, fleet-scale DSE |
//! | [`experiments`] | every paper table & figure, regenerated |
//! | [`par`] | scoped-thread parallel sweep executor (`par_map`) |

pub use npu_dnn as dnn;
pub use npu_experiments as experiments;
pub use npu_fleet as fleet;
pub use npu_maestro as maestro;
pub use npu_mcm as mcm;
pub use npu_noc as noc;
pub use npu_par as par;
pub use npu_pipesim as pipesim;
pub use npu_scenario as scenario;
pub use npu_sched as sched;
pub use npu_study as study;
pub use npu_tensor as tensor;
pub use npu_tensor::float;

/// Commonly used items in one import.
pub mod prelude {
    pub use npu_dnn::{Graph, Layer, OpKind, PerceptionConfig, PerceptionPipeline, StageKind};
    pub use npu_maestro::{Accelerator, CostModel, Dataflow, FittedMaestro, ReconfigModel};
    pub use npu_mcm::{ChipletId, McmPackage};
    pub use npu_pipesim::{simulate, simulate_phases, Arrivals, SimConfig, SimReport};
    pub use npu_scenario::{
        drive_sweep, scenario_sweep, simulate_drive, CameraRig, Drive, DriveOutcome, DriveSegment,
        OperatingMode, Scenario, ScenarioPoint,
    };
    pub use npu_sched::{
        baseline_schedule, evaluate, EvalReport, MatchOutcome, MatcherConfig, Pipelining, Schedule,
        ThroughputMatcher,
    };
    pub use npu_study::{Axis, Constraint, Grid, Objective, Render, Study, StudyReport};
    pub use npu_tensor::{Bytes, Dtype, Joules, MacCount, Seconds};

    pub use crate::Platform;
}

use npu_dnn::{PerceptionConfig, PerceptionPipeline};
use npu_maestro::FittedMaestro;
use npu_mcm::McmPackage;
use npu_pipesim::{simulate, SimConfig, SimReport};
use npu_sched::{evaluate, EvalReport, MatchOutcome, MatcherConfig, Schedule, ThroughputMatcher};
use npu_tensor::Dtype;

/// A ready-to-use simulation platform: package + calibrated cost model.
///
/// # Examples
///
/// ```
/// use npu_core::Platform;
/// use npu_core::prelude::PerceptionConfig;
///
/// let p = Platform::simba_6x6();
/// let pipeline = PerceptionConfig::default().build();
/// let outcome = p.schedule_perception(&pipeline);
/// let des = p.simulate(&outcome.schedule, 12);
/// let drift =
///     (des.steady_interval.as_secs() / outcome.report.pipe.as_secs() - 1.0).abs();
/// assert!(drift < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    package: McmPackage,
    model: FittedMaestro,
    matcher_cfg: MatcherConfig,
}

impl Platform {
    /// A platform over any package with the paper-calibrated cost model.
    pub fn new(package: McmPackage) -> Self {
        Platform {
            package,
            model: FittedMaestro::new(),
            matcher_cfg: MatcherConfig::default(),
        }
    }

    /// The paper's NPU: 36 × 256-PE OS chiplets (9,216 PEs, as the Tesla
    /// FSD NPU).
    pub fn simba_6x6() -> Self {
        Platform::new(McmPackage::simba_6x6())
    }

    /// The two-NPU platform of the paper's §V-B scaling study.
    pub fn dual_npu() -> Self {
        let mut p = Platform::new(McmPackage::dual_npu_12x6());
        p.matcher_cfg.allow_fe_split = true;
        p
    }

    /// The underlying package.
    pub fn package(&self) -> &McmPackage {
        &self.package
    }

    /// Overrides the matcher configuration (builder style).
    pub fn with_matcher_config(mut self, cfg: MatcherConfig) -> Self {
        self.matcher_cfg = cfg;
        self
    }

    /// Runs Algorithm 1 on a perception pipeline.
    pub fn schedule_perception(&self, pipeline: &PerceptionPipeline) -> MatchOutcome {
        ThroughputMatcher::new(&self.model, self.matcher_cfg.clone())
            .match_throughput(pipeline, &self.package)
    }

    /// Runs the minimizing matcher (keeps sharding while spare chiplets
    /// remain — the two-NPU mode).
    pub fn schedule_minimized(&self, pipeline: &PerceptionPipeline) -> MatchOutcome {
        ThroughputMatcher::new(&self.model, self.matcher_cfg.clone())
            .minimize(pipeline, &self.package)
    }

    /// Schedules the default (paper-calibrated) perception pipeline.
    pub fn schedule_default_perception(&self) -> MatchOutcome {
        self.schedule_perception(&PerceptionConfig::default().build())
    }

    /// Evaluates an arbitrary schedule analytically.
    pub fn evaluate(&self, schedule: &Schedule) -> EvalReport {
        evaluate(schedule, &self.package, &self.model, Dtype::Fp16)
    }

    /// Validates a schedule in the discrete-event simulator (saturation
    /// mode over `frames` frames).
    pub fn simulate(&self, schedule: &Schedule, frames: usize) -> SimReport {
        simulate(
            schedule,
            &self.package,
            &self.model,
            &SimConfig::saturated(frames),
        )
    }

    /// Simulates frame arrivals from the 8-camera source at `fps`.
    pub fn simulate_camera_feed(&self, schedule: &Schedule, frames: usize, fps: f64) -> SimReport {
        simulate(
            schedule,
            &self.package,
            &self.model,
            &SimConfig::camera(frames, fps),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_round_trip() {
        let p = Platform::simba_6x6();
        let outcome = p.schedule_default_perception();
        let report = p.evaluate(&outcome.schedule);
        assert!((report.pipe.as_secs() - outcome.report.pipe.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn dual_npu_platform_allows_fe_split() {
        let p = Platform::dual_npu();
        assert_eq!(p.package().len(), 72);
        assert!(p.matcher_cfg.allow_fe_split);
    }
}
