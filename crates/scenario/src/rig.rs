//! Camera rig descriptions.

use serde::{Deserialize, Serialize};

/// A vehicle's camera rig: how many cameras, at what resolution, firing
/// at what rate. The paper's evaluation fixes one rig (8 × 360×640 @ 30
/// FPS); real fleets ship several (see "Hardware Accelerators in
/// Autonomous Driving" on heterogeneous sensor configurations).
///
/// # Examples
///
/// ```
/// use npu_scenario::CameraRig;
///
/// let rig = CameraRig::octa_ring();
/// assert_eq!(rig.cameras, 8);
/// assert_eq!(rig.input_hw, (360, 640));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraRig {
    /// Installed cameras.
    pub cameras: u64,
    /// Per-camera input height/width after ISP pre-scaling.
    pub input_hw: (u64, u64),
    /// Nominal per-camera frame rate.
    pub fps: f64,
}

impl CameraRig {
    /// Creates a validated rig.
    ///
    /// # Panics
    ///
    /// Panics if `cameras` is zero, either image extent is zero, or
    /// `fps` is not finite and positive.
    pub fn new(cameras: u64, input_hw: (u64, u64), fps: f64) -> Self {
        assert!(cameras >= 1, "a rig needs at least one camera");
        assert!(
            input_hw.0 >= 1 && input_hw.1 >= 1,
            "camera resolution must be non-zero, got {input_hw:?}"
        );
        assert!(
            fps.is_finite() && fps > 0.0,
            "camera frame rate must be finite and positive, got {fps}"
        );
        CameraRig {
            cameras,
            input_hw,
            fps,
        }
    }

    /// The paper's rig: 8 surround cameras, 360×640 inputs, 30 FPS.
    pub fn octa_ring() -> Self {
        CameraRig::new(8, (360, 640), 30.0)
    }

    /// A 6-camera highway rig trading side coverage for a faster frame
    /// rate (36 FPS).
    pub fn hexa_highway() -> Self {
        CameraRig::new(6, (360, 640), 36.0)
    }

    /// A reduced 4-camera rig at lower resolution and rate — the economy
    /// configuration of a robo-shuttle operating on fixed routes.
    pub fn quad_economy() -> Self {
        CameraRig::new(4, (288, 512), 20.0)
    }

    /// Nominal inter-frame interval in seconds.
    pub fn frame_interval_secs(&self) -> f64 {
        1.0 / self.fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_distinct() {
        let rigs = [
            CameraRig::octa_ring(),
            CameraRig::hexa_highway(),
            CameraRig::quad_economy(),
        ];
        for r in &rigs {
            assert!(r.cameras >= 1);
            assert!(r.frame_interval_secs() > 0.0);
        }
        assert_ne!(rigs[0], rigs[1]);
        assert_ne!(rigs[1], rigs[2]);
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn zero_cameras_rejected() {
        let _ = CameraRig::new(0, (360, 640), 30.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_fps_rejected() {
        let _ = CameraRig::new(8, (360, 640), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_resolution_rejected() {
        let _ = CameraRig::new(8, (0, 640), 30.0);
    }
}
