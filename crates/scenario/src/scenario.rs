//! Driving scenarios: rig + operating mode → workload + arrival process.

use serde::{Deserialize, Serialize};

use npu_dnn::{PerceptionConfig, PerceptionPipeline};
use npu_pipesim::{Arrivals, SimConfig};
use npu_tensor::Seconds;

use crate::rig::CameraRig;

/// The operating mode the vehicle is in. Modes shape both the workload
/// (active cameras, detector heads) and the frame arrival process the
/// DES sees ("Chiplets on Wheels" sizes chiplet platforms against such
/// scenario mixes, not a single steady-state trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OperatingMode {
    /// Steady cruise: strictly periodic arrivals at the rig rate, the
    /// default workload.
    HighwayCruise,
    /// Dense urban traffic: camera trigger skew jitters arrivals, and an
    /// extra detector head runs for the pedestrian-heavy scene.
    UrbanDense {
        /// Uniform arrival jitter as a fraction of the interval.
        jitter_frac: f64,
        /// Jitter stream seed.
        seed: u64,
    },
    /// Degraded operation after camera dropout: the pipeline runs on the
    /// surviving cameras at the nominal rate.
    DegradedDropout {
        /// Cameras lost (clamped so at least one survives).
        lost_cameras: u64,
    },
    /// Burst re-localization: a backlog of keyframes is replayed in
    /// bursts (e.g. after GPS loss), at the rig's mean rate.
    BurstRelocalization {
        /// Frames per burst.
        burst: usize,
    },
    /// Replay of recorded frame timestamps from a drive log.
    TraceReplay {
        /// Recorded arrival times (finite, non-decreasing).
        trace: Vec<Seconds>,
    },
}

/// A named driving scenario: a camera rig operated in a mode. Compiles
/// into a [`PerceptionConfig`] for the analytic scheduler and a
/// [`SimConfig`] for the discrete-event simulator, so both sides of the
/// cross-validation stack evaluate exactly the same workload.
///
/// # Examples
///
/// ```
/// use npu_scenario::{CameraRig, OperatingMode, Scenario};
///
/// let s = Scenario::new(
///     "degraded",
///     CameraRig::octa_ring(),
///     OperatingMode::DegradedDropout { lost_cameras: 3 },
/// );
/// assert_eq!(s.active_cameras(), 5);
/// let pipeline = s.workload();
/// assert_eq!(pipeline.config().cameras, 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario family name (unique within a sweep).
    pub name: String,
    /// The camera rig.
    pub rig: CameraRig,
    /// The operating mode.
    pub mode: OperatingMode,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(name: impl Into<String>, rig: CameraRig, mode: OperatingMode) -> Self {
        Scenario {
            name: name.into(),
            rig,
            mode,
        }
    }

    /// Cameras actually feeding the pipeline (rig minus dropout, at
    /// least one).
    pub fn active_cameras(&self) -> u64 {
        match &self.mode {
            OperatingMode::DegradedDropout { lost_cameras } => {
                self.rig.cameras.saturating_sub(*lost_cameras).max(1)
            }
            _ => self.rig.cameras,
        }
    }

    /// Compiles the scenario into a perception-pipeline configuration:
    /// the camera count drives both the FE+BFPN instance count and the
    /// spatial-fusion token load, the rig resolution drives the
    /// feature-extractor shapes, and urban mode adds a detector head.
    pub fn perception_config(&self) -> PerceptionConfig {
        let mut cfg = PerceptionConfig::default();
        let active = self.active_cameras();
        cfg.cameras = active;
        cfg.fe.input_hw = self.rig.input_hw;
        // S_FUSE projects one token grid per active camera; the grid
        // itself is the BiFPN output and thus resolution-independent.
        let tokens_per_camera = cfg.bifpn.out_grid.0 * cfg.bifpn.out_grid.1;
        cfg.s_fuse.proj_tokens = active * tokens_per_camera;
        if let OperatingMode::UrbanDense { .. } = self.mode {
            // Traffic/vehicle/pedestrian plus a cyclist head.
            cfg.detectors = 4;
        }
        cfg
    }

    /// Builds the scenario's perception pipeline.
    pub fn workload(&self) -> PerceptionPipeline {
        self.perception_config().build()
    }

    /// The frame arrival process the mode produces.
    pub fn arrivals(&self) -> Arrivals {
        let interval = Seconds::new(self.rig.frame_interval_secs());
        match &self.mode {
            OperatingMode::HighwayCruise | OperatingMode::DegradedDropout { .. } => {
                Arrivals::Periodic { interval }
            }
            OperatingMode::UrbanDense { jitter_frac, seed } => Arrivals::Jittered {
                interval,
                frac: Arrivals::clamp_jitter(*jitter_frac),
                seed: *seed,
            },
            OperatingMode::BurstRelocalization { burst } => {
                let burst = (*burst).max(1);
                Arrivals::Bursty {
                    // Bursts carry `burst` frames at the rig's mean rate;
                    // within a burst the backlog drains 8x faster.
                    period: Seconds::new(interval.as_secs() * burst as f64),
                    burst,
                    intra: Seconds::new(interval.as_secs() / 8.0),
                }
            }
            OperatingMode::TraceReplay { trace } => Arrivals::trace(trace.clone()),
        }
    }

    /// DES configuration driving `frames` frames through this scenario's
    /// arrival process.
    pub fn sim_config(&self, frames: usize) -> SimConfig {
        SimConfig::with_arrivals(frames, self.arrivals())
    }

    /// The analytically predicted steady-state frame interval: the
    /// pipeline's matched pipelining latency when arrivals outpace it
    /// (compute-bound), the mean arrival interval otherwise
    /// (arrival-bound). Saturation is always compute-bound.
    pub fn predicted_interval(&self, pipe: Seconds) -> Seconds {
        match self.arrivals().mean_interval() {
            Some(mean) if mean.as_secs() > pipe.as_secs() => mean,
            _ => pipe,
        }
    }

    /// The family's steady-interval latency target: the slowest
    /// sustained frame interval at which this scenario still counts as
    /// served. Compute-bound families get the 100 ms perception floor
    /// (10 FPS, the envelope of the paper's `L_cstr`); arrival-bound
    /// rigs (throttled cameras, sparse trace logs) are relaxed to 1.25×
    /// their mean arrival interval — a platform cannot complete frames
    /// faster than they arrive, so the target tracks the source with a
    /// 25% scheduling-slack margin.
    ///
    /// Scenario-aware DSE (`repro scenario-dse`) declares a package
    /// feasible only when every family's DES-measured steady interval
    /// meets its target.
    pub fn latency_target(&self) -> Seconds {
        let floor = Seconds::from_millis(100.0);
        match self.arrivals().mean_interval() {
            Some(mean) if mean.as_secs() * 1.25 > floor.as_secs() => {
                Seconds::new(mean.as_secs() * 1.25)
            }
            _ => floor,
        }
    }

    /// The built-in scenario families the workbench sweeps: the paper's
    /// steady state plus urban, reduced-rig, degraded, bursty,
    /// arrival-bound and trace-replay operation.
    pub fn builtin() -> Vec<Scenario> {
        vec![
            Scenario::new(
                "highway-cruise",
                CameraRig::octa_ring(),
                OperatingMode::HighwayCruise,
            ),
            Scenario::new(
                "urban-dense",
                CameraRig::octa_ring(),
                OperatingMode::UrbanDense {
                    jitter_frac: 0.25,
                    seed: 11,
                },
            ),
            Scenario::new(
                "hexa-highway",
                CameraRig::hexa_highway(),
                OperatingMode::HighwayCruise,
            ),
            Scenario::new(
                "degraded-dropout",
                CameraRig::octa_ring(),
                OperatingMode::DegradedDropout { lost_cameras: 3 },
            ),
            Scenario::new(
                "burst-relocalization",
                CameraRig::octa_ring(),
                OperatingMode::BurstRelocalization { burst: 4 },
            ),
            Scenario::new(
                "night-low-rate",
                // Cameras throttle to 8 FPS in low light: the platform
                // becomes arrival-bound, not compute-bound.
                CameraRig::new(8, (360, 640), 8.0),
                OperatingMode::HighwayCruise,
            ),
            Scenario::new(
                "trace-replay",
                CameraRig::quad_economy(),
                OperatingMode::TraceReplay {
                    // A recorded log snippet: nominal 20 FPS with two
                    // stalls (dropped frames around underpass glare).
                    trace: [0.0, 0.05, 0.10, 0.22, 0.27, 0.32, 0.47, 0.52]
                        .iter()
                        .map(|&t| Seconds::new(t))
                        .collect(),
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_families_are_diverse() {
        let scenarios = Scenario::builtin();
        assert!(scenarios.len() >= 6, "need at least six families");
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "names must be unique");
        // At least one degraded and one bursty mode (ISSUE 3 acceptance).
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.mode, OperatingMode::DegradedDropout { .. })));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.mode, OperatingMode::BurstRelocalization { .. })));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.mode, OperatingMode::TraceReplay { .. })));
    }

    #[test]
    fn dropout_shrinks_the_workload() {
        let full = Scenario::new("full", CameraRig::octa_ring(), OperatingMode::HighwayCruise);
        let degraded = Scenario::new(
            "deg",
            CameraRig::octa_ring(),
            OperatingMode::DegradedDropout { lost_cameras: 3 },
        );
        assert_eq!(degraded.active_cameras(), 5);
        let f = full.workload();
        let d = degraded.workload();
        assert!(d.total_macs() < f.total_macs());
        // S_FUSE token load follows the active cameras.
        assert_eq!(degraded.perception_config().s_fuse.proj_tokens, 5 * 1600);
        // Dropout can never kill the last camera.
        let all_lost = Scenario::new(
            "dead",
            CameraRig::octa_ring(),
            OperatingMode::DegradedDropout { lost_cameras: 99 },
        );
        assert_eq!(all_lost.active_cameras(), 1);
    }

    #[test]
    fn urban_mode_adds_a_detector() {
        let urban = Scenario::new(
            "u",
            CameraRig::octa_ring(),
            OperatingMode::UrbanDense {
                jitter_frac: 0.2,
                seed: 1,
            },
        );
        assert_eq!(urban.perception_config().detectors, 4);
        assert!(matches!(urban.arrivals(), Arrivals::Jittered { .. }));
    }

    #[test]
    fn resolution_scales_fe_work() {
        let hi = Scenario::new(
            "hi",
            CameraRig::new(4, (360, 640), 20.0),
            OperatingMode::HighwayCruise,
        );
        let lo = Scenario::new(
            "lo",
            CameraRig::new(4, (288, 512), 20.0),
            OperatingMode::HighwayCruise,
        );
        assert!(lo.workload().total_macs() < hi.workload().total_macs());
    }

    #[test]
    fn predicted_interval_takes_the_binding_constraint() {
        let fast = Scenario::new(
            "fast",
            CameraRig::new(8, (360, 640), 30.0),
            OperatingMode::HighwayCruise,
        );
        let slow = Scenario::new(
            "slow",
            CameraRig::new(8, (360, 640), 2.0),
            OperatingMode::HighwayCruise,
        );
        let pipe = Seconds::new(0.085);
        // 30 FPS arrivals (33 ms) outpace an 85 ms pipe: compute-bound.
        assert_eq!(fast.predicted_interval(pipe), pipe);
        // 2 FPS arrivals (500 ms) leave the pipeline idle: arrival-bound.
        assert_eq!(slow.predicted_interval(pipe), Seconds::new(0.5));
    }

    #[test]
    fn latency_target_tracks_the_binding_constraint() {
        // 30 FPS cameras outpace the 100 ms floor: the floor binds.
        let cruise = Scenario::new("c", CameraRig::octa_ring(), OperatingMode::HighwayCruise);
        assert_eq!(cruise.latency_target(), Seconds::from_millis(100.0));
        // An 8 FPS night rig is arrival-bound: 1.25 x 125 ms.
        let night = Scenario::new(
            "n",
            CameraRig::new(8, (360, 640), 8.0),
            OperatingMode::HighwayCruise,
        );
        assert!((night.latency_target().as_millis() - 156.25).abs() < 1e-9);
    }

    #[test]
    fn scenarios_serialize_round_trip() {
        for s in Scenario::builtin() {
            let json = serde_json::to_string(&s).expect("serialize");
            let back: Scenario = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, s);
        }
    }

    #[test]
    fn burst_mode_preserves_the_mean_rate() {
        let s = Scenario::new(
            "b",
            CameraRig::octa_ring(),
            OperatingMode::BurstRelocalization { burst: 4 },
        );
        let mean = s.arrivals().mean_interval().unwrap().as_secs();
        assert!((mean - 1.0 / 30.0).abs() < 1e-12);
    }
}
