//! Drive timelines: online mode switching as one continuous simulation.
//!
//! The scenario workbench evaluates each operating mode at a fixed
//! operating point, but a real drive *transitions* between modes —
//! highway cruise into dense urban traffic into degraded operation after
//! a camera dropout — and each transition forces the matcher's region
//! allocation to be re-established for the new workload while frames
//! keep arriving. A [`Drive`] is an ordered sequence of
//! `(Scenario, duration)` segments compiled into:
//!
//! * **one** piecewise arrival stream ([`Arrivals::Piecewise`]) covering
//!   the whole timeline;
//! * one matched schedule per segment (the same Algorithm 1 compilation
//!   the standalone sweep uses, via [`match_scenario`]);
//! * one priced re-match per boundary ([`rematch_cost`]): the chiplets
//!   whose program changes and the mapping spin-up latency they cost.
//!
//! The phased DES ([`npu_pipesim::simulate_phases`]) then drives the
//! timeline end to end — the paper-style tail question ("how many frames
//! does a mode switch cost?") that per-scenario steady-state means
//! cannot answer. Boundaries are **make-before-break** handovers: the
//! re-match diff classifies each incoming chiplet as kept (keeps
//! serving, in-flight frames survive), prestaged (reloaded over the
//! outgoing tail's idle west-edge port cycles, ready at the switch) or
//! stalled (re-programmed out of a busy state, back online per the
//! staged readiness schedule), and a frame is dropped only when its
//! critical path lands on a still-reloading chiplet. A diff that
//! re-programs every busy chiplet leaves no serving pipeline and
//! degenerates to the old package-wide barrier bit for bit; dropped
//! frames surface as a perception-staleness window on each
//! [`SegmentReport`].

use serde::{Deserialize, Serialize};

use npu_maestro::{CostModel, ReconfigModel};
use npu_mcm::McmPackage;
use npu_pipesim::{
    simulate_phases, ArrivalSegment, Arrivals, LatencyQuantiles, Readiness, SimPhase,
};
use npu_sched::rematch::rematch_cost;
use npu_sched::Schedule;
use npu_study::{Axis, Grid, Study};
use npu_tensor::{float, Bytes, Dtype, Seconds};

use crate::rig::CameraRig;
use crate::scenario::{OperatingMode, Scenario};
use crate::sweep::match_scenario;

/// One leg of a drive: a scenario held for a duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveSegment {
    /// The operating point during this leg.
    pub scenario: Scenario,
    /// How long the vehicle stays in it.
    pub duration: Seconds,
}

impl DriveSegment {
    /// Creates a segment.
    pub fn new(scenario: Scenario, duration: Seconds) -> Self {
        DriveSegment { scenario, duration }
    }

    /// Frames the segment's arrival process offers within its duration:
    /// as many as fit with the last frame arriving strictly inside the
    /// segment, at least one.
    ///
    /// # Panics
    ///
    /// Panics if not even the first frame arrives within the duration
    /// (the segment is shorter than its own arrival process), or if the
    /// process never advances (a degenerate constant-timestamp trace).
    pub fn frames(&self) -> usize {
        let arrivals = self.scenario.arrivals();
        let mean = arrivals
            .mean_interval()
            .expect("scenario arrivals always have a rate")
            .as_secs();
        let span = self.duration.as_secs();
        // A non-advancing process (mean gap 0) would fit infinitely many
        // frames; reject it rather than looping below.
        assert!(
            mean.is_finite() && mean > 0.0,
            "segment `{}`: arrival process never advances (mean interval {mean})",
            self.scenario.name
        );
        // The mean-rate estimate can land on either side for unevenly
        // paced processes (bursts, trace stalls): back off until the
        // last frame fits, then grow while the next frame still fits.
        let mut frames = ((span / mean).ceil() as usize).max(1);
        while frames > 1 && arrivals.times(frames)[frames - 1] >= span {
            frames -= 1;
        }
        while arrivals.times(frames + 1)[frames] < span {
            frames += 1;
        }
        let last = arrivals.times(frames)[frames - 1];
        assert!(
            last < span,
            "segment `{}` lasts {}s but its first frames arrive at {last}s",
            self.scenario.name,
            span
        );
        frames
    }
}

/// A named drive timeline: ordered segments, simulated as one run.
///
/// # Examples
///
/// ```
/// use npu_scenario::Drive;
///
/// let drive = Drive::cruise_urban_degraded();
/// assert_eq!(drive.segments.len(), 3);
/// // The timeline compiles to one piecewise arrival stream.
/// let times = drive.arrivals().times(drive.total_frames());
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Drive {
    /// Timeline name (unique within a sweep).
    pub name: String,
    /// The legs, in driving order.
    pub segments: Vec<DriveSegment>,
}

impl Drive {
    /// Creates a validated drive.
    ///
    /// # Panics
    ///
    /// Panics if there are no segments, or any segment's duration is not
    /// finite and positive, or a segment cannot fit its first frame.
    pub fn new(name: impl Into<String>, segments: Vec<DriveSegment>) -> Self {
        assert!(!segments.is_empty(), "a drive needs at least one segment");
        for seg in &segments {
            let d = seg.duration.as_secs();
            assert!(
                d.is_finite() && d > 0.0,
                "segment `{}` duration must be finite and positive, got {d}",
                seg.scenario.name
            );
            let _ = seg.frames(); // validates the frame fit
        }
        Drive {
            name: name.into(),
            segments,
        }
    }

    /// The whole timeline as one [`Arrivals::Piecewise`] stream.
    pub fn arrivals(&self) -> Arrivals {
        Arrivals::piecewise(
            self.segments
                .iter()
                .map(|seg| ArrivalSegment {
                    arrivals: seg.scenario.arrivals(),
                    frames: seg.frames(),
                    span: seg.duration,
                })
                .collect(),
        )
    }

    /// Frames the timeline offers end to end.
    pub fn total_frames(&self) -> usize {
        self.segments.iter().map(|s| s.frames()).sum()
    }

    /// Wall-clock length of the timeline.
    pub fn total_duration(&self) -> Seconds {
        Seconds::new(self.segments.iter().map(|s| s.duration.as_secs()).sum())
    }

    /// The headline timeline: one second of highway cruise, then dense
    /// urban traffic (jittered arrivals + an extra detector head), then
    /// degraded operation after losing three cameras.
    pub fn cruise_urban_degraded() -> Drive {
        Drive::cruise_urban_degraded_scaled(Seconds::new(1.0))
    }

    /// [`cruise_urban_degraded`](Drive::cruise_urban_degraded) with each
    /// leg stretched to `leg` seconds: the same mode sequence at highway
    /// scale. The long-timeline workbench (`repro drive-long`) and the
    /// `des_engine` bench run minutes-long legs through this — with the
    /// ISSUE 8 engine a segment's cost no longer scales with the frames
    /// it holds in memory, only with the events it processes.
    pub fn cruise_urban_degraded_scaled(leg: Seconds) -> Drive {
        let rig = CameraRig::octa_ring();
        Drive::new(
            "cruise-urban-degraded",
            vec![
                DriveSegment::new(
                    Scenario::new("highway-cruise", rig, OperatingMode::HighwayCruise),
                    leg,
                ),
                DriveSegment::new(
                    Scenario::new(
                        "urban-dense",
                        rig,
                        OperatingMode::UrbanDense {
                            jitter_frac: 0.25,
                            seed: 11,
                        },
                    ),
                    leg,
                ),
                DriveSegment::new(
                    Scenario::new(
                        "degraded-dropout",
                        rig,
                        OperatingMode::DegradedDropout { lost_cameras: 3 },
                    ),
                    leg,
                ),
            ],
        )
    }

    /// A recorded-log timeline: replay of the anonymized underpass-glare
    /// camera trace (loaded from the in-repo CSV fixture), then a burst
    /// re-localization phase once tracking is lost.
    pub fn glare_relocalization() -> Drive {
        let rig = CameraRig::quad_economy();
        let trace =
            match Arrivals::from_csv_str(include_str!("../../../tests/traces/urban_glare.csv"))
                .expect("in-repo fixture trace parses")
            {
                Arrivals::Trace(times) => times,
                _ => unreachable!("loaders return traces"),
            };
        Drive::new(
            "glare-relocalization",
            vec![
                DriveSegment::new(
                    Scenario::new("glare-replay", rig, OperatingMode::TraceReplay { trace }),
                    Seconds::new(1.0),
                ),
                DriveSegment::new(
                    Scenario::new(
                        "burst-relocalization",
                        rig,
                        OperatingMode::BurstRelocalization { burst: 4 },
                    ),
                    Seconds::new(1.0),
                ),
            ],
        )
    }

    /// The built-in timelines the drive workbench sweeps.
    pub fn builtin() -> Vec<Drive> {
        vec![
            Drive::cruise_urban_degraded(),
            Drive::glare_relocalization(),
        ]
    }
}

/// Per-segment steady-state measurements of a simulated drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// Scenario family active during the segment.
    pub scenario: String,
    /// When the segment starts on the drive clock.
    pub start: Seconds,
    /// The segment's duration.
    pub duration: Seconds,
    /// Frames the arrival process offered.
    pub offered: usize,
    /// Frames dropped while the segment's mapping was spinning up.
    pub dropped: usize,
    /// Frames flushed in flight at the segment's end by a full-barrier
    /// handover (0 when the next switch is make-before-break or the
    /// segment is last).
    pub flushed: usize,
    /// Frames that entered the pipeline and completed.
    pub served: usize,
    /// Perception staleness at the segment's entry: how long after the
    /// segment starts its first *served* frame arrives. Dropped spin-up
    /// frames widen this blind window — perception emits nothing new
    /// while the mapping reloads; a segment serving nothing is stale for
    /// its whole duration.
    pub staleness: Seconds,
    /// Analytic matched pipelining latency of the segment's schedule.
    pub pipe: Seconds,
    /// Predicted steady interval: `max(pipe, mean arrival interval)`.
    pub predicted_interval: Seconds,
    /// DES-measured steady interval over the served frames.
    pub des_interval: Seconds,
    /// DES mean per-frame latency (arrival → completion) in steady state.
    pub mean_latency: Seconds,
    /// DES worst per-frame latency in steady state.
    pub max_latency: Seconds,
    /// DES tail percentiles (p50/p95/p99/p99.9) of the segment's
    /// steady-state latency stream.
    pub tails: LatencyQuantiles,
}

/// One mode switch: the priced re-match between two segments' mappings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionReport {
    /// Scenario the vehicle leaves.
    pub from: String,
    /// Scenario the vehicle enters.
    pub to: String,
    /// When the switch happens on the drive clock.
    pub at: Seconds,
    /// Re-match latency under the package-wide **barrier** model: the
    /// pessimistic reference the make-before-break handover is measured
    /// against (and the exact spin-up window of a full-diff switch).
    pub rematch_latency: Seconds,
    /// Chiplets whose program the switch rewrites.
    pub reprogrammed: usize,
    /// Incoming chiplets that keep their program and serve straight
    /// across the boundary (a partial diff has `kept > 0`).
    pub kept: usize,
    /// Re-programmed chiplets that stall across the switch (busy in the
    /// outgoing mapping until the break).
    pub stalled: usize,
    /// Re-programmed chiplets reloaded over the outgoing schedule's tail
    /// (idle before the switch): ready the instant the mapping flips.
    pub prestaged: usize,
    /// How long after the switch the last stalled chiplet comes back
    /// online (`rematch_latency` when nothing could be prestaged or
    /// overlapped; zero for a no-op diff).
    pub stall_window: Seconds,
    /// Spin-up time the make-before-break handover hides relative to the
    /// barrier model: `rematch_latency` minus the effective admission
    /// stall (prestaging over the outgoing tail plus the pipeline
    /// wavefront slack absorbing the stalled chiplets' reloads).
    pub overlap_saving: Seconds,
    /// Weight bytes those chiplets reload.
    pub weight_bytes: Bytes,
    /// Frames dropped inside the spin-up window.
    pub dropped: usize,
}

/// A fully simulated drive timeline on one package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveOutcome {
    /// Timeline name.
    pub drive: String,
    /// Package name.
    pub package: String,
    /// Chiplets in the package.
    pub chiplets: u64,
    /// Per-segment steady-state reports, in driving order.
    pub segments: Vec<SegmentReport>,
    /// Per-boundary re-match reports (`segments.len() - 1` entries).
    pub transitions: Vec<TransitionReport>,
    /// Frames offered end to end.
    pub total_offered: usize,
    /// Frames dropped end to end (all inside spin-up windows).
    pub total_dropped: usize,
    /// Frames flushed in flight end to end (all at full-barrier
    /// handovers).
    pub total_flushed: usize,
    /// Wall-clock length of the timeline.
    pub duration: Seconds,
}

impl DriveOutcome {
    /// Fraction of offered frames lost to mode switches.
    pub fn drop_rate(&self) -> f64 {
        if self.total_offered == 0 {
            0.0
        } else {
            self.total_dropped as f64 / self.total_offered as f64
        }
    }

    /// The costliest mode switch, if the drive has any.
    pub fn worst_transition(&self) -> Option<&TransitionReport> {
        float::total_max_by_key(self.transitions.iter(), |t| t.rematch_latency.as_secs())
    }
}

/// Simulates a drive timeline on one package: match every segment,
/// price every boundary re-match, then run the phased DES over the
/// piecewise arrival stream.
///
/// A single-segment drive has no transition, so its (only) segment
/// report is bit-identical to the standalone scenario run of the same
/// (scenario, package) pair — the cross-validation suite pins this at
/// `--jobs 1` and `--jobs 8`.
pub fn simulate_drive(
    drive: &Drive,
    pkg: &McmPackage,
    model: &dyn CostModel,
    reconfig: &ReconfigModel,
) -> DriveOutcome {
    let dtype = Dtype::Fp16;

    // Compile: one matched schedule per segment (the expensive step; the
    // matcher shares the caller's memoized model across segments).
    let outcomes: Vec<_> = drive
        .segments
        .iter()
        .map(|seg| match_scenario(&seg.scenario, pkg, model))
        .collect();
    let schedules: Vec<&Schedule> = outcomes.iter().map(|o| &o.schedule).collect();

    // The whole timeline as one arrival stream, sliced back per segment.
    // Frame counts are derived once here (each derivation walks the
    // segment's arrival process) and reused for the piecewise stream,
    // the slicing and the warmup trims.
    let frame_counts: Vec<usize> = drive.segments.iter().map(|s| s.frames()).collect();
    let all_times = Arrivals::piecewise(
        drive
            .segments
            .iter()
            .zip(&frame_counts)
            .map(|(seg, &frames)| ArrivalSegment {
                arrivals: seg.scenario.arrivals(),
                frames,
                span: seg.duration,
            })
            .collect(),
    )
    .times(frame_counts.iter().sum());

    // Price each boundary and lay out the phases: per-chiplet
    // make-before-break readiness at every switch (degenerating to the
    // old barrier for full diffs), and a boundary cutoff on the
    // *outgoing* phase only when the next switch quiesces the package —
    // a make-before-break handover lets in-flight frames drain.
    let mut transitions = Vec::new();
    let mut phases: Vec<SimPhase<'_>> = Vec::new();
    let mut offset = 0.0;
    let mut cursor = 0;
    for (i, seg) in drive.segments.iter().enumerate() {
        let times = all_times[cursor..cursor + frame_counts[i]].to_vec();
        cursor += frame_counts[i];
        let readiness = if i == 0 {
            // The first mapping is loaded before the drive starts.
            Readiness::Barrier(offset)
        } else {
            let cost = rematch_cost(schedules[i - 1], schedules[i], reconfig, dtype);
            if cost.is_full_barrier() {
                phases[i - 1].cutoff = Some(offset);
            }
            transitions.push(TransitionReport {
                from: drive.segments[i - 1].scenario.name.clone(),
                to: seg.scenario.name.clone(),
                at: Seconds::new(offset),
                rematch_latency: cost.latency,
                reprogrammed: cost.reprogrammed.len(),
                kept: cost.kept.len(),
                stalled: cost.stalled(),
                prestaged: cost.prestaged.len(),
                stall_window: cost.stall_window(),
                overlap_saving: Seconds::ZERO, // filled from the phase report below
                weight_bytes: cost.weight_bytes,
                dropped: 0, // filled from the phase report below
            });
            Readiness::make_before_break(&cost, offset)
        };
        phases.push(SimPhase::new(schedules[i], times, readiness));
        offset += seg.duration.as_secs();
    }

    let reports = simulate_phases(&phases, pkg, model, dtype);

    let mut segments = Vec::new();
    let mut start = 0.0;
    for (i, (seg, phase)) in drive.segments.iter().zip(&reports).enumerate() {
        if i > 0 {
            let t = &mut transitions[i - 1];
            t.dropped = phase.dropped;
            // What the barrier model would have charged as admission
            // stall, minus what the handover actually stalled.
            let stall = (phase.admitted_from - t.at.as_secs()).max(0.0);
            t.overlap_saving = Seconds::new((t.rematch_latency.as_secs() - stall).max(0.0));
        }
        let pipe = outcomes[i].report.pipe;
        // First served arrival, on the segment clock: dropped frames are
        // exactly the prefix arriving before the admission gate.
        let staleness = phases[i]
            .times
            .get(phase.dropped)
            .map(|&t| Seconds::new(t - start))
            .unwrap_or(seg.duration);
        segments.push(SegmentReport {
            scenario: seg.scenario.name.clone(),
            start: Seconds::new(start),
            duration: seg.duration,
            offered: phase.offered,
            dropped: phase.dropped,
            flushed: phase.flushed,
            served: phase.served(),
            staleness,
            pipe,
            predicted_interval: seg.scenario.predicted_interval(pipe),
            des_interval: phase.report.steady_interval,
            mean_latency: phase.report.mean_latency,
            max_latency: phase.report.max_latency,
            tails: phase.report.tails,
        });
        start += seg.duration.as_secs();
    }

    DriveOutcome {
        drive: drive.name.clone(),
        package: pkg.name().to_string(),
        chiplets: pkg.len() as u64,
        total_offered: segments.iter().map(|s| s.offered).sum(),
        total_dropped: segments.iter().map(|s| s.dropped).sum(),
        total_flushed: segments.iter().map(|s| s.flushed).sum(),
        duration: drive.total_duration(),
        segments,
        transitions,
    }
}

/// Evaluates every drive on every package: the drive × package grid as
/// one [`Study`] query, fanned out on the worker pool behind a shared
/// memoized cost model with input-ordered, jobs-invariant results.
pub fn drive_sweep(
    drives: &[Drive],
    packages: &[McmPackage],
    model: &dyn CostModel,
    reconfig: &ReconfigModel,
) -> Vec<DriveOutcome> {
    let grid = Grid::of(Axis::new("drive", drives.to_vec()))
        .cross(Axis::new("package", packages.to_vec()));
    Study::new("drive-grid", grid, model)
        .run(|(drive, pkg), model| simulate_drive(drive, pkg, model, reconfig))
        .into_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_maestro::FittedMaestro;

    #[test]
    fn builtin_timelines_are_valid_and_distinct() {
        let drives = Drive::builtin();
        assert!(drives.len() >= 2);
        let mut names: Vec<&str> = drives.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), drives.len(), "names must be unique");
        for d in &drives {
            assert!(d.total_frames() >= d.segments.len());
            assert!(d.total_duration().as_secs() > 0.0);
        }
        // The headline timeline is the ROADMAP's cruise → urban → degraded.
        let names: Vec<&str> = drives[0]
            .segments
            .iter()
            .map(|s| s.scenario.name.as_str())
            .collect();
        assert_eq!(names, ["highway-cruise", "urban-dense", "degraded-dropout"]);
        // One built-in timeline replays a recorded fixture trace.
        assert!(drives.iter().any(|d| d
            .segments
            .iter()
            .any(|s| matches!(s.scenario.mode, OperatingMode::TraceReplay { .. }))));
    }

    #[test]
    fn segment_frames_fit_their_duration() {
        for d in Drive::builtin() {
            for seg in &d.segments {
                let frames = seg.frames();
                let last = seg.scenario.arrivals().times(frames)[frames - 1];
                assert!(
                    last < seg.duration.as_secs(),
                    "{}/{}: frame at {last}s outside {}",
                    d.name,
                    seg.scenario.name,
                    seg.duration
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_drive_is_rejected() {
        let _ = Drive::new("empty", Vec::new());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_finite_duration_is_rejected() {
        let _ = Drive::new(
            "bad",
            vec![DriveSegment::new(
                Scenario::new("c", CameraRig::octa_ring(), OperatingMode::HighwayCruise),
                Seconds::new(f64::NAN),
            )],
        );
    }

    #[test]
    fn mode_switches_charge_latency_without_quiescing() {
        let drive = Drive::cruise_urban_degraded();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let out = simulate_drive(&drive, &pkg, &model, &ReconfigModel::default());
        assert_eq!(out.segments.len(), 3);
        assert_eq!(out.transitions.len(), 2);
        for t in &out.transitions {
            assert!(
                t.reprogrammed > 0,
                "{} -> {}: the workload changes, so must the mapping",
                t.from,
                t.to
            );
            assert!(t.rematch_latency > Seconds::ZERO);
            // Both headline switches are partial diffs: some chiplets keep
            // their program, so the handover never quiesces the package.
            assert!(t.stalled > 0 && t.stalled <= t.reprogrammed);
            assert!(t.stall_window > Seconds::ZERO);
            assert!(t.stall_window <= t.rematch_latency);
            // The wavefront offset of the stalled chiplets dwarfs the
            // spin-up window, so make-before-break drops nothing here.
            assert_eq!(t.dropped, 0, "{} -> {}", t.from, t.to);
            assert!(t.overlap_saving > Seconds::ZERO);
        }
        // Dropped frames are exactly the transition drops, and no
        // handover on this drive quiesces the package (nothing flushed).
        let transition_drops: usize = out.transitions.iter().map(|t| t.dropped).sum();
        assert_eq!(out.total_dropped, transition_drops);
        assert_eq!(out.total_flushed, 0);
        assert_eq!(
            out.total_offered,
            out.segments.iter().map(|s| s.offered).sum::<usize>()
        );
        assert!(out.drop_rate() < 0.5, "switching must not eat the drive");
        assert!(out.worst_transition().is_some());
        // Segment staleness: the opening segment serves from its first
        // frame; later segments recover within their own duration.
        for (i, s) in out.segments.iter().enumerate() {
            assert!(s.staleness >= Seconds::ZERO);
            assert!(s.staleness <= s.duration);
            assert_eq!(
                s.offered,
                s.served + s.dropped + s.flushed,
                "segment {i} frame accounting must balance"
            );
        }
    }

    #[test]
    fn make_before_break_drops_strictly_fewer_than_the_barrier() {
        // Under the old full-barrier model every frame arriving inside
        // [at, at + rematch_latency) was dropped. Make-before-break must
        // beat that on every partial-diff transition that the barrier
        // would have charged.
        let model = FittedMaestro::new();
        let mut strict = 0;
        for pkg in [McmPackage::simba_6x6(), McmPackage::dual_npu_12x6()] {
            for drive in Drive::builtin() {
                let out = simulate_drive(&drive, &pkg, &model, &ReconfigModel::default());
                let all_times = Arrivals::piecewise(
                    drive
                        .segments
                        .iter()
                        .map(|seg| ArrivalSegment {
                            arrivals: seg.scenario.arrivals(),
                            frames: seg.frames(),
                            span: seg.duration,
                        })
                        .collect(),
                )
                .times(out.total_offered);
                let mut cursor = out.segments[0].offered;
                for (t, seg) in out.transitions.iter().zip(&out.segments[1..]) {
                    let times = &all_times[cursor..cursor + seg.offered];
                    let barrier_end = t.at.as_secs() + t.rematch_latency.as_secs();
                    let barrier_drops = times.partition_point(|&x| x < barrier_end);
                    if t.reprogrammed > 0 && t.kept > 0 && barrier_drops > 0 {
                        assert!(
                            t.dropped < barrier_drops,
                            "{}/{} -> {}: {} under make-before-break vs {} barrier",
                            drive.name,
                            t.from,
                            t.to,
                            t.dropped,
                            barrier_drops
                        );
                        strict += 1;
                    }
                    assert!(t.dropped <= barrier_drops, "never worse than the barrier");
                    cursor += seg.offered;
                }
            }
        }
        assert!(
            strict >= 4,
            "the builtin drives must exercise partial diffs"
        );
    }

    #[test]
    fn simulate_drive_is_deterministic() {
        let drive = Drive::glare_relocalization();
        let pkg = McmPackage::simba_6x6();
        let model = FittedMaestro::new();
        let a = simulate_drive(&drive, &pkg, &model, &ReconfigModel::default());
        let b = simulate_drive(&drive, &pkg, &model, &ReconfigModel::default());
        assert_eq!(a, b);
    }

    #[test]
    fn drives_serialize_round_trip() {
        for d in Drive::builtin() {
            let json = serde_json::to_string(&d).expect("serialize");
            let back: Drive = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, d);
        }
    }
}
