//! Declarative driving scenarios for the multi-chiplet NPU stack.
//!
//! The paper evaluates one fixed workload: an 8-camera saturated
//! perception pipeline. Its conclusions — chiplet-count knees, NoC
//! contention, throughput matching — only matter if they hold across the
//! workload envelope a real AV fleet sees. This crate models that
//! envelope declaratively:
//!
//! * [`CameraRig`] — camera count, per-camera resolution, frame rate;
//! * [`OperatingMode`] — highway cruise, dense urban, degraded camera
//!   dropout, burst re-localization, drive-log trace replay;
//! * [`Scenario`] — a named (rig, mode) pair that compiles into a
//!   `PerceptionConfig` for the analytic scheduler (`npu-sched`) **and**
//!   a `SimConfig` arrival process for the discrete-event simulator
//!   (`npu-pipesim`), so both sides of the cross-validation stack see
//!   exactly the same workload;
//! * [`scenario_sweep`] — the scenario × package grid runner, fanned out
//!   on the `npu_core::par` worker pool with deterministic,
//!   input-ordered results;
//! * [`Drive`] — an ordered timeline of `(Scenario, duration)` segments
//!   compiled into **one** continuous phased DES run: every mode switch
//!   re-matches the package (priced by `npu_sched::rematch`), and frames
//!   arriving inside the spin-up window are dropped and accounted
//!   ([`simulate_drive`], [`drive_sweep`]).
//!
//! # Examples
//!
//! ```
//! use npu_maestro::FittedMaestro;
//! use npu_mcm::McmPackage;
//! use npu_scenario::{scenario_sweep, Scenario};
//!
//! let scenarios = Scenario::builtin();
//! assert!(scenarios.len() >= 6);
//! let packages = [McmPackage::simba_6x6()];
//! let model = FittedMaestro::new();
//! let points = scenario_sweep(&scenarios[..1], &packages, &model, 12);
//! // The DES steady interval tracks the analytic prediction.
//! assert!(points[0].drift < 0.10, "drift {}", points[0].drift);
//! ```

pub mod drive;
pub mod rig;
pub mod scenario;
pub mod sweep;

pub use drive::{
    drive_sweep, simulate_drive, Drive, DriveOutcome, DriveSegment, SegmentReport, TransitionReport,
};
pub use rig::CameraRig;
pub use scenario::{OperatingMode, Scenario};
pub use sweep::{
    evaluate_point, match_scenario, scenario_sweep, ScenarioPoint, SWEEP_FRAMES, TAIL_SWEEP_FRAMES,
};
