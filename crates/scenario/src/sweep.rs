//! The scenario × package sweep runner.
//!
//! Every grid point is an independent schedule-simulate-and-score run:
//! build the scenario's workload, match it onto the package with
//! Algorithm 1, evaluate analytically, then drive the discrete-event
//! simulator with the scenario's own arrival process and compare the
//! measured steady interval against the analytic prediction. The grid
//! is a scenario × package [`Study`]: points fan out
//! on the `npu_core::par` worker pool behind a shared
//! [`MemoCostModel`](npu_maestro::MemoCostModel); results come back in
//! input order and are bit-identical to a serial run at any jobs count.

use serde::{Deserialize, Serialize};

use npu_maestro::CostModel;
use npu_mcm::McmPackage;
use npu_pipesim::{simulate, LatencyQuantiles};
use npu_sched::{MatcherConfig, ThroughputMatcher};
use npu_study::{Axis, Grid, Percentile, Study, TailLatency};
use npu_tensor::{Joules, Seconds};

use crate::scenario::Scenario;

/// One evaluated (scenario, package) grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Scenario family name.
    pub scenario: String,
    /// Package name.
    pub package: String,
    /// Chiplets in the package.
    pub chiplets: u64,
    /// Cameras actively feeding the pipeline.
    pub cameras: u64,
    /// Analytic matched pipelining latency.
    pub pipe: Seconds,
    /// Predicted steady interval: `max(pipe, mean arrival interval)`.
    pub predicted_interval: Seconds,
    /// DES-measured steady interval under the scenario's arrivals.
    pub des_interval: Seconds,
    /// Relative DES-vs-predicted disagreement (`|des/predicted - 1|`).
    pub drift: f64,
    /// DES mean per-frame latency (arrival → completion).
    pub mean_latency: Seconds,
    /// DES worst per-frame latency.
    pub max_latency: Seconds,
    /// DES tail percentiles (p50/p95/p99/p99.9) of the steady-state
    /// latency stream.
    pub tails: LatencyQuantiles,
    /// Sustained throughput under the scenario's arrivals.
    pub throughput_fps: f64,
    /// Analytic energy per frame.
    pub energy: Joules,
    /// Analytic PE utilization over used chiplets.
    pub utilization: f64,
}

impl TailLatency for ScenarioPoint {
    /// Exposes the DES tails to `npu_study`'s percentile-targeted
    /// constraints (`Constraint::tail_at_most`) and objectives.
    fn tail_latency(&self, p: Percentile) -> f64 {
        match p {
            Percentile::P50 => self.tails.p50,
            Percentile::P95 => self.tails.p95,
            Percentile::P99 => self.tails.p99,
            Percentile::P999 => self.tails.p999,
        }
        .as_secs()
    }
}

/// Frames the DES pushes through each grid point. Long enough that the
/// trimmed steady-state window spans several bursts/trace cycles of the
/// built-in families. The golden artifacts are pinned at this length;
/// tail-resolving contexts use [`TAIL_SWEEP_FRAMES`] instead.
pub const SWEEP_FRAMES: usize = 24;

/// Frames for percentile-resolving sweeps: with the ISSUE 8 engine a
/// long window is cheap, and 512 frames (the exact capacity of the
/// `Quantiles` sketch) gives p99 a real rank — 16 measured frames
/// collapse every upper tail onto the window maximum.
pub const TAIL_SWEEP_FRAMES: usize = 512;

/// Evaluates every scenario on every package.
///
/// The grid fans out via [`npu_par::par_map`]; pin the worker count
/// with [`npu_par::with_jobs`] to reproduce a serial run bit-for-bit.
pub fn scenario_sweep(
    scenarios: &[Scenario],
    packages: &[McmPackage],
    model: &dyn CostModel,
    frames: usize,
) -> Vec<ScenarioPoint> {
    let grid = Grid::of(Axis::new("scenario", scenarios.to_vec()))
        .cross(Axis::new("package", packages.to_vec()));
    Study::new("scenario-grid", grid, model)
        .run(|(scenario, pkg), model| evaluate_point(scenario, pkg, model, frames))
        .into_metrics()
}

/// Matches a scenario's workload onto a package with Algorithm 1 — the
/// shared compilation step of the scenario sweep and the drive timeline
/// runner, so a drive segment's schedule is **the** schedule the
/// standalone sweep would produce for the same (scenario, package) pair.
///
/// FE splitting is enabled on every package (as in
/// `npu_sched::sweep::chiplet_count_sweep`): the matching mode only
/// splits FE when a stage cannot otherwise reach the base latency, so
/// single-NPU packages schedule identically with or without it.
pub fn match_scenario(
    scenario: &Scenario,
    pkg: &McmPackage,
    model: &dyn CostModel,
) -> npu_sched::MatchOutcome {
    let cfg = MatcherConfig {
        allow_fe_split: true,
        ..MatcherConfig::default()
    };
    ThroughputMatcher::new(model, cfg).match_throughput(&scenario.workload(), pkg)
}

/// Schedules, evaluates and simulates one grid point.
pub fn evaluate_point(
    scenario: &Scenario,
    pkg: &McmPackage,
    model: &dyn CostModel,
    frames: usize,
) -> ScenarioPoint {
    let outcome = match_scenario(scenario, pkg, model);
    let predicted = scenario.predicted_interval(outcome.report.pipe);
    let des = simulate(&outcome.schedule, pkg, model, &scenario.sim_config(frames));
    ScenarioPoint {
        scenario: scenario.name.clone(),
        package: pkg.name().to_string(),
        chiplets: pkg.len() as u64,
        cameras: scenario.active_cameras(),
        pipe: outcome.report.pipe,
        predicted_interval: predicted,
        des_interval: des.steady_interval,
        drift: (des.steady_interval.as_secs() / predicted.as_secs() - 1.0).abs(),
        mean_latency: des.mean_latency,
        max_latency: des.max_latency,
        tails: des.tails,
        throughput_fps: des.throughput_fps,
        energy: outcome.report.energy(),
        utilization: outcome.report.utilization_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_maestro::FittedMaestro;

    #[test]
    fn sweep_covers_the_cross_product_in_order() {
        let scenarios = &Scenario::builtin()[..2];
        let packages = [McmPackage::simba_6x6(), McmPackage::quad_2304()];
        let model = FittedMaestro::new();
        let points = scenario_sweep(scenarios, &packages, &model, 8);
        assert_eq!(points.len(), 4);
        // Input order: scenario-major, package-minor.
        assert_eq!(points[0].scenario, scenarios[0].name);
        assert_eq!(points[0].package, packages[0].name());
        assert_eq!(points[1].package, packages[1].name());
        assert_eq!(points[2].scenario, scenarios[1].name);
    }

    #[test]
    fn every_point_is_finite_and_positive() {
        let scenarios = Scenario::builtin();
        let packages = [McmPackage::simba_6x6()];
        let model = FittedMaestro::new();
        for p in scenario_sweep(&scenarios, &packages, &model, 8) {
            assert!(p.pipe.as_secs() > 0.0, "{}: pipe", p.scenario);
            assert!(p.des_interval.as_secs() > 0.0, "{}: DES", p.scenario);
            assert!(p.drift.is_finite(), "{}: drift", p.scenario);
            assert!(p.mean_latency.as_secs() > 0.0, "{}: latency", p.scenario);
            assert!(
                p.utilization > 0.0 && p.utilization <= 1.0,
                "{}",
                p.scenario
            );
            // Tails are ordered and bracketed by the window extremes.
            assert!(p.tails.p50 > Seconds::ZERO, "{}: p50", p.scenario);
            assert!(p.tails.p50 <= p.tails.p95, "{}", p.scenario);
            assert!(p.tails.p95 <= p.tails.p99, "{}", p.scenario);
            assert!(p.tails.p99 <= p.tails.p999, "{}", p.scenario);
            assert!(p.tails.p999 <= p.max_latency, "{}", p.scenario);
            // And the TailLatency view is the same numbers in seconds.
            assert_eq!(
                p.tail_latency(Percentile::P99).to_bits(),
                p.tails.p99.as_secs().to_bits(),
                "{}",
                p.scenario
            );
        }
    }
}
