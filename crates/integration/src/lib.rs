//! Anchor crate for the workspace-level test suite and examples.
//!
//! Cargo only discovers `tests/` and `examples/` inside a package, so
//! this otherwise-empty crate wires the workspace-root directories in
//! through explicit `[[test]]` and `[[example]]` path entries in its
//! manifest:
//!
//! - `tests/end_to_end.rs` — full schedule/evaluate/serialize round trips;
//! - `tests/paper_claims.rs` — the paper's headline numbers, pinned;
//! - `tests/des_vs_analytic.rs` — discrete-event vs analytical drift,
//!   including every built-in scenario family of `npu-scenario`;
//! - `tests/cross_crate_properties.rs` — property-based invariants
//!   spanning the component crates;
//! - `tests/par_determinism.rs` — DSE, sweeps and the scenario grid
//!   bit-identical at any `npu-par` worker count;
//! - `examples/*.rs` — the six runnable walkthroughs listed in the
//!   top-level README (`cargo run --release --example quickstart`, ...).
//!
//! The crate body is intentionally empty: everything interesting lives
//! in those root directories and in the crates they exercise.
