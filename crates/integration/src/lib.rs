//! Empty library crate; the integration tests live in the workspace-root
//! `tests/` directory and are wired in via `[[test]]` path entries.
