//! Property tests for the `Study` expansion contract (ISSUE 4):
//! cartesian-product ordering is stable, and execution is bit-identical
//! between serial and parallel runs at jobs 1/2/8.

use proptest::prelude::*;

use npu_maestro::FittedMaestro;
use npu_study::{Axis, Grid, Study};

proptest! {
    /// Point `(i, j)` of `a × b` lands at flat index `i * b.len() + j`,
    /// for any axis contents — the ordering every downstream fold,
    /// argmin and golden file relies on.
    #[test]
    fn cross_ordering_is_stable(
        a in proptest::collection::vec(0u64..1_000_000, 1..7),
        b in proptest::collection::vec(0u64..1_000_000, 1..7),
    ) {
        let grid = Grid::of(Axis::new("a", a.clone())).cross(Axis::new("b", b.clone()));
        prop_assert_eq!(grid.len(), a.len() * b.len());
        prop_assert_eq!(grid.shape(), &[a.len(), b.len()][..]);
        for (i, &left) in a.iter().enumerate() {
            for (j, &right) in b.iter().enumerate() {
                prop_assert_eq!(grid.points()[i * b.len() + j], (left, right));
            }
        }
    }

    /// A second `cross` keeps the existing order outermost: the flat
    /// index of `((a, b), c)` is `a_idx * (|b| * |c|) + b_idx * |c| + c_idx`.
    #[test]
    fn triple_cross_ordering_is_row_major(
        a in proptest::collection::vec(0u64..1000, 1..5),
        b in proptest::collection::vec(0u64..1000, 1..5),
        c in proptest::collection::vec(0u64..1000, 1..5),
    ) {
        let grid = Grid::of(Axis::new("a", a.clone()))
            .cross(Axis::new("b", b.clone()))
            .cross(Axis::new("c", c.clone()));
        prop_assert_eq!(grid.len(), a.len() * b.len() * c.len());
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                for (k, &z) in c.iter().enumerate() {
                    let flat = i * b.len() * c.len() + j * c.len() + k;
                    prop_assert_eq!(grid.points()[flat], ((x, y), z));
                }
            }
        }
    }

    /// `Study::run` is jobs-invariant: the serial run (`--jobs 1`) and
    /// parallel runs at jobs 2 and 8 return bit-identical metric vectors
    /// for any grid, including float results compared by bit pattern.
    #[test]
    fn run_is_bit_identical_at_jobs_1_2_8(
        a in proptest::collection::vec(0u64..1_000_000, 1..9),
        b in proptest::collection::vec(1u64..64, 1..5),
    ) {
        let model = FittedMaestro::new();
        let run_at = |jobs: usize| {
            npu_par::with_jobs(jobs, || {
                let grid = Grid::of(Axis::new("a", a.clone()))
                    .cross(Axis::new("b", b.clone()));
                Study::new("prop", grid, &model)
                    .run(|&(x, y), _| ((x as f64).sqrt() * y as f64).to_bits())
                    .into_metrics()
            })
        };
        let serial = run_at(1);
        prop_assert_eq!(run_at(2), serial.clone());
        prop_assert_eq!(run_at(8), serial);
    }
}
