//! A named, ordered list of levels to sweep.

/// One declarative sweep axis: a name plus the ordered levels the study
/// visits. Levels can be any `Clone` type — mesh geometries, bandwidths,
/// trunk variants, whole `Scenario` values — so the domain crates supply
/// their own axes without this crate knowing their types.
///
/// # Examples
///
/// ```
/// use npu_study::Axis;
///
/// let meshes = Axis::new("mesh", vec![(4u32, 4u32), (6, 6), (12, 6)]);
/// assert_eq!(meshes.name(), "mesh");
/// assert_eq!(meshes.levels().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Axis<T> {
    name: String,
    levels: Vec<T>,
}

impl<T> Axis<T> {
    /// Creates an axis from its name and ordered levels.
    pub fn new(name: impl Into<String>, levels: impl IntoIterator<Item = T>) -> Self {
        Axis {
            name: name.into(),
            levels: levels.into_iter().collect(),
        }
    }

    /// The axis name (used in reports and grid metadata).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered levels.
    pub fn levels(&self) -> &[T] {
        &self.levels
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when the axis has no levels (its grid expands to nothing).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Consumes the axis into its parts.
    pub(crate) fn into_parts(self) -> (String, Vec<T>) {
        (self.name, self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_keeps_name_and_order() {
        let a = Axis::new("bw", [100.0, 10.0, 1.0]);
        assert_eq!(a.name(), "bw");
        assert_eq!(a.levels(), &[100.0, 10.0, 1.0]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_axis_is_empty() {
        let a: Axis<u64> = Axis::new("none", []);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
