//! One composable query surface for every sweep and design-space
//! exploration in the workspace.
//!
//! The paper's evaluation is a family of independent sweep-and-score
//! grids: the Table I trunk DSE, the Fig. 9–11 chiplet-count / failure /
//! NoP-bandwidth sweeps and the scenario workbench. Each used to be a
//! bespoke free function with its own point struct and its own
//! parallel-fold boilerplate. This crate factors the shared shape into
//! one typed pipeline:
//!
//! * [`Axis`] — a named, ordered list of levels (package geometries,
//!   chiplet counts, NoP bandwidths, trunk variants, failure counts,
//!   scenario families — any `Clone` type);
//! * [`Grid`] — the cartesian product of axes, expanded eagerly in a
//!   deterministic first-axis-major order;
//! * [`Study`] — a grid bound to a cost model; [`Study::run`] fans the
//!   points out on the `npu-par` worker pool behind one shared
//!   [`MemoCostModel`](npu_maestro::MemoCostModel), returning
//!   input-ordered, jobs-invariant results;
//! * [`Objective`] / [`Constraint`] — pluggable scoring and feasibility
//!   predicates over the per-point metrics (latency targets, energy,
//!   EDP, DES-vs-analytic agreement), including serving-style
//!   percentile targets ([`Constraint::tail_at_most`],
//!   [`Objective::minimize_tail`]) over any [`TailLatency`] metrics;
//! * [`StudyRun`] — the executed grid: iterate, filter by constraints,
//!   select the first-best point under an objective;
//! * [`StudyReport`] / [`Render`] — one computed result rendering both
//!   an aligned [`TextTable`] and serde JSON, so CLI front-ends never
//!   recompute an experiment to switch output formats.
//!
//! The legacy entrypoints (`npu_sched::sweep::*`,
//! `npu_sched::dse::explore_trunks`, `npu_scenario::scenario_sweep`)
//! are thin wrappers over this surface, and new queries — like the
//! scenario-aware package DSE — compose it directly.
//!
//! # Examples
//!
//! ```
//! use npu_maestro::{CostModel, FittedMaestro};
//! use npu_study::{Axis, Constraint, Grid, Objective, Study};
//!
//! // A toy two-axis study: PEs x batch, scored by a mock "latency".
//! let grid = Grid::of(Axis::new("pes", vec![64u64, 256]))
//!     .cross(Axis::new("batch", vec![1u64, 4, 8]));
//! assert_eq!(grid.len(), 6);
//!
//! let model = FittedMaestro::new();
//! let run = Study::new("toy", grid, &model)
//!     .run(|&(pes, batch), _model| (batch * 1000 / pes) as f64);
//!
//! // First-best feasible point under a minimizing objective.
//! let fast = Constraint::new("fast enough", |&lat: &f64| lat < 100.0);
//! let best = run
//!     .select(&Objective::minimize("latency", |&lat: &f64| lat), &[fast])
//!     .expect("a feasible point");
//! assert_eq!(run.points()[best], (256, 1));
//! ```

pub mod axis;
pub mod grid;
pub mod objective;
pub mod report;
pub mod study;
pub mod tail;

pub use axis::Axis;
pub use grid::Grid;
pub use objective::{Constraint, Objective};
pub use report::{Render, StudyReport, TextTable};
pub use study::{Study, StudyRun};
pub use tail::{Percentile, TailLatency};
