//! Pluggable scoring and feasibility for study results.

/// Whether an [`Objective`] prefers smaller or larger scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller raw scores are better (latency, energy, EDP, cost).
    Minimize,
    /// Larger raw scores are better (throughput, utilization).
    Maximize,
}

/// A named scoring function over per-point metrics. Selection always
/// minimizes the *oriented* score ([`Objective::score`]), so maximizing
/// objectives negate internally.
pub struct Objective<M> {
    name: String,
    direction: Direction,
    score: Box<dyn Fn(&M) -> f64 + Send + Sync>,
}

impl<M> Objective<M> {
    /// An objective preferring smaller `f` values.
    pub fn minimize(
        name: impl Into<String>,
        f: impl Fn(&M) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Objective {
            name: name.into(),
            direction: Direction::Minimize,
            score: Box::new(f),
        }
    }

    /// An objective preferring larger `f` values.
    pub fn maximize(
        name: impl Into<String>,
        f: impl Fn(&M) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Objective {
            name: name.into(),
            direction: Direction::Maximize,
            score: Box::new(f),
        }
    }

    /// The objective's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The optimization direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The oriented score: lower is always better.
    pub fn score(&self, metrics: &M) -> f64 {
        let raw = (self.score)(metrics);
        match self.direction {
            Direction::Minimize => raw,
            Direction::Maximize => -raw,
        }
    }
}

impl<M> std::fmt::Debug for Objective<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Objective")
            .field("name", &self.name)
            .field("direction", &self.direction)
            .finish()
    }
}

/// A named feasibility predicate over per-point metrics: a latency
/// target, an energy budget, a DES-vs-analytic agreement bound.
pub struct Constraint<M> {
    name: String,
    check: Box<dyn Fn(&M) -> bool + Send + Sync>,
}

impl<M> Constraint<M> {
    /// A constraint from an arbitrary predicate.
    pub fn new(name: impl Into<String>, f: impl Fn(&M) -> bool + Send + Sync + 'static) -> Self {
        Constraint {
            name: name.into(),
            check: Box::new(f),
        }
    }

    /// A constraint holding while `f(metrics) <= limit` — the common
    /// latency-target / energy-budget / drift-bound shape.
    pub fn at_most(
        name: impl Into<String>,
        limit: f64,
        f: impl Fn(&M) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Constraint::new(name, move |m| f(m) <= limit)
    }

    /// The constraint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether `metrics` satisfies the constraint.
    pub fn holds(&self, metrics: &M) -> bool {
        (self.check)(metrics)
    }
}

impl<M> std::fmt::Debug for Constraint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Constraint")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximize_negates_the_oriented_score() {
        let min = Objective::minimize("lat", |&x: &f64| x);
        let max = Objective::maximize("fps", |&x: &f64| x);
        assert_eq!(min.score(&2.0), 2.0);
        assert_eq!(max.score(&2.0), -2.0);
        assert_eq!(min.direction(), Direction::Minimize);
        assert_eq!(max.name(), "fps");
    }

    #[test]
    fn at_most_is_inclusive() {
        let c = Constraint::at_most("latency", 0.085, |&x: &f64| x);
        assert!(c.holds(&0.085));
        assert!(!c.holds(&0.086));
        assert_eq!(c.name(), "latency");
    }

    #[test]
    fn debug_formats_names() {
        let c = Constraint::new("feasible", |_: &u8| true);
        let o = Objective::minimize("edp", |_: &u8| 0.0);
        assert!(format!("{c:?}").contains("feasible"));
        assert!(format!("{o:?}").contains("edp"));
    }
}
