//! Rendering: aligned text tables, the text+JSON [`Render`] surface and
//! the [`StudyReport`] carrier pairing a typed result with its table.

use std::fmt;

use serde::Serialize;

/// A column-aligned text table with a title.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-text note rendered under the table.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "\n=== {} ===", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, "{cell:>w$}  ", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  * {n}")?;
        }
        Ok(())
    }
}

/// One computed result rendered two ways — human text and machine JSON —
/// without recomputation. Implemented for free by every type that is
/// `Display + Serialize`, which covers all experiment results and
/// [`StudyReport`], so a CLI registry can hold `Box<dyn Render>` and
/// pick the output format after the (expensive) run.
pub trait Render {
    /// The human-readable rendering (aligned tables).
    fn text(&self) -> String;

    /// The machine-readable rendering (pretty-printed JSON).
    fn json(&self) -> String;
}

impl<T: fmt::Display + Serialize> Render for T {
    fn text(&self) -> String {
        self.to_string()
    }

    fn json(&self) -> String {
        serde_json::to_string_pretty(self).expect("results serialize")
    }
}

/// A typed study result paired with its rendered [`TextTable`]: one run,
/// both output formats. `Display` prints the table; `Serialize`
/// delegates to the typed result, so JSON consumers see the domain
/// schema, not the table strings.
///
/// # Examples
///
/// ```
/// use npu_study::{Render, StudyReport, TextTable};
/// use serde::Serialize;
///
/// #[derive(Serialize)]
/// struct Best {
///     package: String,
/// }
///
/// let mut table = TextTable::new("Winner", &["package"]);
/// table.row(vec!["6x6".into()]);
/// let report = StudyReport::new(Best { package: "6x6".into() }, table);
/// assert!(report.text().contains("=== Winner ==="));
/// assert!(report.json().contains("\"package\""));
/// ```
#[derive(Debug, Clone)]
pub struct StudyReport<R> {
    result: R,
    table: TextTable,
}

impl<R> StudyReport<R> {
    /// Pairs a computed result with its table rendering.
    pub fn new(result: R, table: TextTable) -> Self {
        StudyReport { result, table }
    }

    /// The typed result.
    pub fn result(&self) -> &R {
        &self.result
    }

    /// The table rendering.
    pub fn table(&self) -> &TextTable {
        &self.table
    }

    /// Consumes the report into its typed result.
    pub fn into_result(self) -> R {
        self.result
    }
}

impl<R> fmt::Display for StudyReport<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.table.fmt(f)
    }
}

impl<R: Serialize> Serialize for StudyReport<R> {
    fn to_value(&self) -> serde::Value {
        self.result.to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo", &["a", "metric"]);
        t.row(vec!["x".into(), "1.0".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("a note"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        TextTable::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn study_report_splits_text_and_json() {
        #[derive(Serialize, Clone)]
        struct R {
            n: u64,
        }
        let mut table = TextTable::new("T", &["n"]);
        table.row(vec!["7".into()]);
        let report = StudyReport::new(R { n: 7 }, table);
        assert!(report.text().contains("=== T ==="));
        // JSON carries the typed result only — no table strings.
        assert_eq!(report.json(), "{\n  \"n\": 7\n}");
        assert_eq!(report.result().n, 7);
        assert_eq!(report.table().len(), 1);
        assert_eq!(report.clone().into_result().n, 7);
    }
}
