//! Percentile-targeted objectives and constraints: the serving-style
//! query surface ("cheapest package with p99 below the SLO under
//! urban-dense") layered on the same [`Objective`]/[`Constraint`]
//! machinery every other study uses.
//!
//! Any per-point metrics type that can report a tail latency implements
//! [`TailLatency`]; [`Constraint::tail_at_most`] and
//! [`Objective::minimize_tail`] then work on it unchanged, so a
//! mean-targeted study turns into a p99-targeted one by swapping a
//! single constraint.

use std::fmt;

use crate::{Constraint, Objective};

/// The standard tail percentiles reported by the DES
/// (`SimReport::tails` in `npu-pipesim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Percentile {
    /// Median (p50).
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile — the classic serving SLO point.
    P99,
    /// 99.9th percentile.
    P999,
}

impl Percentile {
    /// All four standard percentiles, ascending.
    pub const ALL: [Percentile; 4] = [
        Percentile::P50,
        Percentile::P95,
        Percentile::P99,
        Percentile::P999,
    ];

    /// The quantile fraction in `[0, 1]`.
    pub fn phi(self) -> f64 {
        match self {
            Percentile::P50 => 0.50,
            Percentile::P95 => 0.95,
            Percentile::P99 => 0.99,
            Percentile::P999 => 0.999,
        }
    }

    /// The conventional short label ("p99.9" for [`Percentile::P999`]).
    pub fn label(self) -> &'static str {
        match self {
            Percentile::P50 => "p50",
            Percentile::P95 => "p95",
            Percentile::P99 => "p99",
            Percentile::P999 => "p99.9",
        }
    }
}

impl fmt::Display for Percentile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-point metrics that expose tail frame latency — implemented by
/// the scenario-layer point types whose DES reports carry
/// `SimReport::tails`.
pub trait TailLatency {
    /// The tail latency at `p`, in seconds.
    fn tail_latency(&self, p: Percentile) -> f64;
}

impl<M: TailLatency> Constraint<M> {
    /// A serving-style SLO: feasible while the tail latency at `p` is
    /// at most `limit_secs` (inclusive, like
    /// [`Constraint::at_most`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use npu_study::{Constraint, Percentile, TailLatency};
    ///
    /// struct Point {
    ///     p99: f64,
    /// }
    /// impl TailLatency for Point {
    ///     fn tail_latency(&self, p: Percentile) -> f64 {
    ///         match p {
    ///             Percentile::P99 => self.p99,
    ///             _ => unimplemented!(),
    ///         }
    ///     }
    /// }
    ///
    /// let slo = Constraint::tail_at_most(Percentile::P99, 0.100);
    /// assert_eq!(slo.name(), "p99 <= 100.0 ms");
    /// assert!(slo.holds(&Point { p99: 0.100 }));
    /// assert!(!slo.holds(&Point { p99: 0.101 }));
    /// ```
    pub fn tail_at_most(p: Percentile, limit_secs: f64) -> Self {
        Constraint::at_most(
            format!("{p} <= {:.1} ms", limit_secs * 1e3),
            limit_secs,
            move |m: &M| m.tail_latency(p),
        )
    }
}

impl<M: TailLatency> Objective<M> {
    /// An objective preferring the smallest tail latency at `p` — the
    /// "fastest at the tail" counterpart to a mean-latency objective.
    pub fn minimize_tail(p: Percentile) -> Self {
        Objective::minimize(p.label(), move |m: &M| m.tail_latency(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake([f64; 4]);

    impl TailLatency for Fake {
        fn tail_latency(&self, p: Percentile) -> f64 {
            match p {
                Percentile::P50 => self.0[0],
                Percentile::P95 => self.0[1],
                Percentile::P99 => self.0[2],
                Percentile::P999 => self.0[3],
            }
        }
    }

    #[test]
    fn phi_and_labels_line_up() {
        assert_eq!(Percentile::ALL.len(), 4);
        let mut prev = 0.0;
        for p in Percentile::ALL {
            assert!(p.phi() > prev, "{p} out of order");
            prev = p.phi();
            assert!(p.label().starts_with('p'));
        }
        assert_eq!(Percentile::P999.to_string(), "p99.9");
        assert_eq!(Percentile::P999.phi(), 0.999);
    }

    #[test]
    fn tail_constraint_is_inclusive_and_named() {
        let c = Constraint::tail_at_most(Percentile::P99, 0.4);
        assert_eq!(c.name(), "p99 <= 400.0 ms");
        assert!(c.holds(&Fake([0.1, 0.2, 0.4, 0.9])));
        assert!(!c.holds(&Fake([0.1, 0.2, 0.41, 0.9])));
    }

    #[test]
    fn tail_objective_scores_the_requested_percentile() {
        let o = Objective::minimize_tail(Percentile::P999);
        assert_eq!(o.name(), "p99.9");
        assert_eq!(o.score(&Fake([0.1, 0.2, 0.3, 0.7])), 0.7);
    }
}
