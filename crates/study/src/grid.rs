//! Deterministic cartesian-product expansion of axes.

use crate::axis::Axis;

/// The cartesian product of one or more [`Axis`] values, expanded
/// eagerly into a flat point list with a **deterministic ordering**:
/// the first axis is outermost (slowest-varying), each [`cross`] adds a
/// faster-varying inner axis. Point `(i, j)` of a two-axis grid lands at
/// flat index `i * b.len() + j` — the exact order every legacy sweep
/// iterated, so downstream folds, argmins and tie-breaks are preserved.
///
/// [`cross`]: Grid::cross
///
/// # Examples
///
/// ```
/// use npu_study::{Axis, Grid};
///
/// let g = Grid::of(Axis::new("a", vec!['x', 'y']))
///     .cross(Axis::new("b", vec![1u8, 2, 3]));
/// assert_eq!(g.axes(), ["a", "b"]);
/// assert_eq!(g.shape(), [2, 3]);
/// assert_eq!(g.points()[4], ('y', 2)); // index = 1 * 3 + 1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid<P> {
    axes: Vec<String>,
    shape: Vec<usize>,
    points: Vec<P>,
}

impl<A> Grid<A> {
    /// A one-axis grid: the points are the axis levels, in order.
    pub fn of(axis: Axis<A>) -> Grid<A> {
        let (name, levels) = axis.into_parts();
        Grid {
            axes: vec![name],
            shape: vec![levels.len()],
            points: levels,
        }
    }
}

impl<P: Clone> Grid<P> {
    /// Crosses the grid with another axis: every existing point is paired
    /// with every level of `axis`, existing-point-major / level-minor.
    pub fn cross<B: Clone>(self, axis: Axis<B>) -> Grid<(P, B)> {
        let (name, levels) = axis.into_parts();
        let points = self
            .points
            .iter()
            .flat_map(|p| levels.iter().map(move |l| (p.clone(), l.clone())))
            .collect();
        let mut axes = self.axes;
        axes.push(name);
        let mut shape = self.shape;
        shape.push(levels.len());
        Grid {
            axes,
            shape,
            points,
        }
    }
}

impl<P> Grid<P> {
    /// Axis names, outermost first.
    pub fn axes(&self) -> &[String] {
        &self.axes
    }

    /// Levels per axis, outermost first. The product equals [`len`].
    ///
    /// [`len`]: Grid::len
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The expanded points, in deterministic cartesian order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Number of expanded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when any axis is empty (the product collapses to nothing).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Consumes the grid into `(axes, points)`.
    pub(crate) fn into_parts(self) -> (Vec<String>, Vec<P>) {
        (self.axes, self.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_axis_grid_is_the_axis() {
        let g = Grid::of(Axis::new("k", vec![0u64, 3, 6]));
        assert_eq!(g.points(), &[0, 3, 6]);
        assert_eq!(g.axes(), ["k"]);
        assert_eq!(g.shape(), [3]);
    }

    #[test]
    fn cross_is_first_axis_major() {
        let g = Grid::of(Axis::new("s", vec!["a", "b"])).cross(Axis::new("p", vec![1u8, 2]));
        assert_eq!(
            g.points(),
            &[("a", 1), ("a", 2), ("b", 1), ("b", 2)],
            "scenario-major, package-minor — the legacy sweep order"
        );
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn triple_cross_nests_right() {
        let g = Grid::of(Axis::new("a", vec![0u8, 1]))
            .cross(Axis::new("b", vec![0u8, 1]))
            .cross(Axis::new("c", vec![0u8, 1]));
        assert_eq!(g.shape(), [2, 2, 2]);
        // Flat index of ((a, b), c) is a*4 + b*2 + c.
        assert_eq!(g.points()[5], ((1, 0), 1));
    }

    #[test]
    fn empty_axis_collapses_the_grid() {
        let g = Grid::of(Axis::new("a", vec![1u8, 2])).cross(Axis::<u8>::new("b", []));
        assert!(g.is_empty());
        assert_eq!(g.shape(), [2, 0]);
    }
}
