//! The query runner: a grid bound to a cost model, executed on the
//! worker pool behind one shared memoized cost model.

use npu_maestro::{CostModel, MemoCostModel};

use crate::grid::Grid;
use crate::objective::{Constraint, Objective};

/// A declarative sweep/DSE query: a [`Grid`] of points plus the cost
/// model every point consults. [`run`] executes the query.
///
/// [`run`]: Study::run
///
/// # Determinism
///
/// Points fan out on the `npu-par` worker pool and come back in input
/// order; the shared [`MemoCostModel`] only replays a deterministic
/// oracle. Results are therefore bit-identical to a serial run at any
/// jobs count (pin with `npu_par::with_jobs`).
pub struct Study<'m, P> {
    name: String,
    grid: Grid<P>,
    model: &'m dyn CostModel,
}

impl<P: std::fmt::Debug> std::fmt::Debug for Study<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Study")
            .field("name", &self.name)
            .field("grid", &self.grid)
            .field("model", &self.model.name())
            .finish()
    }
}

impl<'m, P> Study<'m, P> {
    /// Binds a grid to a cost model under a report-friendly name.
    pub fn new(name: impl Into<String>, grid: Grid<P>, model: &'m dyn CostModel) -> Self {
        Study {
            name: name.into(),
            grid,
            model,
        }
    }

    /// The study name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid awaiting execution.
    pub fn grid(&self) -> &Grid<P> {
        &self.grid
    }

    /// Executes the query: `runner` maps every grid point to its metrics
    /// on the `npu-par` worker pool, with one [`MemoCostModel`] threaded
    /// through all points so each distinct layer cost is computed once
    /// across the whole grid.
    pub fn run<M, F>(self, runner: F) -> StudyRun<P, M>
    where
        P: Sync,
        M: Send,
        F: Fn(&P, &dyn CostModel) -> M + Sync,
    {
        let memo = MemoCostModel::new(self.model);
        let metrics = npu_par::par_map(self.grid.points(), |point| runner(point, &memo));
        let (axes, points) = self.grid.into_parts();
        StudyRun {
            name: self.name,
            axes,
            points,
            metrics,
        }
    }
}

/// An executed [`Study`]: the expanded points paired with their metrics,
/// in grid order. Selection helpers implement the folds the legacy
/// sweeps hand-rolled: first-minimum argmin with strict `<` tie-breaks,
/// so the winner is independent of the worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyRun<P, M> {
    name: String,
    axes: Vec<String>,
    points: Vec<P>,
    metrics: Vec<M>,
}

impl<P, M> StudyRun<P, M> {
    /// The study name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Axis names, outermost first.
    pub fn axes(&self) -> &[String] {
        &self.axes
    }

    /// The grid points, in expansion order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Per-point metrics, aligned with [`points`].
    ///
    /// [`points`]: StudyRun::points
    pub fn metrics(&self) -> &[M] {
        &self.metrics
    }

    /// Consumes the run into just the metrics — the shape the legacy
    /// `Vec<SweepPoint>`-returning wrappers expose.
    pub fn into_metrics(self) -> Vec<M> {
        self.metrics
    }

    /// Number of executed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid expanded to nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `(point, metrics)` pairs in grid order.
    pub fn iter(&self) -> impl Iterator<Item = (&P, &M)> {
        self.points.iter().zip(&self.metrics)
    }

    /// Which points satisfy **all** constraints, in grid order.
    pub fn feasible(&self, constraints: &[Constraint<M>]) -> Vec<bool> {
        self.metrics
            .iter()
            .map(|m| constraints.iter().all(|c| c.holds(m)))
            .collect()
    }

    /// The first point minimizing the oriented objective score among
    /// those satisfying every constraint; `None` if nothing is feasible.
    /// Ties keep the earliest point (strict `<`), so the selection is
    /// reproducible at any jobs count.
    pub fn select(&self, objective: &Objective<M>, constraints: &[Constraint<M>]) -> Option<usize> {
        self.argmin_by(|_, m| {
            constraints
                .iter()
                .all(|c| c.holds(m))
                .then(|| objective.score(m))
        })
    }

    /// The first point with the strictly smallest `score`; points scored
    /// `None` are skipped (infeasible / unevaluated). This is the exact
    /// fold of the legacy serial DSE loops.
    pub fn argmin_by(&self, score: impl Fn(&P, &M) -> Option<f64>) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, (p, m)) in self.iter().enumerate() {
            let Some(s) = score(p, m) else { continue };
            if best.map(|(_, b)| s < b).unwrap_or(true) {
                best = Some((i, s));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;
    use npu_dnn::{Layer, OpKind};
    use npu_maestro::{Accelerator, FittedMaestro};

    fn layer(tokens: u64) -> Layer {
        Layer::intrinsic(
            "probe",
            OpKind::Dense {
                tokens,
                in_features: 64,
                out_features: 64,
            },
        )
    }

    #[test]
    fn run_maps_points_in_order() {
        let model = FittedMaestro::new();
        let grid = Grid::of(Axis::new("x", vec![1u64, 2, 3]));
        let run = Study::new("triple", grid, &model).run(|&x, _| x * 10);
        assert_eq!(run.metrics(), &[10, 20, 30]);
        assert_eq!(run.points(), &[1, 2, 3]);
        assert_eq!(run.axes(), ["x"]);
        assert_eq!(run.name(), "triple");
        assert_eq!(run.len(), 3);
        assert!(!run.is_empty());
    }

    #[test]
    fn memo_is_shared_across_the_grid() {
        // Every point queries the same layer cost; the runner sees one
        // shared cache, so identical queries cost one inner evaluation.
        let model = FittedMaestro::new();
        let acc = Accelerator::shidiannao_like(256);
        let l = layer(4096);
        let grid = Grid::of(Axis::new("rep", vec![0u8; 8]));
        let run = npu_par::with_jobs(1, || {
            Study::new("memo", grid, &model)
                .run(|_, m| m.layer_cost(&l, &acc).latency.as_secs().to_bits())
        });
        let first = run.metrics()[0];
        assert!(run.metrics().iter().all(|&b| b == first));
    }

    #[test]
    fn select_respects_constraints_and_tie_breaks_first() {
        let model = FittedMaestro::new();
        let grid = Grid::of(Axis::new("x", vec![5.0f64, 1.0, 1.0, 3.0]));
        let run = Study::new("sel", grid, &model).run(|&x, _| x);
        let obj = Objective::minimize("x", |&x: &f64| x);
        // Unconstrained: the FIRST of the tied minima wins.
        assert_eq!(run.select(&obj, &[]), Some(1));
        // A constraint can exclude the minimum.
        let not_one = Constraint::new("x != 1", |&x: &f64| x != 1.0);
        assert_eq!(run.select(&obj, &[not_one]), Some(3));
        // Unsatisfiable constraints yield None.
        let never = Constraint::new("never", |_: &f64| false);
        assert_eq!(run.select(&obj, &[never]), None);
    }

    #[test]
    fn argmin_by_skips_none_scores() {
        let model = FittedMaestro::new();
        let grid = Grid::of(Axis::new("x", vec![1u64, 2, 3, 4]));
        let run = Study::new("skip", grid, &model).run(|&x, _| x);
        let idx = run.argmin_by(|_, &m| (m % 2 == 0).then_some(m as f64));
        assert_eq!(idx, Some(1), "smallest even value");
        assert_eq!(run.argmin_by(|_, _| None), None);
    }

    #[test]
    fn feasible_is_per_point() {
        let model = FittedMaestro::new();
        let grid = Grid::of(Axis::new("x", vec![1.0f64, 10.0]));
        let run = Study::new("feas", grid, &model).run(|&x, _| x);
        let c = Constraint::at_most("small", 5.0, |&x: &f64| x);
        assert_eq!(run.feasible(&[c]), vec![true, false]);
    }
}
