//! Property tests for the [`Arrivals`] contracts (ISSUE 5): looping
//! trace replay preserves inter-arrival gaps across the loop seam,
//! piecewise segment boundaries stay monotone, and the jitter clamp
//! lands in `[0, 1)` for any input.

use proptest::prelude::*;

use npu_pipesim::{ArrivalSegment, Arrivals};
use npu_tensor::Seconds;

/// Builds a validated trace from sorted non-negative gaps.
fn trace_from_gaps(start: f64, gaps: &[f64]) -> Arrivals {
    let mut t = start;
    let mut times = vec![Seconds::new(t)];
    for g in gaps {
        t += g;
        times.push(Seconds::new(t));
    }
    Arrivals::trace(times)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replaying a trace beyond its length loops it: every repetition
    /// reproduces the recorded inter-arrival gaps exactly, and the gap
    /// across each loop seam is the same for every seam — no drift, no
    /// discontinuity, however many times the trace wraps.
    #[test]
    fn looping_trace_preserves_gaps_across_the_seam(
        start in 0.0f64..0.5,
        gaps in proptest::collection::vec(0.001f64..0.2, 1..9),
        reps in 2usize..5,
    ) {
        let trace = trace_from_gaps(start, &gaps);
        let len = gaps.len() + 1;
        let times = trace.times(len * reps);
        let gap = |i: usize| times[i + 1] - times[i];
        for rep in 1..reps {
            // Within-repetition gaps match repetition 0 (floating-point
            // shift tolerance only).
            for i in 0..len - 1 {
                let (g0, gk) = (gap(i), gap(rep * len + i));
                prop_assert!((g0 - gk).abs() < 1e-9, "rep {rep} gap {i}: {g0} vs {gk}");
            }
        }
        // Every seam gap equals the first seam gap.
        let seam0 = gap(len - 1);
        prop_assert!(seam0 >= 0.0, "seam gap must not reorder frames");
        for rep in 2..reps {
            let seam = gap(rep * len - 1);
            prop_assert!((seam - seam0).abs() < 1e-9, "seam {rep}: {seam} vs {seam0}");
        }
    }

    /// A piecewise timeline built from valid segments expands to a
    /// non-decreasing stream: every segment boundary is monotone, each
    /// segment starts exactly at the cumulative span of its
    /// predecessors, and looping the whole timeline stays monotone too.
    #[test]
    fn piecewise_segment_boundaries_are_monotone(
        fps in proptest::collection::vec(4.0f64..60.0, 1..5),
        frames in proptest::collection::vec(1usize..8, 1..5),
    ) {
        let n = fps.len().min(frames.len());
        let segments: Vec<ArrivalSegment> = (0..n)
            .map(|i| ArrivalSegment {
                arrivals: Arrivals::periodic_fps(fps[i]),
                // Span: exactly enough for the frames plus one interval.
                span: Seconds::new(frames[i] as f64 / fps[i]),
                frames: frames[i],
            })
            .collect();
        let piecewise = Arrivals::piecewise(segments.clone());
        let total: usize = segments[..n].iter().map(|s| s.frames).sum();
        // One full pass plus a wrap into the looped second pass.
        let times = piecewise.times(total + frames[0]);
        prop_assert!(times.windows(2).all(|w| w[1] >= w[0]), "{times:?}");
        // Each segment's first frame lands at its cumulative offset.
        let mut offset = 0.0;
        let mut cursor = 0;
        for seg in &segments[..n] {
            prop_assert!((times[cursor] - offset).abs() < 1e-9,
                "segment start {} vs offset {offset}", times[cursor]);
            cursor += seg.frames;
            offset += seg.span.as_secs();
        }
        // The loop restarts the timeline at the total span.
        prop_assert!((times[total] - offset).abs() < 1e-9);
    }

    /// The jitter clamp maps **any** f64 — including NaN, infinities and
    /// out-of-range values — into `[0, 1)`, and a jittered process built
    /// from the clamped fraction expands to finite, non-decreasing times.
    #[test]
    fn jitter_clamp_stays_in_unit_interval(
        raw in prop::sample::select(vec![
            f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.5, -0.0, 0.0,
            0.25, 0.999, 1.0, 1.5, 1e300,
        ]),
        scale in 0.0f64..4.0,
        seed in 0u64..1_000,
    ) {
        let frac = Arrivals::clamp_jitter(raw * scale);
        prop_assert!((0.0..1.0).contains(&frac), "clamp({raw} * {scale}) = {frac}");
        let jittered = Arrivals::Jittered {
            interval: Seconds::new(0.05),
            frac,
            seed,
        };
        let times = jittered.times(16);
        prop_assert!(times.iter().all(|t| t.is_finite()));
        prop_assert!(times.windows(2).all(|w| w[1] >= w[0]), "{times:?}");
    }
}
