//! Property tests for the streaming [`Quantiles`] sketch (ISSUE 6):
//! the estimator stays within a rank tolerance of the exact sorted-slice
//! quantiles on random latency streams, the small-n path is bit-equal to
//! the exact computation, and merging per-shard sketches agrees with the
//! whole-stream sketch within the same tolerance.

use proptest::prelude::*;

use npu_pipesim::Quantiles;

/// Exact nearest-rank quantile of an unsorted sample.
fn exact(values: &[f64], phi: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    Quantiles::exact_sorted(&sorted, phi)
}

/// Asserts `estimate` lies between the exact `(phi - eps)` and
/// `(phi + eps)` quantiles — the natural error model for a rank-error
/// sketch (value-space error can be arbitrarily large on heavy tails,
/// rank-space error is what the compaction scheme bounds).
fn assert_rank_close(values: &[f64], phi: f64, eps: f64, estimate: f64) {
    let lo = exact(values, (phi - eps).max(0.0));
    let hi = exact(values, (phi + eps).min(1.0));
    assert!(
        lo <= estimate && estimate <= hi,
        "phi {phi}: estimate {estimate} outside exact rank band [{lo}, {hi}]"
    );
}

/// A plausible latency stream: a steady base plus occasional heavy-tail
/// spikes, the shape DES frame latencies actually take.
fn latency_stream() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..2.0, 64..2048)
}

/// Rank tolerance for a capacity-`k` sketch over `n` samples: each
/// compaction at level `l` perturbs ranks by at most one weight-`2^l`
/// unit, giving a worst-case rank error well under `2n/k` for the
/// alternating-parity scheme; the constant floor covers tiny windows
/// where a single rank step is a large fraction of `n`.
fn rank_eps(n: usize, capacity: usize) -> f64 {
    (2.0 / capacity as f64).max(3.0 / n as f64).min(0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming estimates stay within the sketch's rank tolerance of
    /// the exact sorted-slice quantiles, at every standard percentile,
    /// on random latency streams that overflow the buffer many times.
    #[test]
    fn estimator_tracks_exact_within_rank_tolerance(
        values in latency_stream(),
        capacity in prop::sample::select(vec![16usize, 32, 64, 128]),
    ) {
        let mut q = Quantiles::with_capacity(capacity);
        for &v in &values {
            q.insert(v);
        }
        prop_assert_eq!(q.count(), values.len() as u64);
        let eps = rank_eps(values.len(), q.capacity());
        for phi in [0.5, 0.9, 0.95, 0.99, 0.999] {
            assert_rank_close(&values, phi, eps, q.quantile(phi).unwrap());
        }
    }

    /// While `n <= capacity` the sketch IS the sample: every quantile is
    /// bit-equal to the exact nearest-rank order statistic, for any
    /// stream and any phi.
    #[test]
    fn exact_path_is_bit_equal_below_capacity(
        values in proptest::collection::vec(0.0001f64..10.0, 1..256),
        phi in prop::sample::select(vec![0.0, 0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0]),
    ) {
        let mut q = Quantiles::with_capacity(256);
        for &v in &values {
            q.insert(v);
        }
        prop_assert!(q.is_exact());
        let got = q.quantile(phi).unwrap();
        prop_assert_eq!(
            got.to_bits(),
            exact(&values, phi).to_bits(),
            "phi {}: {} vs exact", phi, got
        );
    }

    /// Splitting a stream into shards, sketching each shard and merging
    /// agrees with sketching the whole stream, within the same rank
    /// tolerance — the contract that lets per-segment sketches roll up
    /// into whole-drive tails.
    #[test]
    fn merge_of_shards_matches_whole_stream(
        values in latency_stream(),
        shards in 2usize..6,
    ) {
        let capacity = 64;
        let mut parts: Vec<Quantiles> =
            (0..shards).map(|_| Quantiles::with_capacity(capacity)).collect();
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].insert(v);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), values.len() as u64);
        // Merged shards compact at most one extra round per level, so
        // allow twice the single-sketch tolerance.
        let eps = 2.0 * rank_eps(values.len(), capacity);
        for phi in [0.5, 0.95, 0.99] {
            assert_rank_close(&values, phi, eps, merged.quantile(phi).unwrap());
        }
    }

    /// Quantiles are monotone in phi and bracketed by the stream's
    /// min/max, exact or not.
    #[test]
    fn quantiles_are_monotone_and_bracketed(
        values in proptest::collection::vec(0.001f64..5.0, 8..1024),
    ) {
        let mut q = Quantiles::with_capacity(32);
        for &v in &values {
            q.insert(v);
        }
        let (min, max) = values.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
        let mut prev = min;
        for phi in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let est = q.quantile(phi).unwrap();
            prop_assert!(est >= prev, "phi {phi}: {est} < {prev}");
            prop_assert!((min..=max).contains(&est), "phi {phi}: {est} outside [{min}, {max}]");
            prev = est;
        }
    }
}
